//! The `lobster_ram::passes` pipeline against the real compiled workload
//! programs — the suite the paper evaluates, not synthetic fixtures. These
//! pin the analysis facts the compiler's join-strategy selection and the
//! sharded planner rely on.

use lobster_ram::passes::{lint_program, merge_eligible_joins, validate_program, CostModel};
use lobster_ram::Severity;
use lobster_workloads::suite::table2;

/// Every program the suite ships must compile to RAM that the IR validator
/// accepts — the executor assumes validated IR, and CI runs `lobster-lint`
/// over the same set.
#[test]
fn every_workload_program_passes_ir_validation() {
    for info in table2() {
        let compiled = lobster_datalog::parse(info.program)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", info.name));
        if let Err(errors) = validate_program(&compiled.ram) {
            let rendered: Vec<String> = errors.iter().map(ToString::to_string).collect();
            panic!(
                "{} failed IR validation:\n{}",
                info.name,
                rendered.join("\n")
            );
        }
    }
}

/// No workload program may carry an error-severity diagnostic; warnings are
/// expected (several paper programs contain cartesian products by design).
#[test]
fn no_workload_program_lints_at_error_severity() {
    for info in table2() {
        let compiled = lobster_datalog::parse(info.program).unwrap();
        let errors: Vec<String> = lint_program(&compiled.ram)
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(ToString::to_string)
            .collect();
        assert!(
            errors.is_empty(),
            "{} has error diagnostics:\n{}",
            info.name,
            errors.join("\n")
        );
    }
}

/// Transitive closure and CLUTRR are *linear* recursions: one recursive
/// input per join, so the executor's static-index reuse (paper Section 4.2)
/// stays enabled. The lint pass must not flag them.
#[test]
fn transitive_closure_and_clutrr_recursion_is_linear() {
    for (name, source) in [
        ("TC", lobster_workloads::graphs::TRANSITIVE_CLOSURE),
        ("CLUTRR", lobster_workloads::clutrr::PROGRAM),
    ] {
        let compiled = lobster_datalog::parse(source).unwrap();
        let diagnostics = lint_program(&compiled.ram);
        assert!(
            diagnostics.iter().all(|d| d.code != "non-linear-recursion"),
            "{name} unexpectedly flagged as non-linear"
        );
        // The programs do recurse — the linearity claim is not vacuous.
        assert!(compiled.ram.strata.iter().any(|s| s.recursive));
    }
}

/// CSPA is the suite's join-heavy stress case: one mutually recursive
/// stratum whose joins pair recursive inputs. The cost model must see all
/// seven join sites, classify them recursive, and — because every relation
/// in the stratum is derived in-stratum (nothing is sorted-stable across
/// iterations) — offer no merge-eligible site.
#[test]
fn cspa_cost_model_counts_recursive_joins_and_sort_orders() {
    let compiled = lobster_datalog::parse(lobster_workloads::cspa::PROGRAM).unwrap();
    let cost = CostModel::analyze(&compiled.ram);
    assert_eq!(cost.strata.len(), 1);
    let stratum = &cost.strata[0];
    assert!(stratum.recursive);
    assert_eq!(stratum.joins, 7);
    assert!(stratum.recursive_joins > 0);
    assert_eq!(stratum.merge_eligible_joins, 0);
    // The non-linear recursion shows up in lint too: value_flow joins
    // value_flow.
    let diagnostics = lint_program(&compiled.ram);
    assert!(diagnostics.iter().any(|d| d.code == "non-linear-recursion"));
    // The EDB relations feed the recursive stratum, so the planner weights
    // their facts above derived-only relations' default.
    assert!(cost.relation_weight("assign") > 1);
    assert!(cost.relation_weight("dereference") > 1);
}

/// Sort-order inference finds merge-eligible joins exactly where a
/// non-recursive side loads a sealed (sorted) relation: none in TC or CSPA
/// (probe sides are projected or in-stratum), one in Same Generation, and
/// several in PacMan's layered strata.
#[test]
fn merge_eligible_join_counts_match_sort_order_facts() {
    let count = |source: &str| {
        let compiled = lobster_datalog::parse(source).unwrap();
        compiled
            .ram
            .strata
            .iter()
            .map(|s| merge_eligible_joins(s, &compiled.ram))
            .sum::<usize>()
    };
    assert_eq!(count(lobster_workloads::graphs::TRANSITIVE_CLOSURE), 0);
    assert_eq!(count(lobster_workloads::cspa::PROGRAM), 0);
    assert_eq!(count(lobster_workloads::graphs::SAME_GENERATION), 1);
    assert!(count(lobster_workloads::pacman::PROGRAM) >= 8);
}
