//! Differential test for the compiler's merge-join path: with identical
//! seeded inputs, a program compiled with `merge_join` enabled must produce
//! *bit-identical* results to the hash-join-only build — same tuples in the
//! same stored order, same probability bits, same gradients — across
//! provenance kinds and device parallelism levels.
//!
//! The guarantee rests on the hash index's ascending-build-row match order
//! (documented on `HashIndex::for_each_match`): a merge join emits the same
//! (build, probe) pairs in the same order, so every downstream gather,
//! dedup, and provenance combine sees identical operands.

use lobster::{Device, DeviceConfig, FactSet, Lobster, ProvenanceKind, RuntimeOptions, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KINDS: [ProvenanceKind; 4] = [
    ProvenanceKind::Unit,
    ProvenanceKind::AddMultProb,
    ProvenanceKind::MaxMinProb,
    ProvenanceKind::DiffTop1Proof,
];
const PARALLELISMS: [usize; 2] = [1, 4];

fn device_with(parallelism: usize) -> Device {
    Device::new(DeviceConfig {
        parallelism,
        // Low threshold so parallelism-4 runs actually chunk the small
        // seeded workloads instead of falling back to sequential loops.
        min_parallel_rows: 64,
        ..DeviceConfig::default()
    })
}

/// Runs `source` over `facts` for one provenance kind at one parallelism,
/// with the merge-join path enabled or disabled.
fn run(
    source: &str,
    kind: ProvenanceKind,
    parallelism: usize,
    merge_join: bool,
    facts: &FactSet,
) -> lobster::RunResult {
    let program = Lobster::builder(source)
        .device(device_with(parallelism))
        .options(RuntimeOptions::default().with_merge_join(merge_join))
        .provenance(kind)
        .compile()
        .expect("program compiles");
    let results = program
        .run_batch(std::slice::from_ref(facts))
        .expect("program runs");
    results.into_iter().next().expect("one result")
}

/// Asserts two results are bit-identical: same relations, same tuples in
/// the same stored order, equal probability bits, equal gradients.
fn assert_bit_identical(merge: &lobster::RunResult, hash: &lobster::RunResult, context: &str) {
    assert_eq!(merge.relations(), hash.relations(), "{context}: relations");
    for name in merge.relations() {
        let (m, h) = (merge.relation(name), hash.relation(name));
        assert_eq!(m.len(), h.len(), "{context}: `{name}` cardinality");
        for (i, ((mt, mo), (ht, ho))) in m.iter().zip(h).enumerate() {
            assert_eq!(mt, ht, "{context}: `{name}` tuple {i}");
            assert_eq!(
                mo.probability.to_bits(),
                ho.probability.to_bits(),
                "{context}: `{name}` tuple {i} probability"
            );
            assert_eq!(
                mo.gradient, ho.gradient,
                "{context}: `{name}` tuple {i} gradient"
            );
        }
    }
}

fn differential(name: &str, source: &str, facts: &FactSet) {
    for kind in KINDS {
        for p in PARALLELISMS {
            let merge = run(source, kind, p, true, facts);
            let hash = run(source, kind, p, false, facts);
            assert_bit_identical(
                &merge,
                &hash,
                &format!("{name} ({kind:?}, parallelism {p})"),
            );
        }
    }
}

/// Same Generation: its `parent ⋈ parent` base rule is the suite's
/// merge-eligible join, so the two builds genuinely take different paths.
#[test]
fn same_generation_merge_join_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut facts = FactSet::new();
    for _ in 0..220 {
        let p = rng.gen_range(0..28u32);
        let c = rng.gen_range(0..28u32);
        facts.add(
            "parent",
            &[Value::U32(p), Value::U32(c)],
            Some(rng.gen_range(0.3..1.0)),
        );
    }
    differential(
        "same-generation",
        lobster_workloads::graphs::SAME_GENERATION,
        &facts,
    );
}

/// Transitive closure stays on the hash path (its probe side is a column
/// swap, sorted prefix 0) — the differential pins that enabling the option
/// never perturbs programs it does not apply to.
#[test]
fn transitive_closure_is_unaffected_by_the_merge_option() {
    let mut rng = StdRng::seed_from_u64(12);
    let mut facts = FactSet::new();
    for _ in 0..160 {
        let x = rng.gen_range(0..40u32);
        let y = rng.gen_range(0..40u32);
        facts.add(
            "edge",
            &[Value::U32(x), Value::U32(y)],
            Some(rng.gen_range(0.3..1.0)),
        );
    }
    differential(
        "transitive-closure",
        lobster_workloads::graphs::TRANSITIVE_CLOSURE,
        &facts,
    );
}

/// CSPA: non-linear mutual recursion, seven join sites, all on the hash
/// path — the join-heavy stress case of Table 4.
#[test]
fn cspa_is_bit_identical_across_join_strategies() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut facts = FactSet::new();
    for _ in 0..150 {
        let d = rng.gen_range(0..24u32);
        let s = rng.gen_range(0..24u32);
        facts.add(
            "assign",
            &[Value::U32(d), Value::U32(s)],
            Some(rng.gen_range(0.3..1.0)),
        );
    }
    for _ in 0..80 {
        let p = rng.gen_range(0..24u32);
        let v = rng.gen_range(0..24u32);
        facts.add(
            "dereference",
            &[Value::U32(p), Value::U32(v)],
            Some(rng.gen_range(0.3..1.0)),
        );
    }
    differential("cspa", lobster_workloads::cspa::PROGRAM, &facts);
}
