//! Differential test for dictionary-encoded columnar storage: with identical
//! seeded inputs, a program run over packed, narrow-width tables (the
//! `encode_columns` default) must produce *bit-identical* results to the
//! full-width build — same tuples in the same stored order, same probability
//! bits, same gradients — across provenance kinds and device parallelism
//! levels.
//!
//! The guarantee rests on two order-preservation facts: local symbol ids are
//! ranks in the sorted used-set (local order = global order), and packed
//! group words place the first logical column in the most-significant lane
//! (word order = column-lexicographic order). Every sort, dedup, join, and
//! provenance fold therefore sees operands in the same order either way.
//! Incremental delta sessions run through the same encoded seal/refresh
//! path and are pinned separately by the `incremental_agreement` suite,
//! which runs with encoding on by default.

use lobster::{
    Device, DeviceConfig, FactSet, Lobster, ProvenanceKind, RuntimeOptions, SymbolTable, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KINDS: [ProvenanceKind; 4] = [
    ProvenanceKind::Unit,
    ProvenanceKind::AddMultProb,
    ProvenanceKind::MaxMinProb,
    ProvenanceKind::DiffTop1Proof,
];
const PARALLELISMS: [usize; 2] = [1, 4];

fn device_with(parallelism: usize) -> Device {
    Device::new(DeviceConfig {
        parallelism,
        // Low threshold so parallelism-4 runs actually chunk the small
        // seeded workloads instead of falling back to sequential loops.
        min_parallel_rows: 64,
        ..DeviceConfig::default()
    })
}

/// Runs `source` over `facts` for one provenance kind at one parallelism,
/// with encoded storage enabled or disabled.
fn run(
    source: &str,
    kind: ProvenanceKind,
    parallelism: usize,
    encoded: bool,
    facts: &FactSet,
) -> lobster::RunResult {
    let program = Lobster::builder(source)
        .device(device_with(parallelism))
        .options(RuntimeOptions::default().with_encode_columns(encoded))
        .provenance(kind)
        .compile()
        .expect("program compiles");
    let results = program
        .run_batch(std::slice::from_ref(facts))
        .expect("program runs");
    results.into_iter().next().expect("one result")
}

/// Asserts two results are bit-identical: same relations, same tuples in
/// the same stored order, equal probability bits, equal gradients.
fn assert_bit_identical(packed: &lobster::RunResult, wide: &lobster::RunResult, context: &str) {
    assert_eq!(packed.relations(), wide.relations(), "{context}: relations");
    for name in packed.relations() {
        let (p, w) = (packed.relation(name), wide.relation(name));
        assert_eq!(p.len(), w.len(), "{context}: `{name}` cardinality");
        for (i, ((pt, po), (wt, wo))) in p.iter().zip(w).enumerate() {
            assert_eq!(pt, wt, "{context}: `{name}` tuple {i}");
            assert_eq!(
                po.probability.to_bits(),
                wo.probability.to_bits(),
                "{context}: `{name}` tuple {i} probability"
            );
            assert_eq!(
                po.gradient, wo.gradient,
                "{context}: `{name}` tuple {i} gradient"
            );
        }
    }
}

fn differential(name: &str, source: &str, facts: &FactSet) {
    for kind in KINDS {
        for p in PARALLELISMS {
            let packed = run(source, kind, p, true, facts);
            let wide = run(source, kind, p, false, facts);
            assert_bit_identical(
                &packed,
                &wide,
                &format!("{name} ({kind:?}, parallelism {p})"),
            );
        }
    }
}

/// Transitive closure over `u32` keys: with no `u32` arithmetic in the
/// program, both 4-byte edge columns pack into a single word column.
#[test]
fn transitive_closure_encoded_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut facts = FactSet::new();
    for _ in 0..160 {
        let x = rng.gen_range(0..40u32);
        let y = rng.gen_range(0..40u32);
        facts.add(
            "edge",
            &[Value::U32(x), Value::U32(y)],
            Some(rng.gen_range(0.3..1.0)),
        );
    }
    differential(
        "transitive-closure",
        lobster_workloads::graphs::TRANSITIVE_CLOSURE,
        &facts,
    );
}

/// CLUTRR: arity-3 relations whose 12 logical bytes split across two packed
/// groups — the multi-group layout case — with probabilistic kinship facts
/// driving gradients through the composition join.
#[test]
fn clutrr_encoded_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(22);
    let sample = lobster_workloads::clutrr::generate(6, &mut rng);
    let facts = sample.facts().to_fact_set();
    differential("clutrr", lobster_workloads::clutrr::PROGRAM, &facts);
}

/// CSPA: non-linear mutual recursion over seven join sites; the join-heavy
/// stress case of Table 4, here exercising packed keys on every join.
#[test]
fn cspa_encoded_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut facts = FactSet::new();
    for _ in 0..150 {
        let d = rng.gen_range(0..24u32);
        let s = rng.gen_range(0..24u32);
        facts.add(
            "assign",
            &[Value::U32(d), Value::U32(s)],
            Some(rng.gen_range(0.3..1.0)),
        );
    }
    for _ in 0..80 {
        let p = rng.gen_range(0..24u32);
        let v = rng.gen_range(0..24u32);
        facts.add(
            "dereference",
            &[Value::U32(p), Value::U32(v)],
            Some(rng.gen_range(0.3..1.0)),
        );
    }
    differential("cspa", lobster_workloads::cspa::PROGRAM, &facts);
}

/// Symbol-keyed reachability with a symbol constant in a rule body: the
/// dictionary path proper — global ids are sparse interner ids, local ids
/// are 1-byte ranks, and the constant must be rewritten into local space at
/// stratum entry. Input facts arrive in id order unrelated to
/// interning order, so the dictionary's rank assignment is exercised on a
/// genuinely shuffled used-set.
#[test]
fn symbol_reachability_encoded_is_bit_identical() {
    let source = "type edge(x: symbol, y: symbol)
        rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
        rel from_root(y) = path(\"node-widely-spaced-000\", y)
        query from_root";
    let symbols = SymbolTable::global();
    let ids: Vec<u32> = (0..48)
        .map(|i| symbols.intern(&format!("node-widely-spaced-{i:03}")))
        .collect();
    let mut rng = StdRng::seed_from_u64(24);
    let mut facts = FactSet::new();
    for _ in 0..120 {
        let x = ids[rng.gen_range(0..ids.len())];
        let y = ids[rng.gen_range(0..ids.len())];
        facts.add(
            "edge",
            &[Value::Symbol(x), Value::Symbol(y)],
            Some(rng.gen_range(0.3..1.0)),
        );
    }
    differential("symbol-reachability", source, &facts);
}
