//! PacMan-Maze example: plan the next safe action from noisy per-cell safety
//! predictions and compare against the ground-truth optimal moves.
//!
//! Run with `cargo run -p lobster-workloads --example pacman_planning`.

use lobster::Lobster;
use lobster_workloads::pacman;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ACTION_NAMES: [&str; 5] = ["right", "left", "down", "up", "stay"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);
    let sample = pacman::generate(8, &mut rng);
    println!(
        "maze {}x{}, actor at {:?}, goal at {:?}",
        sample.grid_size, sample.grid_size, sample.actor, sample.goal
    );

    let program = Lobster::builder(pacman::PROGRAM).compile_typed::<lobster::DiffTop1Proof>()?;
    let mut session = program.session();
    sample.facts().add_to_session(&mut session)?;
    let result = session.run()?;

    println!(
        "P(maze solvable) = {:.4}",
        result.probability("solvable", &[])
    );
    let mut actions: Vec<(f64, u32)> = result
        .relation("action")
        .iter()
        .map(|(t, o)| (o.probability, t[0].as_u32().unwrap_or(0)))
        .collect();
    actions.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("planned actions (by probability):");
    for (p, action) in &actions {
        println!("  [{p:.3}] {}", ACTION_NAMES[*action as usize]);
    }
    let optimal: Vec<&str> = sample
        .optimal_actions
        .iter()
        .map(|&a| ACTION_NAMES[a as usize])
        .collect();
    println!("ground-truth optimal first moves: {optimal:?}");
    println!(
        "symbolic execution: {} iterations, {} kernel launches, {:?}",
        result.stats.iterations, result.stats.kernel_launches, result.stats.elapsed
    );
    Ok(())
}
