//! RNA secondary structure example: fold a synthetic RNA sequence with the
//! probabilistic CFG program and report the most likely folded spans.
//!
//! Run with `cargo run -p lobster-workloads --example rna_folding`.

use lobster::Lobster;
use lobster_workloads::rna;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let sample = rna::generate(60, &mut rng);
    let sequence: String = sample.sequence.iter().collect();
    println!("sequence ({} nt): {sequence}", sample.len());
    println!(
        "{} candidate base pairs from the pairing model",
        sample.pairings.len()
    );

    let program = Lobster::builder(rna::PROGRAM).compile_typed::<lobster::Top1Proof>()?;
    let mut session = program.session();
    sample.facts().add_to_session(&mut session)?;
    let result = session.run()?;

    let mut spans: Vec<(f64, u32, u32)> = result
        .relation("fold")
        .iter()
        .map(|(t, o)| {
            (
                o.probability,
                t[0].as_u32().unwrap_or(0),
                t[1].as_u32().unwrap_or(0),
            )
        })
        .collect();
    spans.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("{} folded spans; the 8 most likely:", spans.len());
    for (p, i, j) in spans.iter().take(8) {
        println!("  [{p:.3}] ({i}, {j}) width {}", j - i + 1);
    }
    println!(
        "P(whole sequence folds) = {:.4}",
        result.probability("folded", &[])
    );
    println!(
        "symbolic execution: {} iterations, {} kernel launches, {:?}",
        result.stats.iterations, result.stats.kernel_launches, result.stats.elapsed
    );
    Ok(())
}
