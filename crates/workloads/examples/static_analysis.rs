//! Probabilistic static analysis example: rank taint-analysis alarms by
//! severity using the `minmaxprob` provenance.
//!
//! Run with `cargo run -p lobster-workloads --example static_analysis`.

use lobster::Lobster;
use lobster_workloads::psa;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let sample = psa::generate("sunflow-core", 250, 3, &mut rng);
    println!(
        "analyzing `{}`: {} extracted facts",
        sample.name,
        sample.facts.len()
    );

    let program = Lobster::builder(psa::PROGRAM).compile_typed::<lobster::MaxMinProb>()?;
    let mut session = program.session();
    sample.facts.add_to_session(&mut session)?;
    let result = session.run()?;

    let mut alarms: Vec<(f64, String)> = result
        .relation("alarm")
        .iter()
        .map(|(tuple, out)| {
            (
                out.probability,
                format!("source {} -> sink {}", tuple[0], tuple[1]),
            )
        })
        .collect();
    alarms.sort_by(|a, b| b.0.total_cmp(&a.0));

    println!("{} alarms, top 10 by severity:", alarms.len());
    for (severity, alarm) in alarms.iter().take(10) {
        println!("  [{severity:.3}] {alarm}");
    }
    println!(
        "symbolic execution: {} iterations, {} kernel launches, {:?}",
        result.stats.iterations, result.stats.kernel_launches, result.stats.elapsed
    );
    Ok(())
}
