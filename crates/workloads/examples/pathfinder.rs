//! Pathfinder end-to-end example: generate a synthetic "image" (a lattice
//! graph with a hidden dashed path), run the differentiable symbolic program,
//! and inspect the prediction and its gradients.
//!
//! Run with `cargo run -p lobster-workloads --example pathfinder`.

use lobster::Lobster;
use lobster_workloads::pathfinder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    for (label, positive) in [("positive", true), ("negative", false)] {
        let sample = pathfinder::generate(8, positive, &mut rng);
        let program =
            Lobster::builder(pathfinder::PROGRAM).compile_typed::<lobster::DiffTop1Proof>()?;
        let mut session = program.session();
        sample.facts().add_to_session(&mut session)?;
        let result = session.run()?;
        let p = result.probability("endpoints_connected", &[]);
        println!(
            "{label} sample: grid {}x{}, {} predicted edges, P(connected) = {p:.4} (truth: {})",
            sample.grid_size,
            sample.grid_size,
            sample.edges.len(),
            sample.label,
        );
        let grads = result.gradient("endpoints_connected", &[]);
        println!(
            "  gradient flows to {} input facts (the edges on the most likely path)",
            grads.len()
        );
        println!(
            "  symbolic work: {} fix-point iterations, {} kernels",
            result.stats.iterations, result.stats.kernel_launches
        );
    }
    Ok(())
}
