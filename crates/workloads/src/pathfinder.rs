//! The Pathfinder task (paper Section 2): decide whether two dots in an image
//! are connected by a sequence of dashes.
//!
//! The neural model overlays an `n × n` lattice on the image and predicts,
//! for each lattice edge, the probability that a dash connects the two cells,
//! plus the probability that each cell contains a dot. The symbolic program
//! computes reachability over the predicted graph. The generator below
//! produces the same structure directly: a hidden ground-truth dashed path,
//! confident probabilities along it, and low-probability clutter elsewhere.

use crate::WorkloadFacts;
use lobster::Value;
use rand::Rng;

/// The Pathfinder Datalog program (Figure 3c of the paper).
pub const PROGRAM: &str = "
    type Cell = u32
    type edge(x: Cell, y: Cell)
    type is_endpoint(x: Cell)
    rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
    rel endpoints_connected() = is_endpoint(x), is_endpoint(y), path(x, y), x != y
    query endpoints_connected
";

/// One generated Pathfinder sample.
#[derive(Debug, Clone)]
pub struct PathfinderSample {
    /// Lattice resolution (cells per side).
    pub grid_size: u32,
    /// Predicted edges `(from, to, probability)` (both directions included).
    pub edges: Vec<(u32, u32, f64)>,
    /// The two endpoint cells.
    pub endpoints: (u32, u32),
    /// Ground truth: whether the endpoints are connected by the dashed path.
    pub label: bool,
}

impl PathfinderSample {
    /// The facts fed to the symbolic program.
    pub fn facts(&self) -> WorkloadFacts {
        let mut facts = WorkloadFacts::new();
        for &(a, b, p) in &self.edges {
            facts.push("edge", vec![Value::U32(a), Value::U32(b)], Some(p));
        }
        facts.push(
            "is_endpoint",
            vec![Value::U32(self.endpoints.0)],
            Some(0.99),
        );
        facts.push(
            "is_endpoint",
            vec![Value::U32(self.endpoints.1)],
            Some(0.99),
        );
        facts
    }
}

fn cell(grid: u32, x: u32, y: u32) -> u32 {
    y * grid + x
}

/// Generates one Pathfinder sample on an `grid_size × grid_size` lattice.
///
/// `positive` controls the ground-truth label: positive samples contain an
/// unbroken dashed path between the endpoints; negative samples have the path
/// broken in the middle.
pub fn generate(grid_size: u32, positive: bool, rng: &mut impl Rng) -> PathfinderSample {
    assert!(grid_size >= 3, "grid must be at least 3x3");
    // Random monotone lattice walk from the left edge to the right edge.
    let mut x = 0u32;
    let mut y = rng.gen_range(0..grid_size);
    let mut walk = vec![(x, y)];
    while x + 1 < grid_size {
        if rng.gen_bool(0.6) || y == 0 || y + 1 == grid_size {
            x += 1;
        } else if rng.gen_bool(0.5) {
            y -= 1;
        } else {
            y += 1;
        }
        walk.push((x, y));
    }
    let endpoints = (cell(grid_size, walk[0].0, walk[0].1), cell(grid_size, x, y));

    let mut edges = Vec::new();
    let push_both = |edges: &mut Vec<(u32, u32, f64)>, a: u32, b: u32, p: f64| {
        edges.push((a, b, p));
        edges.push((b, a, p));
    };
    // Dashes along the walk: confident predictions, with a gap in the middle
    // for negative samples.
    let break_at = walk.len() / 2;
    for (i, window) in walk.windows(2).enumerate() {
        let a = cell(grid_size, window[0].0, window[0].1);
        let b = cell(grid_size, window[1].0, window[1].1);
        if !positive && i == break_at {
            // The broken dash still shows up as a low-confidence edge.
            push_both(&mut edges, a, b, rng.gen_range(0.01..0.1));
        } else {
            push_both(&mut edges, a, b, rng.gen_range(0.85..0.99));
        }
    }
    // Background clutter: a sparse sample of other lattice edges with low
    // probability (the network is unsure about faint texture).
    for cy in 0..grid_size {
        for cx in 0..grid_size {
            if cx + 1 < grid_size && rng.gen_bool(0.25) {
                let p = rng.gen_range(0.01..0.2);
                push_both(
                    &mut edges,
                    cell(grid_size, cx, cy),
                    cell(grid_size, cx + 1, cy),
                    p,
                );
            }
            if cy + 1 < grid_size && rng.gen_bool(0.25) {
                let p = rng.gen_range(0.01..0.2);
                push_both(
                    &mut edges,
                    cell(grid_size, cx, cy),
                    cell(grid_size, cx, cy + 1),
                    p,
                );
            }
        }
    }
    PathfinderSample {
        grid_size,
        edges,
        endpoints,
        label: positive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster::Lobster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_produces_a_path_shaped_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        let sample = generate(6, true, &mut rng);
        assert_eq!(sample.grid_size, 6);
        assert!(sample.label);
        assert!(sample.edges.len() > 10);
        assert_ne!(sample.endpoints.0, sample.endpoints.1);
        assert!(!sample.facts().is_empty());
    }

    #[test]
    fn positive_samples_are_connected_and_negative_ones_are_not() {
        let mut rng = StdRng::seed_from_u64(11);
        for positive in [true, false] {
            let sample = generate(5, positive, &mut rng);
            let program = Lobster::builder(PROGRAM)
                .compile_typed::<lobster::DiffTop1Proof>()
                .unwrap();
            let mut session = program.session();
            sample.facts().add_to_session(&mut session).unwrap();
            let result = session.run().unwrap();
            let p = result.probability("endpoints_connected", &[]);
            if positive {
                assert!(
                    p > 0.3,
                    "positive sample should be likely connected, got {p}"
                );
            } else {
                assert!(
                    p < 0.2,
                    "negative sample should be unlikely connected, got {p}"
                );
            }
        }
    }
}
