//! Probabilistic Static Analysis (PSA): a dataflow/taint analysis whose
//! inputs carry confidence scores, used to rank alarms and suppress false
//! positives (paper Section 6.1, Figure 11).
//!
//! The analysis facts for each subject program (named after DaCapo-style
//! benchmarks) are generated synthetically: a call graph, intraprocedural
//! dataflow edges, taint sources, sinks, and sanitizers, each with a
//! confidence reflecting how certain the fact extractor is.

use crate::WorkloadFacts;
use lobster::Value;
use rand::Rng;

/// The probabilistic static analysis program (uses the `minmaxprob`
/// provenance: an alarm's severity is the strength of its weakest link along
/// its strongest derivation).
pub const PROGRAM: &str = "
    type flow_edge(x: u32, y: u32)
    type call_edge(x: u32, y: u32)
    type ret_edge(x: u32, y: u32)
    type source(x: u32)
    type sink(x: u32)
    type sanitizer(x: u32)
    // Intra- and inter-procedural flow.
    rel step(x, y) = flow_edge(x, y)
    rel step(x, y) = call_edge(x, y)
    rel step(x, y) = ret_edge(x, y)
    rel flow(x, y) = step(x, y)
    rel flow(x, z) = flow(x, y), step(y, z)
    // Tainted nodes and alarms.
    rel tainted(x) = source(x)
    rel tainted(y) = tainted(x), step(x, y)
    rel sanitized(y) = sanitizer(x), flow(x, y)
    rel alarm(s, t) = source(s), sink(t), flow(s, t)
    rel reaches_sink(s) = alarm(s, t)
    query alarm
    query tainted
";

/// The subject programs used by Figure 11, with synthetic-graph sizes scaled
/// so the whole figure regenerates in minutes. Relative sizes follow the
/// originals (sunflow-core is the smallest, graphchi/jme3 the largest).
pub const FIG11_PROGRAMS: [(&str, u32, u32); 7] = [
    ("sunflow-core", 250, 3),
    ("sunflow", 500, 3),
    ("biojava", 700, 4),
    ("graphchi", 900, 4),
    ("avrora", 800, 3),
    ("pmd", 600, 4),
    ("jme3", 1000, 4),
];

/// One generated analysis fact base.
#[derive(Debug, Clone)]
pub struct PsaSample {
    /// Subject program name.
    pub name: String,
    /// Number of program points.
    pub nodes: u32,
    /// Generated facts.
    pub facts: WorkloadFacts,
}

/// Generates the analysis input for a subject program with `nodes` program
/// points and average out-degree `degree`.
pub fn generate(name: &str, nodes: u32, degree: u32, rng: &mut impl Rng) -> PsaSample {
    let mut facts = WorkloadFacts::new();
    // Dataflow edges: mostly local (forward) with a few long jumps.
    for v in 0..nodes {
        for _ in 0..degree {
            let span = if rng.gen_bool(0.8) {
                rng.gen_range(1..8)
            } else {
                rng.gen_range(8..64)
            };
            let t = (v + span).min(nodes - 1);
            if t != v {
                let confidence = rng.gen_range(0.55..0.99);
                facts.push(
                    "flow_edge",
                    vec![Value::U32(v), Value::U32(t)],
                    Some(confidence),
                );
            }
        }
    }
    // Call / return edges between "procedprevious" regions.
    let procedures = (nodes / 40).max(2);
    for _ in 0..procedures * 3 {
        let caller = rng.gen_range(0..nodes);
        let callee = rng.gen_range(0..nodes);
        if caller != callee {
            facts.push(
                "call_edge",
                vec![Value::U32(caller), Value::U32(callee)],
                Some(rng.gen_range(0.7..0.99)),
            );
            facts.push(
                "ret_edge",
                vec![
                    Value::U32(callee),
                    Value::U32(caller.saturating_add(1).min(nodes - 1)),
                ],
                Some(rng.gen_range(0.7..0.99)),
            );
        }
    }
    // Sources, sinks, and sanitizers.
    for _ in 0..(nodes / 30).max(2) {
        facts.push(
            "source",
            vec![Value::U32(rng.gen_range(0..nodes / 2))],
            Some(rng.gen_range(0.6..0.95)),
        );
        facts.push(
            "sink",
            vec![Value::U32(rng.gen_range(nodes / 2..nodes))],
            Some(rng.gen_range(0.6..0.95)),
        );
    }
    for _ in 0..(nodes / 60).max(1) {
        facts.push(
            "sanitizer",
            vec![Value::U32(rng.gen_range(0..nodes))],
            Some(rng.gen_range(0.5..0.9)),
        );
    }
    PsaSample {
        name: name.to_string(),
        nodes,
        facts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster::Lobster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn program_compiles_and_runs_on_a_small_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let sample = generate("sunflow-core", 120, 3, &mut rng);
        assert!(sample.facts.len() > 100);
        let program = Lobster::builder(PROGRAM)
            .compile_typed::<lobster::MaxMinProb>()
            .unwrap();
        let mut session = program.session();
        sample.facts.add_to_session(&mut session).unwrap();
        let result = session.run().unwrap();
        // Alarms exist and their severities are valid probabilities.
        assert!(!result.relation("alarm").is_empty());
        assert!(result
            .relation("alarm")
            .iter()
            .all(|(_, o)| o.probability > 0.0 && o.probability <= 1.0));
    }

    #[test]
    fn alarm_severity_is_bounded_by_the_weakest_link() {
        let program = Lobster::builder(PROGRAM)
            .compile_typed::<lobster::MaxMinProb>()
            .unwrap();
        let mut session = program.session();
        session
            .add_fact("source", &[Value::U32(0)], Some(0.9))
            .unwrap();
        session
            .add_fact("flow_edge", &[Value::U32(0), Value::U32(1)], Some(0.3))
            .unwrap();
        session
            .add_fact("sink", &[Value::U32(1)], Some(0.8))
            .unwrap();
        let result = session.run().unwrap();
        let severity = result.probability("alarm", &[Value::U32(0), Value::U32(1)]);
        assert!((severity - 0.3).abs() < 1e-9);
    }

    #[test]
    fn fig11_program_list_is_complete() {
        assert_eq!(FIG11_PROGRAMS.len(), 7);
        assert!(FIG11_PROGRAMS
            .iter()
            .all(|(_, nodes, degree)| *nodes > 0 && *degree > 0));
    }
}
