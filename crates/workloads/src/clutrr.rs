//! The CLUTRR task: infer an unstated kinship relation from a natural
//! language passage by composing the relations that are stated.
//!
//! A relation extractor reads the passage and produces probabilistic
//! `kinship(r, a, b)` facts; the symbolic program composes them with a small
//! kinship knowledge base until the relation between the two query entities
//! is derived. The hardest problems in the paper's dataset require chains of
//! length 10.

use crate::WorkloadFacts;
use lobster::Value;
use rand::Rng;

/// The CLUTRR reasoning program (3 rules).
pub const PROGRAM: &str = "
    type kinship(r: u32, a: u32, b: u32)
    type composition(r1: u32, r2: u32, r3: u32)
    rel derived(r, a, b) = kinship(r, a, b)
    rel derived(r3, a, c) = derived(r1, a, b), kinship(r2, b, c), composition(r1, r2, r3)
    rel answer(r) = target(a, b), derived(r, a, b)
    type target(a: u32, b: u32)
    query answer
";

/// Kinship relation codes.
pub mod relations {
    /// `mother`
    pub const MOTHER: u32 = 0;
    /// `father`
    pub const FATHER: u32 = 1;
    /// `daughter`
    pub const DAUGHTER: u32 = 2;
    /// `son`
    pub const SON: u32 = 3;
    /// `grandmother`
    pub const GRANDMOTHER: u32 = 4;
    /// `grandfather`
    pub const GRANDFATHER: u32 = 5;
    /// `sister`
    pub const SISTER: u32 = 6;
    /// `brother`
    pub const BROTHER: u32 = 7;
    /// Number of relation codes.
    pub const COUNT: u32 = 8;
}

/// The kinship composition knowledge base `(r1, r2, r3)`: if `a` is `r1` of
/// `b` and `b` is `r2` of `c`, then `a` is `r3` of `c`.
pub fn composition_table() -> Vec<(u32, u32, u32)> {
    use relations::*;
    vec![
        (MOTHER, MOTHER, GRANDMOTHER),
        (MOTHER, FATHER, GRANDMOTHER),
        (FATHER, MOTHER, GRANDFATHER),
        (FATHER, FATHER, GRANDFATHER),
        (SISTER, MOTHER, MOTHER),
        (SISTER, FATHER, FATHER),
        (BROTHER, MOTHER, MOTHER),
        (BROTHER, FATHER, FATHER),
        (DAUGHTER, DAUGHTER, DAUGHTER),
        (SON, SON, SON),
        (DAUGHTER, SISTER, DAUGHTER),
        (SON, BROTHER, SON),
        (SISTER, SISTER, SISTER),
        (BROTHER, BROTHER, BROTHER),
        (SISTER, BROTHER, BROTHER),
        (BROTHER, SISTER, SISTER),
        (MOTHER, DAUGHTER, SISTER),
        (FATHER, SON, BROTHER),
    ]
}

/// One generated CLUTRR sample.
#[derive(Debug, Clone)]
pub struct ClutrrSample {
    /// Stated kinship facts along the chain: `(relation, a, b, probability)`.
    pub stated: Vec<(u32, u32, u32, f64)>,
    /// The query pair.
    pub target: (u32, u32),
    /// The ground-truth answer relation, when derivable from the chain.
    pub answer: Option<u32>,
    /// Chain length.
    pub chain_length: usize,
}

impl ClutrrSample {
    /// The facts fed to the symbolic program.
    pub fn facts(&self) -> WorkloadFacts {
        let mut facts = WorkloadFacts::new();
        for &(r, a, b, p) in &self.stated {
            facts.push(
                "kinship",
                vec![Value::U32(r), Value::U32(a), Value::U32(b)],
                Some(p),
            );
        }
        for (r1, r2, r3) in composition_table() {
            facts.push(
                "composition",
                vec![Value::U32(r1), Value::U32(r2), Value::U32(r3)],
                None,
            );
        }
        facts.push(
            "target",
            vec![Value::U32(self.target.0), Value::U32(self.target.1)],
            None,
        );
        facts
    }
}

/// Generates a kinship chain of the given length. Each link is stated with
/// high probability along with a lower-probability distractor relation.
pub fn generate(chain_length: usize, rng: &mut impl Rng) -> ClutrrSample {
    assert!(chain_length >= 1);
    let table = composition_table();
    let mut stated = Vec::new();
    // Person 0 .. chain_length form a chain; derive the composed relation
    // between person 0 and the last person when the table allows it.
    // `relation_so_far` is the composed relation between person 0 and the
    // current chain end. Some compositions dead-end (e.g. nothing composes
    // after `grandmother`); from then on the chain has no derivable answer
    // and `relation_so_far` must stay `None` — re-seeding it from a later
    // link would claim a whole-chain answer that only covers that link.
    let mut relation_so_far: Option<u32> = None;
    for link in 0..chain_length {
        let (a, b) = (link as u32, link as u32 + 1);
        let r = match (link, relation_so_far) {
            (0, _) => {
                let r = rng.gen_range(0..relations::COUNT);
                relation_so_far = Some(r);
                r
            }
            (_, None) => rng.gen_range(0..relations::COUNT),
            (_, Some(prev)) => {
                // Prefer a link that composes with what we have so far.
                let candidates: Vec<u32> = table
                    .iter()
                    .filter(|(r1, _, _)| *r1 == prev)
                    .map(|(_, r2, _)| *r2)
                    .collect();
                let r = if candidates.is_empty() {
                    rng.gen_range(0..relations::COUNT)
                } else {
                    candidates[rng.gen_range(0..candidates.len())]
                };
                relation_so_far = table
                    .iter()
                    .find(|(r1, r2, _)| *r1 == prev && *r2 == r)
                    .map(|(_, _, r3)| *r3);
                r
            }
        };
        stated.push((r, a, b, rng.gen_range(0.85..0.98)));
        // A distractor extraction for the same pair.
        let distractor = (r + 1 + rng.gen_range(0..relations::COUNT - 1)) % relations::COUNT;
        stated.push((distractor, a, b, rng.gen_range(0.02..0.2)));
    }
    let answer = if chain_length == 1 {
        Some(stated[0].0)
    } else {
        relation_so_far
    };
    ClutrrSample {
        stated,
        target: (0, chain_length as u32),
        answer,
        chain_length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster::Lobster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn program_compiles() {
        lobster_datalog::parse(PROGRAM).unwrap();
    }

    #[test]
    fn composition_table_is_consistent() {
        let table = composition_table();
        assert!(table.len() >= 15);
        assert!(table.iter().all(|&(a, b, c)| a < relations::COUNT
            && b < relations::COUNT
            && c < relations::COUNT));
    }

    #[test]
    fn short_chains_derive_the_expected_answer() {
        let mut rng = StdRng::seed_from_u64(9);
        for length in [2usize, 3, 4] {
            let sample = generate(length, &mut rng);
            let Some(answer) = sample.answer else {
                continue;
            };
            let program = Lobster::builder(PROGRAM)
                .compile_typed::<lobster::DiffTop1Proof>()
                .unwrap();
            let mut session = program.session();
            sample.facts().add_to_session(&mut session).unwrap();
            let result = session.run().unwrap();
            let best = result
                .relation("answer")
                .iter()
                .max_by(|a, b| a.1.probability.total_cmp(&b.1.probability))
                .map(|(t, _)| t[0].as_u32().unwrap());
            assert_eq!(best, Some(answer), "chain length {length}");
        }
    }
}
