//! The PacMan-Maze task: plan a safe next step from an image of the maze.
//!
//! The neural component predicts, for every grid cell, the probability that
//! the cell is *safe* (contains no enemy). The symbolic program finds which
//! of the four first moves from the actor's cell can still reach the goal
//! through safe cells, giving the agent its next action. The paper uses the
//! task both for training (reinforcement-style curriculum from 5×5 to 20×20
//! mazes) and as a scalability benchmark (Figure 10a scales the maze size).

use crate::WorkloadFacts;
use lobster::Value;
use rand::Rng;
use std::collections::VecDeque;

/// The PacMan planning program (14 rules).
pub const PROGRAM: &str = "
    type safe(x: u32, y: u32)
    type actor(x: u32, y: u32)
    type goal(x: u32, y: u32)
    // Legal single-step moves between safe cells (4 directions).
    rel move(x, y, xx, y) = safe(x, y), safe(xx, y), xx == x + 1
    rel move(x, y, xx, y) = safe(x, y), safe(xx, y), x == xx + 1
    rel move(x, y, x, yy) = safe(x, y), safe(x, yy), yy == y + 1
    rel move(x, y, x, yy) = safe(x, y), safe(x, yy), y == yy + 1
    // Cells the actor can reach through safe cells.
    rel reachable(x, y) = actor(x, y)
    rel reachable(x, y) = reachable(a, b), move(a, b, x, y)
    // Cells from which the goal is reachable through safe cells.
    rel can_reach(x, y) = goal(x, y)
    rel can_reach(x, y) = move(x, y, a, b), can_reach(a, b)
    // Whether the whole maze is solvable from the actor position.
    rel solvable() = reachable(x, y), goal(x, y)
    // The next action: 0 = right, 1 = left, 2 = down, 3 = up.
    rel action(0) = actor(x, y), move(x, y, xx, y), xx == x + 1, can_reach(xx, y)
    rel action(1) = actor(x, y), move(x, y, xx, y), x == xx + 1, can_reach(xx, y)
    rel action(2) = actor(x, y), move(x, y, x, yy), yy == y + 1, can_reach(x, yy)
    rel action(3) = actor(x, y), move(x, y, x, yy), y == yy + 1, can_reach(x, yy)
    // Staying put is also an action when the actor already sits on the goal.
    rel action(4) = actor(x, y), goal(x, y)
    rel done() = action(4)
    query action
    query solvable
";

/// One generated maze.
#[derive(Debug, Clone)]
pub struct PacmanSample {
    /// Maze side length.
    pub grid_size: u32,
    /// Per-cell safety probabilities, indexed `y * grid + x`.
    pub safety: Vec<f64>,
    /// Actor position.
    pub actor: (u32, u32),
    /// Goal position.
    pub goal: (u32, u32),
    /// Ground-truth optimal first actions (BFS over truly safe cells);
    /// encoded like the program's `action` relation.
    pub optimal_actions: Vec<u32>,
}

impl PacmanSample {
    /// The facts fed to the symbolic program.
    pub fn facts(&self) -> WorkloadFacts {
        let mut facts = WorkloadFacts::new();
        for y in 0..self.grid_size {
            for x in 0..self.grid_size {
                let p = self.safety[(y * self.grid_size + x) as usize];
                if p > 0.02 {
                    facts.push("safe", vec![Value::U32(x), Value::U32(y)], Some(p));
                }
            }
        }
        facts.push(
            "actor",
            vec![Value::U32(self.actor.0), Value::U32(self.actor.1)],
            None,
        );
        facts.push(
            "goal",
            vec![Value::U32(self.goal.0), Value::U32(self.goal.1)],
            None,
        );
        facts
    }
}

/// Generates a maze with a guaranteed safe corridor from actor to goal and a
/// few enemies elsewhere.
pub fn generate(grid_size: u32, rng: &mut impl Rng) -> PacmanSample {
    assert!(grid_size >= 3);
    let n = (grid_size * grid_size) as usize;
    let actor = (0u32, 0u32);
    let goal = (grid_size - 1, grid_size - 1);
    // True enemy placement: ~15% of cells, never on the L-shaped corridor.
    let mut enemy = vec![false; n];
    for y in 0..grid_size {
        for x in 0..grid_size {
            let on_corridor = y == 0 || x == grid_size - 1;
            if !on_corridor && rng.gen_bool(0.15) {
                enemy[(y * grid_size + x) as usize] = true;
            }
        }
    }
    // Predicted safety: confident but noisy.
    let safety: Vec<f64> = enemy
        .iter()
        .map(|&e| {
            if e {
                rng.gen_range(0.01..0.15)
            } else {
                rng.gen_range(0.85..0.99)
            }
        })
        .collect();

    // Ground-truth optimal actions via BFS over truly safe cells.
    let optimal_actions = optimal_first_moves(grid_size, &enemy, actor, goal);
    PacmanSample {
        grid_size,
        safety,
        actor,
        goal,
        optimal_actions,
    }
}

/// BFS distances from the goal over safe cells; returns the first moves from
/// the actor that lie on a shortest safe path.
fn optimal_first_moves(grid: u32, enemy: &[bool], actor: (u32, u32), goal: (u32, u32)) -> Vec<u32> {
    let idx = |x: u32, y: u32| (y * grid + x) as usize;
    let mut dist = vec![u32::MAX; (grid * grid) as usize];
    let mut queue = VecDeque::new();
    dist[idx(goal.0, goal.1)] = 0;
    queue.push_back(goal);
    while let Some((x, y)) = queue.pop_front() {
        let d = dist[idx(x, y)];
        let mut neighbors = Vec::new();
        if x + 1 < grid {
            neighbors.push((x + 1, y));
        }
        if x > 0 {
            neighbors.push((x - 1, y));
        }
        if y + 1 < grid {
            neighbors.push((x, y + 1));
        }
        if y > 0 {
            neighbors.push((x, y - 1));
        }
        for (nx, ny) in neighbors {
            if !enemy[idx(nx, ny)] && dist[idx(nx, ny)] == u32::MAX {
                dist[idx(nx, ny)] = d + 1;
                queue.push_back((nx, ny));
            }
        }
    }
    let (ax, ay) = actor;
    let here = dist[idx(ax, ay)];
    if here == u32::MAX {
        return Vec::new();
    }
    if (ax, ay) == goal {
        return vec![4];
    }
    let mut actions = Vec::new();
    let candidates: [(i64, i64, u32); 4] = [(1, 0, 0), (-1, 0, 1), (0, 1, 2), (0, -1, 3)];
    for (dx, dy, action) in candidates {
        let nx = ax as i64 + dx;
        let ny = ay as i64 + dy;
        if nx < 0 || ny < 0 || nx >= grid as i64 || ny >= grid as i64 {
            continue;
        }
        let (nx, ny) = (nx as u32, ny as u32);
        if !enemy[idx(nx, ny)] && dist[idx(nx, ny)] != u32::MAX && dist[idx(nx, ny)] < here {
            actions.push(action);
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster::Lobster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn program_compiles_with_fourteen_rules() {
        let compiled = lobster_datalog::parse(PROGRAM).unwrap();
        let rules: usize = compiled.ram.strata.iter().map(|s| s.rules.len()).sum();
        assert!(
            rules >= 14,
            "expected at least 14 compiled rules, got {rules}"
        );
    }

    #[test]
    fn generated_maze_is_solvable_and_the_planner_agrees() {
        let mut rng = StdRng::seed_from_u64(42);
        let sample = generate(5, &mut rng);
        assert!(
            !sample.optimal_actions.is_empty(),
            "the corridor guarantees solvability"
        );
        let program = Lobster::builder(PROGRAM)
            .compile_typed::<lobster::DiffTop1Proof>()
            .unwrap();
        let mut session = program.session();
        sample.facts().add_to_session(&mut session).unwrap();
        let result = session.run().unwrap();
        assert!(result.probability("solvable", &[]) > 0.2);
        // The planner's best-scoring action should be one of the ground-truth
        // optimal first moves.
        let best = result
            .relation("action")
            .iter()
            .max_by(|a, b| a.1.probability.total_cmp(&b.1.probability))
            .map(|(t, _)| t[0].as_u32().unwrap())
            .unwrap();
        assert!(
            sample.optimal_actions.contains(&best),
            "planner chose {best}, optimal set {:?}",
            sample.optimal_actions
        );
    }
}
