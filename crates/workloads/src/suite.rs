//! The benchmark suite metadata of Table 2.

use lobster_provenance::ProvenanceKind;

/// The reasoning mode of a benchmark task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// End-to-end differentiable reasoning (used during training).
    Differentiable,
    /// Probabilistic inference.
    Probabilistic,
    /// Plain discrete Datalog.
    Discrete,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TaskKind::Differentiable => "Diff.",
            TaskKind::Probabilistic => "Prob.",
            TaskKind::Discrete => "Disc.",
        };
        f.write_str(s)
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct BenchmarkInfo {
    /// Task name as it appears in the paper.
    pub name: &'static str,
    /// Input modality in the original pipeline.
    pub input: &'static str,
    /// What the logic program computes.
    pub logic: &'static str,
    /// Reasoning mode.
    pub kind: TaskKind,
    /// The Datalog program used in this reproduction.
    pub program: &'static str,
    /// The provenance semiring the paper pairs the task with.
    pub provenance: ProvenanceKind,
}

impl BenchmarkInfo {
    /// Number of compiled rules in this reproduction's program (the paper's
    /// Table 2 reports the source-rule counts of the original programs, which
    /// differ slightly from these compiled counts).
    pub fn rule_count(&self) -> usize {
        lobster_datalog::parse(self.program)
            .map(|p| p.ram.strata.iter().map(|s| s.rules.len()).sum())
            .unwrap_or(0)
    }
}

/// The benchmark suite (Table 2 of the paper).
pub fn table2() -> Vec<BenchmarkInfo> {
    vec![
        BenchmarkInfo {
            name: "Pathfinder",
            input: "Image",
            logic: "Check if two dots are connected by a sequence of dashes.",
            kind: TaskKind::Differentiable,
            program: crate::pathfinder::PROGRAM,
            provenance: ProvenanceKind::DiffTop1Proof,
        },
        BenchmarkInfo {
            name: "PacMan-Maze",
            input: "Image",
            logic: "Plan optimal next step by finding safe path from actor to goal.",
            kind: TaskKind::Differentiable,
            program: crate::pacman::PROGRAM,
            provenance: ProvenanceKind::DiffTop1Proof,
        },
        BenchmarkInfo {
            name: "HWF",
            input: "Images",
            logic: "Parse and evaluate formula over recognized symbols.",
            kind: TaskKind::Differentiable,
            program: crate::hwf::PROGRAM,
            provenance: ProvenanceKind::DiffTop1Proof,
        },
        BenchmarkInfo {
            name: "CLUTRR",
            input: "Text",
            logic: "Deduce kinship by recursively applying composition rules.",
            kind: TaskKind::Differentiable,
            program: crate::clutrr::PROGRAM,
            provenance: ProvenanceKind::DiffTop1Proof,
        },
        BenchmarkInfo {
            name: "Prob. Static Analysis",
            input: "Code",
            logic: "Compute alarms with severity via probabilistic static analysis.",
            kind: TaskKind::Probabilistic,
            program: crate::psa::PROGRAM,
            provenance: ProvenanceKind::MaxMinProb,
        },
        BenchmarkInfo {
            name: "RNA SSP",
            input: "RNA",
            logic: "Parse an RNA sequence according to a context-free grammar.",
            kind: TaskKind::Probabilistic,
            program: crate::rna::PROGRAM,
            provenance: ProvenanceKind::Top1Proof,
        },
        BenchmarkInfo {
            name: "Transitive Closure",
            input: "Graph",
            logic: "Compute transitive closure of a directed graph.",
            kind: TaskKind::Discrete,
            program: crate::graphs::TRANSITIVE_CLOSURE,
            provenance: ProvenanceKind::Unit,
        },
        BenchmarkInfo {
            name: "Same Generation",
            input: "Graph",
            logic: "Compute graph vertices that are in the \"same generation\".",
            kind: TaskKind::Discrete,
            program: crate::graphs::SAME_GENERATION,
            provenance: ProvenanceKind::Unit,
        },
        BenchmarkInfo {
            name: "CSPA",
            input: "Graph",
            logic: "A context sensitive pointer analysis.",
            kind: TaskKind::Discrete,
            program: crate::cspa::PROGRAM,
            provenance: ProvenanceKind::Unit,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_tasks_are_present_and_compile() {
        let suite = table2();
        assert_eq!(suite.len(), 9);
        for info in &suite {
            assert!(info.rule_count() > 0, "{} failed to compile", info.name);
        }
    }

    #[test]
    fn kinds_match_the_paper() {
        let suite = table2();
        let diff = suite
            .iter()
            .filter(|i| i.kind == TaskKind::Differentiable)
            .count();
        let prob = suite
            .iter()
            .filter(|i| i.kind == TaskKind::Probabilistic)
            .count();
        let disc = suite
            .iter()
            .filter(|i| i.kind == TaskKind::Discrete)
            .count();
        assert_eq!((diff, prob, disc), (4, 2, 3));
        assert_eq!(TaskKind::Differentiable.to_string(), "Diff.");
    }
}
