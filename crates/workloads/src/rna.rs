//! RNA Secondary Structure Prediction (SSP): parse an RNA sequence according
//! to a context-free folding grammar given probabilistic base-pairing scores
//! from a learned model (paper Section 6.1, Figure 12).
//!
//! The generator stands in for the ArchiveII dataset: sequences between 28
//! and 175 nucleotides with pairing probabilities concentrated on
//! Watson–Crick-complementary positions. The Datalog program is a
//! Nussinov-style CFG: a span folds if it is a pairing, a pairing wrapped
//! around a folded inner span, or a bifurcation of two folded spans — the
//! bifurcation rule is what gives the cubic growth the paper's Figure 12
//! scales over.

use crate::WorkloadFacts;
use lobster::Value;
use rand::Rng;

/// The RNA SSP folding program.
pub const PROGRAM: &str = "
    type paired(i: u32, j: u32)
    type length(n: u32)
    // A folded span [i, j].
    rel fold(i, j) = paired(i, j)
    rel fold(i, j) = paired(i, j), fold(i2, j2), i2 == i + 1, j == j2 + 1
    rel fold(i, j) = fold(i, k), fold(k2, j), k2 == k + 1
    // The whole sequence folds.
    rel folded() = length(n), fold(0, m), m == n - 1
    query fold
    query folded
";

/// RNA bases.
pub const BASES: [char; 4] = ['A', 'C', 'G', 'U'];

/// One generated RNA sample.
#[derive(Debug, Clone)]
pub struct RnaSample {
    /// The nucleotide sequence.
    pub sequence: Vec<char>,
    /// Predicted pairings `(i, j, probability)` with `i < j`.
    pub pairings: Vec<(u32, u32, f64)>,
}

impl RnaSample {
    /// Sequence length in nucleotides.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// `true` for the empty sequence (never generated).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// The facts fed to the symbolic program.
    pub fn facts(&self) -> WorkloadFacts {
        let mut facts = WorkloadFacts::new();
        facts.push("length", vec![Value::U32(self.sequence.len() as u32)], None);
        for &(i, j, p) in &self.pairings {
            facts.push("paired", vec![Value::U32(i), Value::U32(j)], Some(p));
        }
        facts
    }
}

fn complementary(a: char, b: char) -> bool {
    matches!(
        (a, b),
        ('A', 'U') | ('U', 'A') | ('G', 'C') | ('C', 'G') | ('G', 'U') | ('U', 'G')
    )
}

/// Generates a sequence of the given length together with base-pairing
/// probabilities from a simulated pairing model.
pub fn generate(length: usize, rng: &mut impl Rng) -> RnaSample {
    assert!(
        length >= 8,
        "sequences shorter than 8 nt are not interesting"
    );
    let sequence: Vec<char> = (0..length).map(|_| BASES[rng.gen_range(0..4)]).collect();
    let mut pairings = Vec::new();
    for i in 0..length {
        for j in (i + 4)..length {
            if !complementary(sequence[i], sequence[j]) {
                continue;
            }
            // The model is most confident about nested stems of moderate
            // span; confidence decays with span length, and only confident
            // candidates are emitted (the model's top predictions).
            let span = (j - i) as f64;
            let base = 0.95 * (-span / (length as f64)).exp();
            if rng.gen_bool(0.35) {
                let p = (base * rng.gen_range(0.6..1.0)).clamp(0.02, 0.98);
                pairings.push((i as u32, j as u32, p));
            }
        }
    }
    RnaSample { sequence, pairings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster::Lobster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_respects_complementarity() {
        let mut rng = StdRng::seed_from_u64(2);
        let sample = generate(40, &mut rng);
        assert_eq!(sample.len(), 40);
        assert!(!sample.is_empty());
        for &(i, j, p) in &sample.pairings {
            assert!(j >= i + 4);
            assert!(complementary(
                sample.sequence[i as usize],
                sample.sequence[j as usize]
            ));
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn folding_program_runs_on_short_sequences() {
        let mut rng = StdRng::seed_from_u64(4);
        let sample = generate(28, &mut rng);
        let program = Lobster::builder(PROGRAM)
            .compile_typed::<lobster::Top1Proof>()
            .unwrap();
        let mut session = program.session();
        sample.facts().add_to_session(&mut session).unwrap();
        let result = session.run().unwrap();
        // Folded spans exist whenever any pairing was predicted.
        if !sample.pairings.is_empty() {
            assert!(!result.relation("fold").is_empty());
        }
    }

    #[test]
    fn pairing_count_grows_with_length() {
        let mut rng = StdRng::seed_from_u64(5);
        let short = generate(30, &mut rng).pairings.len();
        let long = generate(150, &mut rng).pairings.len();
        assert!(
            long > short * 4,
            "long sequences should have many more candidate pairs"
        );
    }
}
