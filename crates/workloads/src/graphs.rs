//! Discrete graph benchmarks: Transitive Closure and Same Generation, plus
//! named synthetic graphs standing in for the SNAP datasets used by the
//! paper's Figure 13 and Table 3.

use rand::Rng;

/// Transitive closure program (2 rules, `unit` provenance).
pub const TRANSITIVE_CLOSURE: &str = "
    type edge(x: u32, y: u32)
    rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
    query path
";

/// Same Generation program (2 rules, `unit` provenance).
pub const SAME_GENERATION: &str = "
    type parent(p: u32, c: u32)
    rel sg(x, y) = parent(p, x), parent(p, y), x != y
    rel sg(x, y) = parent(a, x), parent(b, y), sg(a, b)
    query sg
";

/// The kind of synthetic graph a named dataset maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Power-law degree distribution (social / citation / p2p networks).
    ScaleFree,
    /// Bounded-degree, high-diameter graphs (road networks, meshes).
    Mesh,
    /// Balanced trees plus cross edges (call graphs, file systems).
    Tree,
}

/// A named graph from the paper's evaluation with its synthetic stand-in
/// parameters (node count scaled to laptop size, structure preserved).
#[derive(Debug, Clone, Copy)]
pub struct NamedGraph {
    /// Dataset name as used in the paper's figures.
    pub name: &'static str,
    /// Structural family.
    pub kind: GraphKind,
    /// Number of vertices in the synthetic stand-in.
    pub nodes: u32,
    /// Average out-degree.
    pub degree: u32,
}

/// The graphs of Figure 13 (transitive closure vs Soufflé / FVLog).
pub const FIG13_GRAPHS: [NamedGraph; 12] = [
    NamedGraph {
        name: "Gnu31",
        kind: GraphKind::ScaleFree,
        nodes: 900,
        degree: 3,
    },
    NamedGraph {
        name: "p2p-Gnu24",
        kind: GraphKind::ScaleFree,
        nodes: 800,
        degree: 3,
    },
    NamedGraph {
        name: "com-dblp",
        kind: GraphKind::ScaleFree,
        nodes: 1200,
        degree: 4,
    },
    NamedGraph {
        name: "p2p-Gnu25",
        kind: GraphKind::ScaleFree,
        nodes: 700,
        degree: 3,
    },
    NamedGraph {
        name: "loc-Brightkite",
        kind: GraphKind::ScaleFree,
        nodes: 1000,
        degree: 4,
    },
    NamedGraph {
        name: "cit-HepTh",
        kind: GraphKind::ScaleFree,
        nodes: 900,
        degree: 5,
    },
    NamedGraph {
        name: "cit-HepPh",
        kind: GraphKind::ScaleFree,
        nodes: 1000,
        degree: 5,
    },
    NamedGraph {
        name: "usroad",
        kind: GraphKind::Mesh,
        nodes: 1600,
        degree: 2,
    },
    NamedGraph {
        name: "p2p-Gnu30",
        kind: GraphKind::ScaleFree,
        nodes: 850,
        degree: 3,
    },
    NamedGraph {
        name: "vsp-finan",
        kind: GraphKind::Mesh,
        nodes: 1400,
        degree: 3,
    },
    NamedGraph {
        name: "SF.cedge",
        kind: GraphKind::Mesh,
        nodes: 1500,
        degree: 2,
    },
    NamedGraph {
        name: "fe-body",
        kind: GraphKind::Mesh,
        nodes: 1200,
        degree: 3,
    },
];

/// The graphs of Table 3 (same generation vs FVLog).
pub const TABLE3_GRAPHS: [NamedGraph; 11] = [
    NamedGraph {
        name: "fe-sphere",
        kind: GraphKind::Mesh,
        nodes: 700,
        degree: 3,
    },
    NamedGraph {
        name: "CA-HepTH",
        kind: GraphKind::ScaleFree,
        nodes: 500,
        degree: 3,
    },
    NamedGraph {
        name: "ego-Facebook",
        kind: GraphKind::ScaleFree,
        nodes: 400,
        degree: 5,
    },
    NamedGraph {
        name: "Gnu31",
        kind: GraphKind::ScaleFree,
        nodes: 900,
        degree: 3,
    },
    NamedGraph {
        name: "fe_body",
        kind: GraphKind::Tree,
        nodes: 700,
        degree: 2,
    },
    NamedGraph {
        name: "loc-Brightkite",
        kind: GraphKind::ScaleFree,
        nodes: 450,
        degree: 4,
    },
    NamedGraph {
        name: "SF.cedge",
        kind: GraphKind::Tree,
        nodes: 800,
        degree: 2,
    },
    NamedGraph {
        name: "com-dblp",
        kind: GraphKind::ScaleFree,
        nodes: 1000,
        degree: 4,
    },
    NamedGraph {
        name: "usroad",
        kind: GraphKind::Tree,
        nodes: 900,
        degree: 2,
    },
    NamedGraph {
        name: "fc_ocean",
        kind: GraphKind::Mesh,
        nodes: 600,
        degree: 2,
    },
    NamedGraph {
        name: "vsp_finan",
        kind: GraphKind::Mesh,
        nodes: 750,
        degree: 3,
    },
];

impl NamedGraph {
    /// Generates the edge list of the synthetic stand-in.
    pub fn edges(&self, rng: &mut impl Rng) -> Vec<(u32, u32)> {
        match self.kind {
            GraphKind::ScaleFree => scale_free(self.nodes, self.degree, rng),
            GraphKind::Mesh => mesh(self.nodes, self.degree, rng),
            GraphKind::Tree => tree_with_cross_edges(self.nodes, self.degree, rng),
        }
    }
}

/// Preferential-attachment style scale-free digraph.
pub fn scale_free(nodes: u32, degree: u32, rng: &mut impl Rng) -> Vec<(u32, u32)> {
    let mut edges = Vec::with_capacity((nodes * degree) as usize);
    let mut targets: Vec<u32> = vec![0];
    for v in 1..nodes {
        for _ in 0..degree {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v {
                edges.push((v, t));
                targets.push(t);
            }
        }
        targets.push(v);
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Bounded-degree, high-diameter mesh (road-network-like): a long corridor
/// with a few shortcuts.
pub fn mesh(nodes: u32, degree: u32, rng: &mut impl Rng) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for v in 0..nodes.saturating_sub(1) {
        edges.push((v, v + 1));
    }
    let extra = (nodes as usize) * (degree.saturating_sub(1) as usize) / 2;
    for _ in 0..extra {
        let a = rng.gen_range(0..nodes);
        let span = rng.gen_range(2..20.min(nodes.max(3)));
        let b = (a + span).min(nodes - 1);
        if a != b {
            edges.push((a, b));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// A balanced tree (as `parent(p, c)` edges) with a few random cross edges,
/// used for the Same Generation benchmark.
pub fn tree_with_cross_edges(nodes: u32, fanout: u32, rng: &mut impl Rng) -> Vec<(u32, u32)> {
    let fanout = fanout.max(2);
    let mut edges = Vec::new();
    for c in 1..nodes {
        edges.push((c / fanout, c));
    }
    for _ in 0..(nodes / 20) {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a != b {
            edges.push((a, b));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn named_graphs_generate_reasonable_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        for graph in FIG13_GRAPHS {
            let edges = graph.edges(&mut rng);
            assert!(!edges.is_empty(), "{} generated no edges", graph.name);
            assert!(edges
                .iter()
                .all(|&(a, b)| a < graph.nodes && b < graph.nodes));
        }
    }

    #[test]
    fn scale_free_graphs_have_hubs() {
        let mut rng = StdRng::seed_from_u64(1);
        let edges = scale_free(500, 3, &mut rng);
        let mut in_degree = vec![0usize; 500];
        for &(_, t) in &edges {
            in_degree[t as usize] += 1;
        }
        let max = *in_degree.iter().max().unwrap();
        let avg = edges.len() / 500;
        assert!(max > avg * 5, "expected a hub: max {max}, avg {avg}");
    }

    #[test]
    fn mesh_graphs_have_high_diameter() {
        let mut rng = StdRng::seed_from_u64(2);
        let edges = mesh(300, 2, &mut rng);
        // The corridor edges guarantee connectivity in one direction.
        assert!(edges.windows(1).count() >= 299);
    }

    #[test]
    fn tree_edges_form_a_tree_plus_extras() {
        let mut rng = StdRng::seed_from_u64(3);
        let edges = tree_with_cross_edges(200, 2, &mut rng);
        assert!(edges.len() >= 199);
    }

    #[test]
    fn programs_compile() {
        assert!(lobster_datalog::parse(TRANSITIVE_CLOSURE).is_ok());
        assert!(lobster_datalog::parse(SAME_GENERATION).is_ok());
    }
}
