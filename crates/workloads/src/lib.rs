//! Benchmark workloads: the Datalog programs and synthetic input generators
//! for every task in the paper's evaluation (Table 2).
//!
//! The paper evaluates Lobster on nine tasks spanning differentiable,
//! probabilistic, and discrete reasoning. The original datasets (Pathfinder
//! images, PacMan frames, handwritten formulas, CLUTRR text, the ArchiveII
//! RNA database, SNAP graphs, and program graphs for the pointer analysis)
//! are not redistributable here, so each module pairs the task's Datalog
//! program with a *synthetic generator* that produces inputs with the same
//! structure and the same knobs the paper scales (grid size, maze size,
//! formula length, chain length, sequence length, graph size). What the
//! symbolic engines see — relation sizes, recursion depth, join fan-out,
//! probability structure — matches the original workloads.
//!
//! | Module | Task | Reasoning |
//! |---|---|---|
//! | [`pathfinder`] | Pathfinder connectivity | differentiable |
//! | [`pacman`] | PacMan-Maze planning | differentiable |
//! | [`hwf`] | Handwritten formula evaluation | differentiable |
//! | [`clutrr`] | CLUTRR kinship reasoning | differentiable |
//! | [`psa`] | Probabilistic static analysis | probabilistic |
//! | [`rna`] | RNA secondary structure prediction | probabilistic |
//! | [`graphs`] | Transitive closure & same generation | discrete |
//! | [`cspa`] | Context-sensitive pointer analysis | discrete |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clutrr;
pub mod cspa;
pub mod graphs;
pub mod hwf;
pub mod pacman;
pub mod pathfinder;
pub mod psa;
pub mod rna;
pub mod suite;

use lobster::{FactSet, LobsterContext, LobsterError, Provenance, Session, Value};

/// A set of generated facts in a neutral form usable by both Lobster and the
/// baseline engines.
#[derive(Debug, Clone, Default)]
pub struct WorkloadFacts {
    /// `(relation, tuple, probability)` triples; `None` marks
    /// non-probabilistic facts.
    pub facts: Vec<(String, Vec<Value>, Option<f64>)>,
}

impl WorkloadFacts {
    /// An empty fact collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fact.
    pub fn push(&mut self, relation: impl Into<String>, values: Vec<Value>, prob: Option<f64>) {
        self.facts.push((relation.into(), values, prob));
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` when no facts were generated.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Converts to a [`FactSet`] for
    /// [`Program::run_batch`](lobster::Program::run_batch).
    pub fn to_fact_set(&self) -> FactSet {
        let mut set = FactSet::new();
        for (rel, values, prob) in &self.facts {
            set.add(rel.clone(), values, *prob);
        }
        set
    }

    /// Registers every fact on a Lobster session.
    ///
    /// # Errors
    ///
    /// Propagates [`LobsterError::BadFact`] for malformed facts.
    pub fn add_to_session<P: Provenance>(
        &self,
        session: &mut Session<P>,
    ) -> Result<(), LobsterError> {
        for (rel, values, prob) in &self.facts {
            session.add_fact(rel, values, *prob)?;
        }
        Ok(())
    }

    /// Registers every fact on a deprecated Lobster context.
    ///
    /// # Errors
    ///
    /// Propagates [`LobsterError::BadFact`] for malformed facts.
    #[deprecated(
        since = "0.2.0",
        note = "use `add_to_session` with a `Program` session"
    )]
    pub fn add_to_context<P: lobster::SessionProvenance>(
        &self,
        ctx: &mut LobsterContext<P>,
    ) -> Result<(), LobsterError> {
        for (rel, values, prob) in &self.facts {
            ctx.add_fact(rel, values, *prob)?;
        }
        Ok(())
    }

    /// Encoded facts with probabilities (for the Scallop / ProbLog
    /// baselines). Non-probabilistic facts get probability 1.
    pub fn encoded_probabilistic(&self) -> Vec<(String, Vec<u64>, f64)> {
        self.facts
            .iter()
            .map(|(rel, values, prob)| {
                (
                    rel.clone(),
                    values.iter().map(Value::encode).collect(),
                    prob.unwrap_or(1.0),
                )
            })
            .collect()
    }

    /// Encoded facts without probabilities (for the discrete baselines).
    pub fn encoded_discrete(&self) -> Vec<(String, Vec<u64>)> {
        self.facts
            .iter()
            .map(|(rel, values, _)| (rel.clone(), values.iter().map(Value::encode).collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_facts_conversions() {
        let mut facts = WorkloadFacts::new();
        facts.push("edge", vec![Value::U32(0), Value::U32(1)], Some(0.5));
        facts.push("edge", vec![Value::U32(1), Value::U32(2)], None);
        assert_eq!(facts.len(), 2);
        assert!(!facts.is_empty());
        let probabilistic = facts.encoded_probabilistic();
        assert_eq!(probabilistic[0].2, 0.5);
        assert_eq!(probabilistic[1].2, 1.0);
        let discrete = facts.encoded_discrete();
        assert_eq!(discrete[0].1, vec![0, 1]);
        let set = facts.to_fact_set();
        assert_eq!(set.len(), 2);
    }
}
