//! Context-Sensitive Pointer Analysis (CSPA), the discrete benchmark of the
//! paper's Table 4, mirroring the Datalog program and input style of GDLog.
//!
//! The analysis derives value flows, value aliases, and memory aliases from
//! `assign` and `dereference` facts extracted from a program. The three named
//! inputs (httpd, linux, postgres) are generated synthetically at scaled-down
//! sizes with the characteristic structure of assignment graphs: long def-use
//! chains plus pointer loads/stores.

use crate::WorkloadFacts;
use lobster::Value;
use rand::Rng;

/// The CSPA program (10 rules, as in Table 2 of the paper).
pub const PROGRAM: &str = "
    type assign(dst: u32, src: u32)
    type dereference(p: u32, v: u32)
    rel value_flow(x, y) = assign(y, x)
    rel value_flow(x, y) = assign(x, z), memory_alias(z, y)
    rel value_flow(x, y) = value_flow(x, z), value_flow(z, y)
    rel memory_alias(x, w) = dereference(y, x), value_alias(y, z), dereference(z, w)
    rel value_alias(x, y) = value_flow(z, x), value_flow(z, y)
    rel value_alias(x, y) = value_flow(z, x), memory_alias(z, w), value_flow(w, y)
    rel value_flow(x, x) = assign(x, y)
    rel value_flow(x, x) = assign(y, x)
    rel memory_alias(x, x) = assign(y, x)
    rel memory_alias(x, x) = assign(x, y)
    query value_flow
    query value_alias
    query memory_alias
";

/// The subject programs of Table 4 with their scaled-down synthetic sizes.
pub const TABLE4_PROGRAMS: [(&str, u32, u32); 3] =
    [("httpd", 300, 2), ("linux", 500, 2), ("postgres", 400, 2)];

/// One generated CSPA input.
#[derive(Debug, Clone)]
pub struct CspaSample {
    /// Subject program name.
    pub name: String,
    /// Generated facts.
    pub facts: WorkloadFacts,
}

/// Generates an assignment / dereference graph with `vars` variables and the
/// given average assignment out-degree.
pub fn generate(name: &str, vars: u32, degree: u32, rng: &mut impl Rng) -> CspaSample {
    let mut facts = WorkloadFacts::new();
    // Def-use chains: assignments mostly flow forward within a "function".
    for v in 0..vars {
        for _ in 0..degree {
            let span = rng.gen_range(1..12);
            let src = (v + span).min(vars - 1);
            if src != v {
                facts.push("assign", vec![Value::U32(v), Value::U32(src)], None);
            }
        }
    }
    // Pointer loads/stores: a subset of variables act as pointers.
    for _ in 0..(vars / 4) {
        let p = rng.gen_range(0..vars);
        let v = rng.gen_range(0..vars);
        if p != v {
            facts.push("dereference", vec![Value::U32(p), Value::U32(v)], None);
        }
    }
    CspaSample {
        name: name.to_string(),
        facts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster::Lobster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn program_has_ten_rules() {
        let compiled = lobster_datalog::parse(PROGRAM).unwrap();
        let rules: usize = compiled.ram.strata.iter().map(|s| s.rules.len()).sum();
        assert_eq!(rules, 10);
    }

    #[test]
    fn analysis_runs_on_a_small_input() {
        let mut rng = StdRng::seed_from_u64(8);
        let sample = generate("httpd", 60, 2, &mut rng);
        let program = Lobster::builder(PROGRAM)
            .compile_typed::<lobster::Unit>()
            .unwrap();
        let mut session = program.session();
        sample.facts.add_to_session(&mut session).unwrap();
        let result = session.run().unwrap();
        assert!(!result.relation("value_flow").is_empty());
        // Reflexive value flows exist for every assigned variable.
        assert!(result.len("value_flow") >= 60);
    }

    #[test]
    fn value_alias_is_symmetric() {
        let program = Lobster::builder(PROGRAM)
            .compile_typed::<lobster::Unit>()
            .unwrap();
        let mut session = program.session();
        session
            .add_fact("assign", &[Value::U32(1), Value::U32(0)], None)
            .unwrap();
        session
            .add_fact("assign", &[Value::U32(2), Value::U32(0)], None)
            .unwrap();
        let result = session.run().unwrap();
        assert!(result.contains("value_alias", &[Value::U32(1), Value::U32(2)]));
        assert!(result.contains("value_alias", &[Value::U32(2), Value::U32(1)]));
    }
}
