//! The Handwritten Formula (HWF) task: parse and evaluate a formula of
//! handwritten digits and operators, supervised only on the final value.
//!
//! The classifier produces, for every symbol position, a distribution over
//! the possible symbols; the symbolic program evaluates the formula
//! left-to-right over those uncertain symbols. Positions within one formula
//! are mutually exclusive classification outcomes, which is exactly what the
//! provenance layer's exclusion groups express.

use crate::WorkloadFacts;
use lobster::Value;
use rand::Rng;

/// The HWF evaluation program. Formula positions alternate digit, operator,
/// digit, operator, ... and the formula is evaluated left-to-right.
pub const PROGRAM: &str = "
    type digit(i: u32, v: f64)
    type op(i: u32, o: u32)
    type length(n: u32)
    // Value of the prefix ending at position i (digits sit at even positions).
    rel prefix(i, v) = digit(i, v), i == 0
    rel prefix(j, v) = prefix(i, v1), op(k, o), digit(j, v2), k == i + 1, j == i + 2, o == 0, v == v1 + v2
    rel prefix(j, v) = prefix(i, v1), op(k, o), digit(j, v2), k == i + 1, j == i + 2, o == 1, v == v1 - v2
    rel prefix(j, v) = prefix(i, v1), op(k, o), digit(j, v2), k == i + 1, j == i + 2, o == 2, v == v1 * v2
    rel prefix(j, v) = prefix(i, v1), op(k, o), digit(j, v2), k == i + 1, j == i + 2, o == 3, v == v1 / v2
    rel result(v) = length(n), prefix(i, v), i == n - 1
    query result
";

/// Operator codes used by the program.
pub const OPS: [char; 4] = ['+', '-', '*', '/'];

/// One generated handwritten formula.
#[derive(Debug, Clone)]
pub struct HwfSample {
    /// The true symbols, e.g. `['3', '+', '4', '*', '2']`.
    pub symbols: Vec<char>,
    /// The true value under left-to-right evaluation.
    pub expected: f64,
    /// Per-position classifier distributions: `(position, candidates)` where
    /// each candidate is `(symbol, probability)`.
    pub predictions: Vec<(u32, Vec<(char, f64)>)>,
}

impl HwfSample {
    /// Number of symbol positions in the formula.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// `true` for an empty formula (never generated).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The facts fed to the symbolic program. Candidates at one position
    /// share an exclusion group.
    pub fn facts(&self) -> WorkloadFacts {
        let mut facts = WorkloadFacts::new();
        facts.push("length", vec![Value::U32(self.symbols.len() as u32)], None);
        for (pos, candidates) in &self.predictions {
            for (symbol, prob) in candidates {
                if symbol.is_ascii_digit() {
                    facts.push(
                        "digit",
                        vec![
                            Value::U32(*pos),
                            Value::F64(f64::from(symbol.to_digit(10).unwrap())),
                        ],
                        Some(*prob),
                    );
                } else {
                    let code = OPS.iter().position(|&o| o == *symbol).unwrap() as u32;
                    facts.push("op", vec![Value::U32(*pos), Value::U32(code)], Some(*prob));
                }
            }
        }
        facts
    }
}

/// Evaluates a symbol sequence left-to-right (the task's ground truth).
pub fn evaluate(symbols: &[char]) -> f64 {
    let mut value = f64::from(symbols[0].to_digit(10).unwrap());
    let mut i = 1;
    while i + 1 < symbols.len() {
        let rhs = f64::from(symbols[i + 1].to_digit(10).unwrap());
        value = match symbols[i] {
            '+' => value + rhs,
            '-' => value - rhs,
            '*' => value * rhs,
            '/' => value / rhs,
            other => panic!("unexpected operator {other}"),
        };
        i += 2;
    }
    value
}

/// Generates a formula with `digits` digits (so `2 * digits - 1` symbol
/// positions) and noisy classifier predictions over it.
pub fn generate(digits: usize, rng: &mut impl Rng) -> HwfSample {
    assert!(digits >= 1);
    let mut symbols = Vec::with_capacity(digits * 2 - 1);
    for i in 0..digits {
        if i > 0 {
            symbols.push(OPS[rng.gen_range(0..OPS.len())]);
        }
        // Avoid 0 to keep division well-behaved.
        symbols.push(char::from_digit(rng.gen_range(1..10), 10).unwrap());
    }
    let expected = evaluate(&symbols);
    let predictions = symbols
        .iter()
        .enumerate()
        .map(|(pos, &truth)| {
            let correct = rng.gen_range(0.75..0.95);
            let mut candidates = vec![(truth, correct)];
            // Two confusable alternatives share the rest of the mass.
            let alternatives: Vec<char> = if truth.is_ascii_digit() {
                (1..10u32)
                    .map(|d| char::from_digit(d, 10).unwrap())
                    .filter(|&c| c != truth)
                    .collect()
            } else {
                OPS.iter().copied().filter(|&o| o != truth).collect()
            };
            let mut rest = 1.0 - correct;
            for k in 0..2usize.min(alternatives.len()) {
                let share = if k == 1 {
                    rest
                } else {
                    rest * rng.gen_range(0.4..0.7)
                };
                let alt = alternatives[rng.gen_range(0..alternatives.len())];
                if candidates.iter().all(|(c, _)| *c != alt) {
                    candidates.push((alt, share));
                    rest -= share;
                }
            }
            (pos as u32, candidates)
        })
        .collect();
    HwfSample {
        symbols,
        expected,
        predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster::Lobster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn left_to_right_evaluation() {
        assert_eq!(evaluate(&['3', '+', '4', '*', '2']), 14.0);
        assert_eq!(evaluate(&['8', '/', '2', '-', '1']), 3.0);
        assert_eq!(evaluate(&['7']), 7.0);
    }

    #[test]
    fn generator_produces_valid_formulas() {
        let mut rng = StdRng::seed_from_u64(5);
        let sample = generate(5, &mut rng);
        assert_eq!(sample.len(), 9);
        assert!(!sample.is_empty());
        assert_eq!(sample.predictions.len(), 9);
        assert!(sample.facts().len() > 9);
    }

    #[test]
    fn symbolic_evaluation_recovers_the_expected_value() {
        let mut rng = StdRng::seed_from_u64(6);
        let sample = generate(3, &mut rng);
        let program = Lobster::builder(PROGRAM)
            .compile_typed::<lobster::DiffTop1Proof>()
            .unwrap();
        let mut session = program.session();
        sample.facts().add_to_session(&mut session).unwrap();
        let result = session.run().unwrap();
        // The most likely result value should be the ground-truth value.
        let best = result
            .relation("result")
            .iter()
            .max_by(|a, b| a.1.probability.total_cmp(&b.1.probability))
            .map(|(t, _)| t[0].as_f64())
            .unwrap();
        assert!(
            (best - sample.expected).abs() < 1e-9,
            "expected {}, symbolic best {best}",
            sample.expected
        );
    }
}
