//! The top-1-proof provenance semiring.

use crate::{InputFactId, InputFactRegistry, Proof, Provenance, DEFAULT_MAX_PROOF_SIZE};

/// A tag of the top-1-proof provenance: the single most likely proof of a
/// fact, or `False` when no proof exists.
#[derive(Debug, Clone, PartialEq)]
pub enum Top1Tag {
    /// No derivation exists.
    False,
    /// The most likely derivation found so far.
    Proof(Proof),
}

/// Top-1-proof provenance (`prob-top-1-proofs` in the paper).
///
/// Each fact carries its single most likely proof, i.e. the conjunction of
/// input facts of the best derivation found so far. Disjunction keeps the
/// proof with the higher probability; conjunction merges the two proofs and
/// rejects the combination when the proofs conflict (two facts of the same
/// mutual-exclusion group) or exceed the configured size limit, in which case
/// the tag collapses to `False`.
#[derive(Debug, Clone)]
pub struct Top1Proof {
    registry: InputFactRegistry,
    max_proof_size: usize,
}

impl Top1Proof {
    /// Creates a top-1-proof provenance over the given fact registry with the
    /// default proof-size limit (300, per the paper).
    pub fn new(registry: InputFactRegistry) -> Self {
        Self::with_max_proof_size(registry, DEFAULT_MAX_PROOF_SIZE)
    }

    /// Creates a top-1-proof provenance with an explicit proof-size limit.
    pub fn with_max_proof_size(registry: InputFactRegistry, max_proof_size: usize) -> Self {
        Top1Proof {
            registry,
            max_proof_size,
        }
    }

    /// The fact registry used to look up probabilities and exclusions.
    pub fn registry(&self) -> &InputFactRegistry {
        &self.registry
    }

    /// The configured proof-size limit.
    pub fn max_proof_size(&self) -> usize {
        self.max_proof_size
    }

    /// The most likely proof of the tag, if any.
    pub fn proof<'a>(&self, tag: &'a Top1Tag) -> Option<&'a Proof> {
        match tag {
            Top1Tag::False => None,
            Top1Tag::Proof(p) => Some(p),
        }
    }
}

impl Provenance for Top1Proof {
    type Tag = Top1Tag;

    fn name(&self) -> &'static str {
        "prob-top-1-proofs"
    }

    fn zero(&self) -> Self::Tag {
        Top1Tag::False
    }

    fn one(&self) -> Self::Tag {
        Top1Tag::Proof(Proof::empty())
    }

    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        match (a, b) {
            (Top1Tag::False, other) | (other, Top1Tag::False) => other.clone(),
            (Top1Tag::Proof(pa), Top1Tag::Proof(pb)) => {
                // Keep the more likely proof; break ties toward the shorter
                // proof so the choice is deterministic.
                let wa = pa.probability(&self.registry);
                let wb = pb.probability(&self.registry);
                if wa > wb || (wa == wb && pa.len() <= pb.len()) {
                    Top1Tag::Proof(pa.clone())
                } else {
                    Top1Tag::Proof(pb.clone())
                }
            }
        }
    }

    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        match (a, b) {
            (Top1Tag::False, _) | (_, Top1Tag::False) => Top1Tag::False,
            (Top1Tag::Proof(pa), Top1Tag::Proof(pb)) => {
                match pa.union(pb, self.max_proof_size, &self.registry) {
                    Some(p) => Top1Tag::Proof(p),
                    None => Top1Tag::False,
                }
            }
        }
    }

    fn input_tag(&self, fact: InputFactId, _prob: Option<f64>) -> Self::Tag {
        Top1Tag::Proof(Proof::singleton(fact))
    }

    fn accept(&self, tag: &Self::Tag) -> bool {
        !matches!(tag, Top1Tag::False)
    }

    fn weight(&self, tag: &Self::Tag) -> f64 {
        match tag {
            Top1Tag::False => 0.0,
            Top1Tag::Proof(p) => p.probability(&self.registry),
        }
    }

    fn is_idempotent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Top1Proof, InputFactId, InputFactId, InputFactId) {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.9), None);
        let b = reg.register(Some(0.5), None);
        let c = reg.register(Some(0.8), None);
        (Top1Proof::new(reg), a, b, c)
    }

    #[test]
    fn add_picks_more_likely_proof() {
        let (p, a, b, _) = setup();
        let ta = p.input_tag(a, Some(0.9));
        let tb = p.input_tag(b, Some(0.5));
        let sum = p.add(&ta, &tb);
        assert_eq!(sum, ta);
        assert!((p.weight(&sum) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mul_unions_proofs_and_multiplies_probability() {
        let (p, a, _, c) = setup();
        let ta = p.input_tag(a, None);
        let tc = p.input_tag(c, None);
        let prod = p.mul(&ta, &tc);
        assert!((p.weight(&prod) - 0.72).abs() < 1e-12);
        assert_eq!(p.proof(&prod).unwrap().len(), 2);
    }

    #[test]
    fn false_annihilates_conjunction() {
        let (p, a, _, _) = setup();
        let ta = p.input_tag(a, None);
        assert_eq!(p.mul(&ta, &p.zero()), Top1Tag::False);
        assert!(!p.accept(&p.zero()));
    }

    #[test]
    fn proof_size_limit_collapses_to_false() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.5), None);
        let b = reg.register(Some(0.5), None);
        let p = Top1Proof::with_max_proof_size(reg, 1);
        let prod = p.mul(&p.input_tag(a, None), &p.input_tag(b, None));
        assert_eq!(prod, Top1Tag::False);
    }

    #[test]
    fn exclusive_facts_conflict() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.5), Some(0));
        let b = reg.register(Some(0.5), Some(0));
        let p = Top1Proof::new(reg);
        let prod = p.mul(&p.input_tag(a, None), &p.input_tag(b, None));
        assert_eq!(prod, Top1Tag::False);
    }

    #[test]
    fn one_is_the_empty_proof() {
        let (p, a, _, _) = setup();
        let ta = p.input_tag(a, None);
        assert_eq!(p.mul(&ta, &p.one()), ta);
        assert_eq!(p.weight(&p.one()), 1.0);
    }
}
