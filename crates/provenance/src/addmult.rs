//! The add-mult-prob provenance semiring.

use crate::{InputFactId, Provenance};

/// Add-mult probability provenance: tags are pseudo-probabilities,
/// `⊕` is saturating addition (clamped to 1) and `⊗` is multiplication.
///
/// Under an independence assumption this approximates the probability of a
/// derived fact cheaply (a single float per fact). It is *not* idempotent:
/// re-deriving the same fact along the same path would inflate its weight, so
/// the runtime only relies on fact-count convergence for its fix-point test,
/// exactly as in the paper's Algorithm 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AddMultProb;

impl AddMultProb {
    /// Creates the add-mult-prob provenance.
    pub fn new() -> Self {
        AddMultProb
    }
}

impl Provenance for AddMultProb {
    type Tag = f64;

    fn name(&self) -> &'static str {
        "addmultprob"
    }

    fn zero(&self) -> Self::Tag {
        0.0
    }

    fn one(&self) -> Self::Tag {
        1.0
    }

    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        (a + b).min(1.0)
    }

    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        a * b
    }

    fn input_tag(&self, _fact: InputFactId, prob: Option<f64>) -> Self::Tag {
        prob.unwrap_or(1.0).clamp(0.0, 1.0)
    }

    fn accept(&self, tag: &Self::Tag) -> bool {
        *tag > 0.0
    }

    fn weight(&self, tag: &Self::Tag) -> f64 {
        tag.clamp(0.0, 1.0)
    }

    fn is_idempotent(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_saturates_at_one() {
        let p = AddMultProb::new();
        assert_eq!(p.add(&0.7, &0.6), 1.0);
        assert!((p.add(&0.2, &0.3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mul_is_product() {
        let p = AddMultProb::new();
        assert!((p.mul(&0.5, &0.4) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn not_idempotent() {
        let p = AddMultProb::new();
        assert!(!p.is_idempotent());
    }

    #[test]
    fn weight_is_clamped() {
        let p = AddMultProb::new();
        assert_eq!(p.weight(&1.7), 1.0);
        assert_eq!(p.weight(&0.25), 0.25);
    }
}
