//! The boolean provenance semiring.

use crate::{InputFactId, Provenance};

/// Boolean provenance: tags are `bool`, `⊕` is `∨`, `⊗` is `∧`.
///
/// Facts whose tag collapses to `false` are rejected, so this provenance
/// behaves like discrete Datalog but allows marking input facts as absent
/// without removing them from the database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Boolean;

impl Boolean {
    /// Creates the boolean provenance.
    pub fn new() -> Self {
        Boolean
    }
}

impl Provenance for Boolean {
    type Tag = bool;

    fn name(&self) -> &'static str {
        "bool"
    }

    fn zero(&self) -> Self::Tag {
        false
    }

    fn one(&self) -> Self::Tag {
        true
    }

    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        *a || *b
    }

    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        *a && *b
    }

    fn input_tag(&self, _fact: InputFactId, prob: Option<f64>) -> Self::Tag {
        // A fact with probability 0 is treated as absent; anything else as
        // present. Non-probabilistic facts are present.
        prob.map(|p| p > 0.0).unwrap_or(true)
    }

    fn accept(&self, tag: &Self::Tag) -> bool {
        *tag
    }

    fn weight(&self, tag: &Self::Tag) -> f64 {
        if *tag {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_operations() {
        let p = Boolean::new();
        assert!(p.add(&true, &false));
        assert!(!p.add(&false, &false));
        assert!(p.mul(&true, &true));
        assert!(!p.mul(&true, &false));
    }

    #[test]
    fn input_tag_treats_zero_probability_as_absent() {
        let p = Boolean::new();
        assert!(!p.input_tag(InputFactId(0), Some(0.0)));
        assert!(p.input_tag(InputFactId(0), Some(0.3)));
        assert!(p.input_tag(InputFactId(0), None));
    }

    #[test]
    fn accept_rejects_false() {
        let p = Boolean::new();
        assert!(p.accept(&true));
        assert!(!p.accept(&false));
        assert_eq!(p.weight(&true), 1.0);
        assert_eq!(p.weight(&false), 0.0);
    }
}
