//! Bounded proofs: conjunctions of input facts.

use crate::{InputFactId, InputFactRegistry};

/// Default cap on the number of facts in a single proof.
///
/// The paper (Section 3.5) fixes the proof-size limit to 300, which is
/// sufficient for all evaluated benchmarks; the limit is configurable via
/// `with_capacity`-style constructors on the provenances.
pub const DEFAULT_MAX_PROOF_SIZE: usize = 300;

/// A single proof: a conjunction of input facts, stored as a sorted,
/// duplicate-free list of fact ids.
///
/// Proofs are bounded in size; conjunction fails (returns `None`) when the
/// result would exceed the bound or when two facts from the same
/// mutual-exclusion group would co-occur.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Proof {
    facts: Vec<InputFactId>,
}

impl Proof {
    /// The empty proof (the multiplicative identity: "true").
    pub fn empty() -> Self {
        Proof { facts: Vec::new() }
    }

    /// A proof consisting of a single input fact.
    pub fn singleton(fact: InputFactId) -> Self {
        Proof { facts: vec![fact] }
    }

    /// Builds a proof from an arbitrary list of facts (sorted and
    /// deduplicated internally).
    pub fn from_facts(mut facts: Vec<InputFactId>) -> Self {
        facts.sort_unstable();
        facts.dedup();
        Proof { facts }
    }

    /// The facts in this proof, in ascending id order.
    pub fn facts(&self) -> &[InputFactId] {
        &self.facts
    }

    /// Number of facts in the proof.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` for the empty proof.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Probability of the proof under the given registry: the product of the
    /// probabilities of its facts.
    pub fn probability(&self, registry: &InputFactRegistry) -> f64 {
        self.facts.iter().map(|f| registry.prob(*f)).product()
    }

    /// Conjunction of two proofs: the sorted union of their facts.
    ///
    /// Returns `None` when the union exceeds `max_size` or when two distinct
    /// facts share a mutual-exclusion group in `registry` (a conflicting
    /// proof, e.g. claiming one digit image is both a 3 and a 7).
    pub fn union(
        &self,
        other: &Proof,
        max_size: usize,
        registry: &InputFactRegistry,
    ) -> Option<Proof> {
        let mut merged = Vec::with_capacity(self.facts.len() + other.facts.len());
        let (mut i, mut j) = (0, 0);
        while i < self.facts.len() && j < other.facts.len() {
            let (a, b) = (self.facts[i], other.facts[j]);
            if a == b {
                merged.push(a);
                i += 1;
                j += 1;
            } else if a < b {
                merged.push(a);
                i += 1;
            } else {
                merged.push(b);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.facts[i..]);
        merged.extend_from_slice(&other.facts[j..]);
        if merged.len() > max_size {
            return None;
        }
        if Self::has_conflict(&merged, registry) {
            return None;
        }
        Some(Proof { facts: merged })
    }

    /// Detects whether a sorted fact list contains two distinct facts from
    /// the same mutual-exclusion group.
    fn has_conflict(facts: &[InputFactId], registry: &InputFactRegistry) -> bool {
        // Proofs are short (bounded by max_size); a quadratic scan over facts
        // that actually carry an exclusion group is fast enough and avoids
        // allocation in this hot path.
        let mut groups: Vec<(u32, InputFactId)> = Vec::new();
        for &f in facts {
            if let Some(g) = registry.exclusion(f) {
                if groups.iter().any(|&(og, of)| og == g && of != f) {
                    return true;
                }
                groups.push((g, f));
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_facts_sorts_and_dedups() {
        let p = Proof::from_facts(vec![InputFactId(3), InputFactId(1), InputFactId(3)]);
        assert_eq!(p.facts(), &[InputFactId(1), InputFactId(3)]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_proof_probability_is_one() {
        let reg = InputFactRegistry::new();
        assert_eq!(Proof::empty().probability(&reg), 1.0);
        assert!(Proof::empty().is_empty());
    }

    #[test]
    fn probability_is_product_of_fact_probs() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.5), None);
        let b = reg.register(Some(0.4), None);
        let p = Proof::from_facts(vec![a, b]);
        assert!((p.probability(&reg) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn union_merges_sorted_sets() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.5), None);
        let b = reg.register(Some(0.5), None);
        let c = reg.register(Some(0.5), None);
        let p1 = Proof::from_facts(vec![a, c]);
        let p2 = Proof::from_facts(vec![b, c]);
        let u = p1.union(&p2, 10, &reg).unwrap();
        assert_eq!(u.facts(), &[a, b, c]);
    }

    #[test]
    fn union_respects_size_limit() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.5), None);
        let b = reg.register(Some(0.5), None);
        let p1 = Proof::singleton(a);
        let p2 = Proof::singleton(b);
        assert!(p1.union(&p2, 1, &reg).is_none());
        assert!(p1.union(&p2, 2, &reg).is_some());
    }

    #[test]
    fn union_detects_exclusion_conflicts() {
        let reg = InputFactRegistry::new();
        let digit_is_3 = reg.register(Some(0.6), Some(0));
        let digit_is_7 = reg.register(Some(0.4), Some(0));
        let other = reg.register(Some(0.9), Some(1));
        let p1 = Proof::singleton(digit_is_3);
        let p2 = Proof::singleton(digit_is_7);
        let p3 = Proof::singleton(other);
        assert!(
            p1.union(&p2, 10, &reg).is_none(),
            "same exclusion group must conflict"
        );
        assert!(
            p1.union(&p3, 10, &reg).is_some(),
            "different groups must not conflict"
        );
        assert!(
            p1.union(&p1, 10, &reg).is_some(),
            "a fact never conflicts with itself"
        );
    }
}
