//! Provenance semiring framework for the Lobster neurosymbolic runtime.
//!
//! Lobster (ASPLOS 2026) supports discrete, probabilistic, and differentiable
//! reasoning by tagging every fact with an element of a *provenance semiring*
//! and propagating the tags through every relational operator. This crate
//! implements the semiring library described in Section 3.5 of the paper:
//!
//! * [`Unit`] — plain discrete Datalog (no information beyond existence).
//! * [`Boolean`] — boolean provenance (`∨` / `∧`).
//! * [`MaxMinProb`] — viterbi-style probability bounds (`max` / `min`).
//! * [`AddMultProb`] — additive/multiplicative pseudo-probabilities.
//! * [`Top1Proof`] — tracks the single most likely proof of each fact.
//! * [`DiffMaxMinProb`], [`DiffAddMultProb`], [`DiffTop1Proof`] — the
//!   differentiable counterparts used for end-to-end training.
//!
//! A provenance is a 5-tuple `(T, 0, 1, ⊕, ⊗)`. The [`Provenance`] trait
//! mirrors that structure and additionally exposes:
//!
//! * [`Provenance::input_tag`] — how an extensional (input) fact with an
//!   optional probability is lifted into a tag,
//! * [`Provenance::weight`] — a probability-like weight used for ranking and
//!   reporting, and
//! * [`Provenance::output`] — the final probability together with the
//!   gradient with respect to every input fact, which is what makes the
//!   framework differentiable.
//!
//! # Example
//!
//! ```
//! use lobster_provenance::{Provenance, AddMultProb, InputFactId};
//!
//! let prov = AddMultProb::new();
//! let a = prov.input_tag(InputFactId(0), Some(0.9));
//! let b = prov.input_tag(InputFactId(1), Some(0.5));
//! let conj = prov.mul(&a, &b);
//! assert!((prov.weight(&conj) - 0.45).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addmult;
mod bind;
mod boolean;
mod diff;
mod fact;
mod gradient;
mod kind;
mod minmax;
mod proof;
mod top1;
mod unit;

pub use addmult::AddMultProb;
pub use bind::SessionProvenance;
pub use boolean::Boolean;
pub use diff::{DiffAddMultProb, DiffMaxMinProb, DiffTop1Proof, Dual};
pub use fact::{InputFactId, InputFactRegistry};
pub use gradient::SparseGradient;
pub use kind::ProvenanceKind;
pub use minmax::MaxMinProb;
pub use proof::{Proof, DEFAULT_MAX_PROOF_SIZE};
pub use top1::{Top1Proof, Top1Tag};
pub use unit::Unit;

use std::fmt::Debug;

/// The result of interpreting a final (IDB) tag: a probability together with
/// the gradient of that probability with respect to the probabilities of the
/// input facts that contributed to it.
///
/// For non-differentiable provenances the gradient is empty.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Output {
    /// Probability-like weight of the derived fact in `[0, 1]`.
    pub probability: f64,
    /// Sparse gradient `d probability / d Pr(fact)` for each contributing
    /// input fact.
    pub gradient: Vec<(InputFactId, f64)>,
}

impl Output {
    /// An output with the given probability and no gradient.
    pub fn scalar(probability: f64) -> Self {
        Output {
            probability,
            gradient: Vec::new(),
        }
    }
}

/// A provenance semiring `(T, 0, 1, ⊕, ⊗)` together with the glue needed to
/// use it inside a differentiable Datalog runtime.
///
/// Implementations must be cheap to clone: the runtime clones the provenance
/// context into every parallel kernel.
pub trait Provenance: Clone + Debug + Send + Sync + 'static {
    /// The tag type attached to every fact.
    type Tag: Clone + Debug + PartialEq + Send + Sync + 'static;

    /// Human-readable name of the semiring (e.g. `"diff-top-1-proofs"`).
    fn name(&self) -> &'static str;

    /// The additive identity (`false` / impossible).
    fn zero(&self) -> Self::Tag;

    /// The multiplicative identity (`true` / certain).
    fn one(&self) -> Self::Tag;

    /// Disjunction (`⊕`): combines two alternative derivations of the same
    /// fact.
    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag;

    /// Conjunction (`⊗`): combines the derivations of joined facts.
    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag;

    /// Lift an input (EDB) fact into a tag. `prob` is `None` for
    /// non-probabilistic facts, which are treated as certain.
    fn input_tag(&self, fact: InputFactId, prob: Option<f64>) -> Self::Tag;

    /// Whether a derived fact carrying this tag should be kept in the
    /// database. Discrete provenances keep everything; probabilistic ones
    /// may discard facts whose tag collapsed to `0`.
    fn accept(&self, tag: &Self::Tag) -> bool {
        let _ = tag;
        true
    }

    /// A probability-like weight in `[0, 1]` used for ranking proofs and for
    /// reporting results.
    fn weight(&self, tag: &Self::Tag) -> f64;

    /// Interpret a final tag as an output probability plus its gradient with
    /// respect to input-fact probabilities. Non-differentiable provenances
    /// return an empty gradient.
    fn output(&self, tag: &Self::Tag) -> Output {
        Output::scalar(self.weight(tag))
    }

    /// `true` when `⊕` is idempotent and saturating (e.g. boolean, unit,
    /// max-min-prob), which allows the runtime to rely purely on fact-count
    /// convergence for fix-point detection.
    fn is_idempotent(&self) -> bool {
        true
    }

    /// `true` when tags carry no information beyond set membership, so the
    /// tuple-level delta-insertion path — which never revisits the tag of an
    /// already-derived fact — is exact. Only [`Unit`] qualifies: every
    /// richer semiring folds `⊕` over alternative derivations (in
    /// first-encounter order), so a new derivation of an existing fact can
    /// change its tag even though the fact set is unchanged, and incremental
    /// maintenance must fall back to recomputing the affected strata.
    fn delta_exact(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn semiring_laws<P: Provenance>(
        prov: &P,
        tags: &[P::Tag],
        approx: impl Fn(&P::Tag, &P::Tag) -> bool,
    ) {
        // 0 is the additive identity, 1 the multiplicative identity.
        for t in tags {
            assert!(
                approx(&prov.add(t, &prov.zero()), t),
                "0 must be additive identity"
            );
            assert!(
                approx(&prov.mul(t, &prov.one()), t),
                "1 must be multiplicative identity"
            );
        }
        // Associativity and commutativity of ⊕ (up to the approximation).
        for a in tags {
            for b in tags {
                assert!(approx(&prov.add(a, b), &prov.add(b, a)), "⊕ must commute");
                for c in tags {
                    assert!(
                        approx(&prov.add(&prov.add(a, b), c), &prov.add(a, &prov.add(b, c))),
                        "⊕ must associate"
                    );
                }
            }
        }
    }

    #[test]
    fn boolean_laws() {
        let prov = Boolean::new();
        let tags = vec![prov.zero(), prov.one()];
        semiring_laws(&prov, &tags, |a, b| a == b);
    }

    #[test]
    fn minmax_laws() {
        let prov = MaxMinProb::new();
        let tags = vec![0.0, 0.25, 0.5, 1.0];
        semiring_laws(&prov, &tags, |a, b| (a - b).abs() < 1e-12);
    }

    #[test]
    fn addmult_identity_laws() {
        let prov = AddMultProb::new();
        let tags = vec![0.0, 0.3, 0.7, 1.0];
        for t in &tags {
            assert!((prov.add(t, &prov.zero()) - t).abs() < 1e-12);
            assert!((prov.mul(t, &prov.one()) - t).abs() < 1e-12);
        }
    }

    #[test]
    fn output_default_has_empty_gradient() {
        let prov = MaxMinProb::new();
        let out = prov.output(&0.75);
        assert_eq!(out.probability, 0.75);
        assert!(out.gradient.is_empty());
    }
}
