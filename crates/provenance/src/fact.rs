//! Input fact identifiers and the registry of input-fact metadata.

use std::fmt;
use std::sync::{Arc, RwLock};

/// Identifies an extensional (input) fact within a single run of a program.
///
/// Fact ids are dense: the `n`-th probabilistic fact registered with the
/// runtime receives id `n`. They are the variables of the boolean formulas
/// tracked by proof-based provenances and the indices of the gradient vector
/// returned by differentiable provenances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InputFactId(pub u32);

impl fmt::Display for InputFactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    /// Probability of each input fact (1.0 for non-probabilistic facts).
    probs: Vec<f64>,
    /// Optional mutual-exclusion group of each fact. Two distinct facts in
    /// the same group can never co-occur in a single proof (e.g. the ten
    /// possible classifications of one handwritten digit).
    exclusions: Vec<Option<u32>>,
}

/// A shared, append-only registry of input facts.
///
/// The registry records the probability and optional mutual-exclusion group
/// of every input fact. Proof-based provenances consult it to detect
/// conflicting proofs; differentiable provenances consult it to convert a
/// proof into a gradient.
///
/// Cloning the registry is cheap (it is internally reference counted) and the
/// clone observes subsequently registered facts.
#[derive(Debug, Clone, Default)]
pub struct InputFactRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

impl InputFactRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new input fact and returns its id.
    pub fn register(&self, prob: Option<f64>, exclusion: Option<u32>) -> InputFactId {
        let mut inner = self.inner.write().expect("fact registry poisoned");
        let id = InputFactId(inner.probs.len() as u32);
        inner.probs.push(prob.unwrap_or(1.0));
        inner.exclusions.push(exclusion);
        id
    }

    /// Number of facts registered so far.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("fact registry poisoned")
            .probs
            .len()
    }

    /// `true` when no facts have been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The probability of a fact, or `1.0` if the id is unknown.
    pub fn prob(&self, fact: InputFactId) -> f64 {
        self.inner
            .read()
            .expect("fact registry poisoned")
            .probs
            .get(fact.0 as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Overwrites the probability of an already registered fact.
    ///
    /// Used between training iterations when the neural network produces new
    /// probabilities for the same facts.
    pub fn set_prob(&self, fact: InputFactId, prob: f64) {
        let mut inner = self.inner.write().expect("fact registry poisoned");
        if let Some(slot) = inner.probs.get_mut(fact.0 as usize) {
            *slot = prob;
        }
    }

    /// The mutual-exclusion group of a fact, if any.
    pub fn exclusion(&self, fact: InputFactId) -> Option<u32> {
        self.inner
            .read()
            .expect("fact registry poisoned")
            .exclusions
            .get(fact.0 as usize)
            .copied()
            .flatten()
    }

    /// Creates an *independent* copy of the registry: the fork starts with
    /// the same facts and probabilities, but facts registered (or
    /// probabilities updated) afterwards are not shared in either direction.
    ///
    /// This is how a batched run scopes the facts of its samples: ids already
    /// issued by the parent registry stay valid in the fork, while the
    /// per-sample facts the run registers on top never leak back into the
    /// parent. (Contrast with [`Clone`], which shares state.)
    pub fn fork(&self) -> InputFactRegistry {
        let inner = self.inner.read().expect("fact registry poisoned");
        InputFactRegistry {
            inner: Arc::new(RwLock::new(RegistryInner {
                probs: inner.probs.clone(),
                exclusions: inner.exclusions.clone(),
            })),
        }
    }

    /// Removes every registered fact. Used when re-running a program on a
    /// fresh sample.
    pub fn clear(&self) {
        let mut inner = self.inner.write().expect("fact registry poisoned");
        inner.probs.clear();
        inner.exclusions.clear();
    }

    /// Drops every fact with id `len` or above, keeping the first `len`
    /// registrations (and the backing allocations) intact. A session pool
    /// uses this to return a recycled session to its freshly-opened state
    /// without reallocating the registry.
    pub fn truncate(&self, len: usize) {
        let mut inner = self.inner.write().expect("fact registry poisoned");
        inner.probs.truncate(len);
        inner.exclusions.truncate(len);
    }

    /// Overwrites this registry's contents with a fork of `parent` — the
    /// same observable state [`InputFactRegistry::fork`] produces, but
    /// written into `self`'s existing allocations instead of fresh ones.
    ///
    /// Batched execution forks the session registry once per run; reforking
    /// into a recycled scratch registry makes that per-run cost a memcpy
    /// instead of two heap allocations (plus the lock/arc setup).
    pub fn refork_from(&self, parent: &InputFactRegistry) {
        if Arc::ptr_eq(&self.inner, &parent.inner) {
            // Reforking a registry from itself (or a clone sharing its
            // state) is a no-op — and taking both locks would deadlock.
            return;
        }
        let parent = parent.inner.read().expect("fact registry poisoned");
        let mut inner = self.inner.write().expect("fact registry poisoned");
        inner.probs.clear();
        inner.probs.extend_from_slice(&parent.probs);
        inner.exclusions.clear();
        inner.exclusions.extend_from_slice(&parent.exclusions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_dense_ids() {
        let reg = InputFactRegistry::new();
        assert!(reg.is_empty());
        let a = reg.register(Some(0.25), None);
        let b = reg.register(None, Some(7));
        assert_eq!(a, InputFactId(0));
        assert_eq!(b, InputFactId(1));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn prob_defaults_to_one() {
        let reg = InputFactRegistry::new();
        let a = reg.register(None, None);
        assert_eq!(reg.prob(a), 1.0);
        assert_eq!(reg.prob(InputFactId(99)), 1.0);
    }

    #[test]
    fn set_prob_updates_existing_fact() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.5), None);
        reg.set_prob(a, 0.9);
        assert_eq!(reg.prob(a), 0.9);
    }

    #[test]
    fn exclusion_groups_are_tracked() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.5), Some(3));
        let b = reg.register(Some(0.5), None);
        assert_eq!(reg.exclusion(a), Some(3));
        assert_eq!(reg.exclusion(b), None);
    }

    #[test]
    fn forks_are_independent() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.4), None);
        let fork = reg.fork();
        // The fork sees facts registered before the fork point...
        assert_eq!(fork.prob(a), 0.4);
        // ...but registrations and updates after it are not shared.
        let b = fork.register(Some(0.9), Some(3));
        assert_eq!(reg.len(), 1);
        assert_eq!(fork.len(), 2);
        assert_eq!(fork.exclusion(b), Some(3));
        fork.set_prob(a, 0.1);
        assert_eq!(reg.prob(a), 0.4);
    }

    #[test]
    fn truncate_keeps_the_leading_facts() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.4), Some(1));
        let b = reg.register(Some(0.9), None);
        reg.truncate(1);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.prob(a), 0.4);
        assert_eq!(reg.exclusion(a), Some(1));
        // The truncated fact is gone: its id reads as unknown.
        assert_eq!(reg.prob(b), 1.0);
        // Re-registering reuses the freed id.
        assert_eq!(reg.register(Some(0.7), None), b);
    }

    #[test]
    fn refork_from_matches_fork_and_reuses_the_target() {
        let parent = InputFactRegistry::new();
        let a = parent.register(Some(0.4), Some(2));
        let scratch = InputFactRegistry::new();
        // Dirty the scratch so stale state would be visible if kept.
        scratch.register(Some(0.123), Some(9));
        scratch.register(Some(0.456), None);
        scratch.refork_from(&parent);
        assert_eq!(scratch.len(), 1);
        assert_eq!(scratch.prob(a), 0.4);
        assert_eq!(scratch.exclusion(a), Some(2));
        // Like a fork, later changes are not shared in either direction.
        let b = scratch.register(Some(0.9), None);
        assert_eq!(parent.len(), 1);
        scratch.set_prob(a, 0.1);
        assert_eq!(parent.prob(a), 0.4);
        assert_eq!(scratch.exclusion(b), None);
    }

    #[test]
    fn refork_from_self_is_a_noop() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.4), None);
        reg.refork_from(&reg.clone());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.prob(a), 0.4);
    }

    #[test]
    fn clones_share_state() {
        let reg = InputFactRegistry::new();
        let clone = reg.clone();
        let a = reg.register(Some(0.4), None);
        assert_eq!(clone.prob(a), 0.4);
        clone.clear();
        assert!(reg.is_empty());
    }
}
