//! The max-min-prob provenance semiring.

use crate::{InputFactId, Provenance};

/// Max-min probability provenance: tags are probabilities in `[0, 1]`,
/// `⊕` is `max`, `⊗` is `min`.
///
/// This is the `minmaxprob` provenance used by the Probabilistic Static
/// Analysis benchmark in the paper: the weight of a derived fact is the
/// strength of its strongest derivation, where the strength of a derivation
/// is its weakest link.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaxMinProb;

impl MaxMinProb {
    /// Creates the max-min-prob provenance.
    pub fn new() -> Self {
        MaxMinProb
    }
}

impl Provenance for MaxMinProb {
    type Tag = f64;

    fn name(&self) -> &'static str {
        "minmaxprob"
    }

    fn zero(&self) -> Self::Tag {
        0.0
    }

    fn one(&self) -> Self::Tag {
        1.0
    }

    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        a.max(*b)
    }

    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        a.min(*b)
    }

    fn input_tag(&self, _fact: InputFactId, prob: Option<f64>) -> Self::Tag {
        prob.unwrap_or(1.0).clamp(0.0, 1.0)
    }

    fn accept(&self, tag: &Self::Tag) -> bool {
        *tag > 0.0
    }

    fn weight(&self, tag: &Self::Tag) -> f64 {
        *tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_min_operations() {
        let p = MaxMinProb::new();
        assert_eq!(p.add(&0.3, &0.7), 0.7);
        assert_eq!(p.mul(&0.3, &0.7), 0.3);
    }

    #[test]
    fn input_probabilities_are_clamped() {
        let p = MaxMinProb::new();
        assert_eq!(p.input_tag(InputFactId(0), Some(1.5)), 1.0);
        assert_eq!(p.input_tag(InputFactId(0), Some(-0.5)), 0.0);
        assert_eq!(p.input_tag(InputFactId(0), None), 1.0);
    }

    #[test]
    fn zero_probability_facts_are_rejected() {
        let p = MaxMinProb::new();
        assert!(!p.accept(&0.0));
        assert!(p.accept(&0.2));
    }

    #[test]
    fn semiring_is_idempotent() {
        let p = MaxMinProb::new();
        assert!(p.is_idempotent());
        assert_eq!(p.add(&0.4, &0.4), 0.4);
        assert_eq!(p.mul(&0.4, &0.4), 0.4);
    }
}
