//! The unit provenance: plain discrete Datalog.

use crate::{InputFactId, Output, Provenance};

/// The unit semiring: every tag is `()`.
///
/// This is the provenance used for purely discrete reasoning (the Transitive
/// Closure, Same Generation, and CSPA benchmarks in the paper). It adds no
/// per-fact overhead beyond existence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Unit;

impl Unit {
    /// Creates the unit provenance.
    pub fn new() -> Self {
        Unit
    }
}

impl Provenance for Unit {
    type Tag = ();

    fn name(&self) -> &'static str {
        "unit"
    }

    fn zero(&self) -> Self::Tag {}

    fn one(&self) -> Self::Tag {}

    fn add(&self, _a: &Self::Tag, _b: &Self::Tag) -> Self::Tag {}

    fn mul(&self, _a: &Self::Tag, _b: &Self::Tag) -> Self::Tag {}

    fn input_tag(&self, _fact: InputFactId, _prob: Option<f64>) -> Self::Tag {}

    fn weight(&self, _tag: &Self::Tag) -> f64 {
        1.0
    }

    fn output(&self, _tag: &Self::Tag) -> Output {
        Output::scalar(1.0)
    }

    fn delta_exact(&self) -> bool {
        // `()` carries nothing beyond existence, so dropping re-derivations
        // of already-present facts loses no information.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_trivial() {
        let p = Unit::new();
        assert_eq!(p.name(), "unit");
        assert_eq!(p.mul(&p.one(), &p.zero()), ());
        assert_eq!(p.weight(&()), 1.0);
        assert!(p.accept(&()));
        assert!(p.is_idempotent());
    }
}
