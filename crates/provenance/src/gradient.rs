//! Sparse gradients with respect to input-fact probabilities.

use crate::InputFactId;

/// A sparse vector of partial derivatives `d value / d Pr(fact)`.
///
/// Entries are kept sorted by fact id and duplicate ids are merged by
/// addition, so the representation is canonical and comparisons are
/// meaningful.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseGradient {
    entries: Vec<(InputFactId, f64)>,
}

impl SparseGradient {
    /// The zero gradient.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A gradient with a single non-zero entry.
    pub fn singleton(fact: InputFactId, value: f64) -> Self {
        SparseGradient {
            entries: vec![(fact, value)],
        }
    }

    /// Builds a gradient from arbitrary entries (sorted and merged).
    pub fn from_entries(mut entries: Vec<(InputFactId, f64)>) -> Self {
        entries.sort_unstable_by_key(|(f, _)| *f);
        let mut merged: Vec<(InputFactId, f64)> = Vec::with_capacity(entries.len());
        for (f, v) in entries {
            match merged.last_mut() {
                Some((lf, lv)) if *lf == f => *lv += v,
                _ => merged.push((f, v)),
            }
        }
        SparseGradient { entries: merged }
    }

    /// The non-zero entries, sorted by fact id.
    pub fn entries(&self) -> &[(InputFactId, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` for the zero gradient.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The derivative with respect to a specific fact (0 if absent).
    pub fn get(&self, fact: InputFactId) -> f64 {
        match self.entries.binary_search_by_key(&fact, |(f, _)| *f) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &SparseGradient) -> SparseGradient {
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (fa, va) = self.entries[i];
            let (fb, vb) = other.entries[j];
            if fa == fb {
                out.push((fa, va + vb));
                i += 1;
                j += 1;
            } else if fa < fb {
                out.push((fa, va));
                i += 1;
            } else {
                out.push((fb, vb));
                j += 1;
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend_from_slice(&other.entries[j..]);
        SparseGradient { entries: out }
    }

    /// Scalar multiplication `self * k`.
    pub fn scale(&self, k: f64) -> SparseGradient {
        SparseGradient {
            entries: self.entries.iter().map(|&(f, v)| (f, v * k)).collect(),
        }
    }

    /// Consumes the gradient into its entry list.
    pub fn into_entries(self) -> Vec<(InputFactId, f64)> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> InputFactId {
        InputFactId(i)
    }

    #[test]
    fn from_entries_sorts_and_merges() {
        let g = SparseGradient::from_entries(vec![(f(3), 1.0), (f(1), 2.0), (f(3), 0.5)]);
        assert_eq!(g.entries(), &[(f(1), 2.0), (f(3), 1.5)]);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let g = SparseGradient::singleton(f(2), 0.7);
        assert_eq!(g.get(f(2)), 0.7);
        assert_eq!(g.get(f(5)), 0.0);
    }

    #[test]
    fn add_is_elementwise() {
        let a = SparseGradient::from_entries(vec![(f(0), 1.0), (f(2), 2.0)]);
        let b = SparseGradient::from_entries(vec![(f(1), 3.0), (f(2), 4.0)]);
        let s = a.add(&b);
        assert_eq!(s.entries(), &[(f(0), 1.0), (f(1), 3.0), (f(2), 6.0)]);
    }

    #[test]
    fn scale_multiplies_every_entry() {
        let a = SparseGradient::from_entries(vec![(f(0), 1.0), (f(2), 2.0)]);
        let s = a.scale(0.5);
        assert_eq!(s.entries(), &[(f(0), 0.5), (f(2), 1.0)]);
    }

    #[test]
    fn zero_is_empty() {
        assert!(SparseGradient::zero().is_empty());
        assert_eq!(SparseGradient::zero().len(), 0);
    }
}
