//! Differentiable provenance semirings.
//!
//! These provenances carry enough information to compute the gradient of an
//! output fact's probability with respect to the probabilities of the input
//! facts, which is what allows a neural network upstream of the symbolic
//! program to be trained end-to-end (paper Sections 1–3).

use crate::{
    InputFactId, InputFactRegistry, Output, Proof, Provenance, SparseGradient, Top1Proof, Top1Tag,
};

/// A dual number: a value together with its sparse gradient with respect to
/// input-fact probabilities.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dual {
    /// The primal value (a pseudo-probability).
    pub value: f64,
    /// `d value / d Pr(fact)` for every contributing input fact.
    pub grad: SparseGradient,
}

impl Dual {
    /// A constant dual number (zero gradient).
    pub fn constant(value: f64) -> Self {
        Dual {
            value,
            grad: SparseGradient::zero(),
        }
    }

    /// The dual number of an input fact: value `p`, derivative 1 w.r.t.
    /// itself.
    pub fn variable(fact: InputFactId, value: f64) -> Self {
        Dual {
            value,
            grad: SparseGradient::singleton(fact, 1.0),
        }
    }
}

/// Differentiable max-min probability provenance (`diff-minmaxprob`).
///
/// The tag records the probability together with the *critical* input fact:
/// the fact whose probability currently determines the tag value. The
/// gradient is 1 with respect to that fact and 0 elsewhere (the true
/// sub-gradient of a max/min network).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiffMaxMinProb;

/// A tag of [`DiffMaxMinProb`]: probability plus the critical input fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxMinTag {
    /// Current probability bound.
    pub prob: f64,
    /// The input fact that determines `prob`, if any.
    pub critical: Option<InputFactId>,
}

impl DiffMaxMinProb {
    /// Creates the differentiable max-min-prob provenance.
    pub fn new() -> Self {
        DiffMaxMinProb
    }
}

impl Provenance for DiffMaxMinProb {
    type Tag = MaxMinTag;

    fn name(&self) -> &'static str {
        "diff-minmaxprob"
    }

    fn zero(&self) -> Self::Tag {
        MaxMinTag {
            prob: 0.0,
            critical: None,
        }
    }

    fn one(&self) -> Self::Tag {
        MaxMinTag {
            prob: 1.0,
            critical: None,
        }
    }

    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        if a.prob >= b.prob {
            *a
        } else {
            *b
        }
    }

    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        if a.prob <= b.prob {
            *a
        } else {
            *b
        }
    }

    fn input_tag(&self, fact: InputFactId, prob: Option<f64>) -> Self::Tag {
        MaxMinTag {
            prob: prob.unwrap_or(1.0).clamp(0.0, 1.0),
            critical: Some(fact),
        }
    }

    fn accept(&self, tag: &Self::Tag) -> bool {
        tag.prob > 0.0
    }

    fn weight(&self, tag: &Self::Tag) -> f64 {
        tag.prob
    }

    fn output(&self, tag: &Self::Tag) -> Output {
        let gradient = match tag.critical {
            Some(fact) => vec![(fact, 1.0)],
            None => Vec::new(),
        };
        Output {
            probability: tag.prob,
            gradient,
        }
    }
}

/// Differentiable add-mult probability provenance (`diff-addmultprob`).
///
/// Tags are [`Dual`] numbers; conjunction and disjunction propagate gradients
/// with the product and sum rules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiffAddMultProb;

impl DiffAddMultProb {
    /// Creates the differentiable add-mult-prob provenance.
    pub fn new() -> Self {
        DiffAddMultProb
    }
}

impl Provenance for DiffAddMultProb {
    type Tag = Dual;

    fn name(&self) -> &'static str {
        "diff-addmultprob"
    }

    fn zero(&self) -> Self::Tag {
        Dual::constant(0.0)
    }

    fn one(&self) -> Self::Tag {
        Dual::constant(1.0)
    }

    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        // Saturating addition; the gradient is the sub-gradient of
        // min(a + b, 1).
        let raw = a.value + b.value;
        if raw >= 1.0 {
            Dual {
                value: 1.0,
                grad: SparseGradient::zero(),
            }
        } else {
            Dual {
                value: raw,
                grad: a.grad.add(&b.grad),
            }
        }
    }

    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        Dual {
            value: a.value * b.value,
            grad: a.grad.scale(b.value).add(&b.grad.scale(a.value)),
        }
    }

    fn input_tag(&self, fact: InputFactId, prob: Option<f64>) -> Self::Tag {
        match prob {
            Some(p) => Dual::variable(fact, p.clamp(0.0, 1.0)),
            None => Dual::constant(1.0),
        }
    }

    fn accept(&self, tag: &Self::Tag) -> bool {
        tag.value > 0.0
    }

    fn weight(&self, tag: &Self::Tag) -> f64 {
        tag.value.clamp(0.0, 1.0)
    }

    fn output(&self, tag: &Self::Tag) -> Output {
        Output {
            probability: self.weight(tag),
            gradient: tag.grad.clone().into_entries(),
        }
    }

    fn is_idempotent(&self) -> bool {
        false
    }
}

/// Differentiable top-1-proof provenance (`diff-top-1-proofs`).
///
/// This is the provenance used by all four differentiable benchmarks in the
/// paper (Pathfinder, PacMan-Maze, HWF, CLUTRR). The tag is the most likely
/// proof; the gradient of the output probability `p = Π_i p_i` with respect
/// to each fact in the proof is the product of the other facts'
/// probabilities.
#[derive(Debug, Clone)]
pub struct DiffTop1Proof {
    inner: Top1Proof,
}

impl DiffTop1Proof {
    /// Creates the provenance over a fact registry with the default
    /// proof-size limit.
    pub fn new(registry: InputFactRegistry) -> Self {
        DiffTop1Proof {
            inner: Top1Proof::new(registry),
        }
    }

    /// Creates the provenance with an explicit proof-size limit.
    pub fn with_max_proof_size(registry: InputFactRegistry, max_proof_size: usize) -> Self {
        DiffTop1Proof {
            inner: Top1Proof::with_max_proof_size(registry, max_proof_size),
        }
    }

    /// The fact registry backing this provenance.
    pub fn registry(&self) -> &InputFactRegistry {
        self.inner.registry()
    }

    /// The configured proof-size limit (defaults to
    /// [`crate::DEFAULT_MAX_PROOF_SIZE`]).
    pub fn max_proof_size(&self) -> usize {
        self.inner.max_proof_size()
    }

    /// The most likely proof recorded in a tag, if any.
    pub fn proof<'a>(&self, tag: &'a Top1Tag) -> Option<&'a Proof> {
        self.inner.proof(tag)
    }
}

impl Provenance for DiffTop1Proof {
    type Tag = Top1Tag;

    fn name(&self) -> &'static str {
        "diff-top-1-proofs"
    }

    fn zero(&self) -> Self::Tag {
        self.inner.zero()
    }

    fn one(&self) -> Self::Tag {
        self.inner.one()
    }

    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        self.inner.add(a, b)
    }

    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        self.inner.mul(a, b)
    }

    fn input_tag(&self, fact: InputFactId, prob: Option<f64>) -> Self::Tag {
        self.inner.input_tag(fact, prob)
    }

    fn accept(&self, tag: &Self::Tag) -> bool {
        self.inner.accept(tag)
    }

    fn weight(&self, tag: &Self::Tag) -> f64 {
        self.inner.weight(tag)
    }

    fn output(&self, tag: &Self::Tag) -> Output {
        match tag {
            Top1Tag::False => Output::scalar(0.0),
            Top1Tag::Proof(proof) => {
                let registry = self.inner.registry();
                let probability = proof.probability(registry);
                let mut gradient = Vec::with_capacity(proof.len());
                for &fact in proof.facts() {
                    // d (Π_i p_i) / d p_fact = Π_{i ≠ fact} p_i.
                    let others: f64 = proof
                        .facts()
                        .iter()
                        .filter(|&&f| f != fact)
                        .map(|&f| registry.prob(f))
                        .product();
                    gradient.push((fact, others));
                }
                Output {
                    probability,
                    gradient,
                }
            }
        }
    }

    fn is_idempotent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_minmax_tracks_critical_fact() {
        let p = DiffMaxMinProb::new();
        let a = p.input_tag(InputFactId(0), Some(0.9));
        let b = p.input_tag(InputFactId(1), Some(0.4));
        let conj = p.mul(&a, &b);
        assert_eq!(conj.critical, Some(InputFactId(1)));
        let out = p.output(&conj);
        assert_eq!(out.probability, 0.4);
        assert_eq!(out.gradient, vec![(InputFactId(1), 1.0)]);
        let disj = p.add(&a, &b);
        assert_eq!(disj.critical, Some(InputFactId(0)));
    }

    #[test]
    fn diff_addmult_product_rule() {
        let p = DiffAddMultProb::new();
        let a = p.input_tag(InputFactId(0), Some(0.5));
        let b = p.input_tag(InputFactId(1), Some(0.4));
        let prod = p.mul(&a, &b);
        assert!((prod.value - 0.2).abs() < 1e-12);
        assert!((prod.grad.get(InputFactId(0)) - 0.4).abs() < 1e-12);
        assert!((prod.grad.get(InputFactId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn diff_addmult_sum_rule_and_saturation() {
        let p = DiffAddMultProb::new();
        let a = p.input_tag(InputFactId(0), Some(0.3));
        let b = p.input_tag(InputFactId(1), Some(0.4));
        let sum = p.add(&a, &b);
        assert!((sum.value - 0.7).abs() < 1e-12);
        assert_eq!(sum.grad.get(InputFactId(0)), 1.0);
        let saturated = p.add(&sum, &p.input_tag(InputFactId(2), Some(0.9)));
        assert_eq!(saturated.value, 1.0);
        assert!(saturated.grad.is_empty());
    }

    #[test]
    fn diff_addmult_numeric_gradient_check() {
        // Finite-difference check of d(a*b + c*b)/da etc. through the semiring ops.
        let p = DiffAddMultProb::new();
        let eval = |pa: f64, pb: f64, pc: f64| {
            let a = p.input_tag(InputFactId(0), Some(pa));
            let b = p.input_tag(InputFactId(1), Some(pb));
            let c = p.input_tag(InputFactId(2), Some(pc));
            p.add(&p.mul(&a, &b), &p.mul(&c, &b))
        };
        let base = eval(0.3, 0.5, 0.2);
        let eps = 1e-6;
        let da = (eval(0.3 + eps, 0.5, 0.2).value - base.value) / eps;
        let db = (eval(0.3, 0.5 + eps, 0.2).value - base.value) / eps;
        assert!((base.grad.get(InputFactId(0)) - da).abs() < 1e-4);
        assert!((base.grad.get(InputFactId(1)) - db).abs() < 1e-4);
    }

    #[test]
    fn diff_top1_gradient_is_product_of_other_probs() {
        let reg = InputFactRegistry::new();
        let a = reg.register(Some(0.5), None);
        let b = reg.register(Some(0.4), None);
        let c = reg.register(Some(0.8), None);
        let p = DiffTop1Proof::new(reg);
        let t = p.mul(
            &p.mul(&p.input_tag(a, None), &p.input_tag(b, None)),
            &p.input_tag(c, None),
        );
        let out = p.output(&t);
        assert!((out.probability - 0.16).abs() < 1e-12);
        let grad: std::collections::HashMap<_, _> = out.gradient.into_iter().collect();
        assert!((grad[&a] - 0.32).abs() < 1e-12);
        assert!((grad[&b] - 0.4).abs() < 1e-12);
        assert!((grad[&c] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn diff_top1_false_has_zero_output() {
        let reg = InputFactRegistry::new();
        let p = DiffTop1Proof::new(reg);
        let out = p.output(&p.zero());
        assert_eq!(out.probability, 0.0);
        assert!(out.gradient.is_empty());
    }
}
