//! Binding provenances to a per-session fact registry.
//!
//! Most semirings are stateless, but the proof-based provenances
//! ([`Top1Proof`], [`DiffTop1Proof`]) consult an [`InputFactRegistry`] to
//! rank proofs and compute gradients. A compiled program that wants to be
//! shared across many sessions therefore cannot hold a provenance *instance*
//! — it holds a provenance *type*, and every session binds a fresh instance
//! to its own registry through [`SessionProvenance`].

use crate::{
    AddMultProb, Boolean, DiffAddMultProb, DiffMaxMinProb, DiffTop1Proof, InputFactRegistry,
    MaxMinProb, Provenance, Top1Proof, Unit,
};

/// A provenance semiring that can be instantiated over a session's fact
/// registry.
///
/// Implemented by all of Lobster's built-in semirings. Registry-free
/// semirings ignore the registry in [`SessionProvenance::bind`]; the
/// proof-based ones store it.
pub trait SessionProvenance: Provenance {
    /// Creates an instance bound to the given registry, with default
    /// configuration.
    fn bind(registry: InputFactRegistry) -> Self;

    /// Creates an instance bound to a *different* registry while preserving
    /// this instance's configuration (e.g. a custom proof-size limit).
    ///
    /// Used by batched execution, which forks the session registry so that
    /// per-sample facts never leak into the session.
    fn rebind(&self, registry: InputFactRegistry) -> Self;
}

macro_rules! registry_free {
    ($($ty:ty),* $(,)?) => {$(
        impl SessionProvenance for $ty {
            fn bind(_registry: InputFactRegistry) -> Self {
                <$ty>::new()
            }

            fn rebind(&self, _registry: InputFactRegistry) -> Self {
                self.clone()
            }
        }
    )*};
}

registry_free!(
    Unit,
    Boolean,
    MaxMinProb,
    AddMultProb,
    DiffMaxMinProb,
    DiffAddMultProb
);

impl SessionProvenance for Top1Proof {
    fn bind(registry: InputFactRegistry) -> Self {
        Top1Proof::new(registry)
    }

    fn rebind(&self, registry: InputFactRegistry) -> Self {
        Top1Proof::with_max_proof_size(registry, self.max_proof_size())
    }
}

impl SessionProvenance for DiffTop1Proof {
    fn bind(registry: InputFactRegistry) -> Self {
        DiffTop1Proof::new(registry)
    }

    fn rebind(&self, registry: InputFactRegistry) -> Self {
        DiffTop1Proof::with_max_proof_size(registry, self.max_proof_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputFactId;

    #[test]
    fn bind_ties_proof_provenances_to_the_registry() {
        let registry = InputFactRegistry::new();
        let fact = registry.register(Some(0.25), None);
        let prov = Top1Proof::bind(registry);
        let tag = prov.input_tag(fact, Some(0.25));
        assert!((prov.weight(&tag) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rebind_preserves_configuration() {
        let a = InputFactRegistry::new();
        let prov = DiffTop1Proof::with_max_proof_size(a, 7);
        let rebound = prov.rebind(InputFactRegistry::new());
        assert_eq!(rebound.max_proof_size(), 7);
    }

    #[test]
    fn rebound_instances_read_the_new_registry() {
        let a = InputFactRegistry::new();
        let fact = a.register(Some(0.5), None);
        let prov = Top1Proof::bind(a.clone());
        let fork = a.fork();
        fork.set_prob(fact, 0.125);
        let rebound = prov.rebind(fork);
        let tag = rebound.input_tag(fact, None);
        assert!((rebound.weight(&tag) - 0.125).abs() < 1e-12);
        assert!((prov.weight(&prov.input_tag(fact, None)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn registry_free_semirings_ignore_the_registry() {
        let prov = DiffAddMultProb::bind(InputFactRegistry::new());
        let tag = prov.input_tag(InputFactId(0), Some(0.5));
        assert!((prov.weight(&tag) - 0.5).abs() < 1e-12);
        let _ = prov.rebind(InputFactRegistry::new());
    }
}
