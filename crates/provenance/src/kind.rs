//! Runtime selection of a provenance semiring by name.

use std::fmt;
use std::str::FromStr;

/// The provenance semirings implemented by Lobster, selectable by name.
///
/// This mirrors the library of 7 semirings listed in Section 3.5 of the
/// paper: `unit`, `max-min-prob`, `add-mult-prob`, `top-1-proof`, and the
/// differentiable versions of the probabilistic semirings (plus the boolean
/// semiring used for testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProvenanceKind {
    /// Discrete reasoning with no tags ([`crate::Unit`]).
    Unit,
    /// Boolean tags ([`crate::Boolean`]).
    Boolean,
    /// Max-min probabilities ([`crate::MaxMinProb`]).
    MaxMinProb,
    /// Add-mult pseudo-probabilities ([`crate::AddMultProb`]).
    AddMultProb,
    /// Most likely proof per fact ([`crate::Top1Proof`]).
    Top1Proof,
    /// Differentiable max-min probabilities ([`crate::DiffMaxMinProb`]).
    DiffMaxMinProb,
    /// Differentiable add-mult probabilities ([`crate::DiffAddMultProb`]).
    DiffAddMultProb,
    /// Differentiable most likely proof ([`crate::DiffTop1Proof`]).
    DiffTop1Proof,
}

impl ProvenanceKind {
    /// All implemented provenance kinds.
    pub const ALL: [ProvenanceKind; 8] = [
        ProvenanceKind::Unit,
        ProvenanceKind::Boolean,
        ProvenanceKind::MaxMinProb,
        ProvenanceKind::AddMultProb,
        ProvenanceKind::Top1Proof,
        ProvenanceKind::DiffMaxMinProb,
        ProvenanceKind::DiffAddMultProb,
        ProvenanceKind::DiffTop1Proof,
    ];

    /// The canonical name of the semiring.
    pub fn name(self) -> &'static str {
        match self {
            ProvenanceKind::Unit => "unit",
            ProvenanceKind::Boolean => "bool",
            ProvenanceKind::MaxMinProb => "minmaxprob",
            ProvenanceKind::AddMultProb => "addmultprob",
            ProvenanceKind::Top1Proof => "prob-top-1-proofs",
            ProvenanceKind::DiffMaxMinProb => "diff-minmaxprob",
            ProvenanceKind::DiffAddMultProb => "diff-addmultprob",
            ProvenanceKind::DiffTop1Proof => "diff-top-1-proofs",
        }
    }

    /// Whether this semiring supports gradient computation.
    pub fn is_differentiable(self) -> bool {
        matches!(
            self,
            ProvenanceKind::DiffMaxMinProb
                | ProvenanceKind::DiffAddMultProb
                | ProvenanceKind::DiffTop1Proof
        )
    }

    /// Whether this semiring carries probabilities at all.
    pub fn is_probabilistic(self) -> bool {
        !matches!(self, ProvenanceKind::Unit | ProvenanceKind::Boolean)
    }
}

impl fmt::Display for ProvenanceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown provenance name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProvenanceError(String);

impl fmt::Display for ParseProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown provenance semiring `{}`", self.0)
    }
}

impl std::error::Error for ParseProvenanceError {}

impl FromStr for ProvenanceKind {
    type Err = ParseProvenanceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase();
        ProvenanceKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == normalized)
            .ok_or_else(|| ParseProvenanceError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in ProvenanceKind::ALL {
            assert_eq!(kind.name().parse::<ProvenanceKind>().unwrap(), kind);
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        let err = "top-7-proofs".parse::<ProvenanceKind>().unwrap_err();
        assert!(err.to_string().contains("top-7-proofs"));
    }

    #[test]
    fn differentiability_classification() {
        assert!(ProvenanceKind::DiffTop1Proof.is_differentiable());
        assert!(!ProvenanceKind::Top1Proof.is_differentiable());
        assert!(ProvenanceKind::Top1Proof.is_probabilistic());
        assert!(!ProvenanceKind::Unit.is_probabilistic());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(
            ProvenanceKind::DiffTop1Proof.to_string(),
            "diff-top-1-proofs"
        );
    }
}
