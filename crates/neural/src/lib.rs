//! A minimal neural substrate for end-to-end neurosymbolic training.
//!
//! The paper's benchmarks pair a perception network (a CNN over images or a
//! transformer over sequences, trained with PyTorch) with a Lobster symbolic
//! program. The network's job in the pipeline is narrow: turn raw features
//! into *probabilities of input facts*, and accept gradients of the loss
//! with respect to those probabilities coming back from the differentiable
//! symbolic layer.
//!
//! This crate provides exactly that substrate, written from scratch so the
//! whole pipeline stays inside the workspace: dense layers with manual
//! backpropagation, sigmoid/ReLU activations, binary-cross-entropy loss, and
//! SGD/Adam optimizers. The architecture is intentionally small — what the
//! reproduction measures is the symbolic engine, and the neural component
//! only needs to be a realistic differentiable producer of fact
//! probabilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod loss;
mod mlp;
mod optim;

pub use loss::{bce_grad, bce_loss};
pub use mlp::{Activation, Layer, Mlp};
pub use optim::{Adam, Optimizer, Sgd};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// End-to-end smoke test: a tiny MLP learns to map 2-feature inputs to a
    /// "probability" that the symbolic layer would then consume.
    #[test]
    fn mlp_learns_a_simple_threshold() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = Mlp::new(&[2, 8, 1], Activation::Sigmoid, &mut rng);
        let mut opt = Sgd::new(0.1);
        // Label = 1 when x0 > x1.
        let data: Vec<(Vec<f32>, f32)> = (0..200)
            .map(|i| {
                let a = (i % 10) as f32 / 10.0;
                let b = ((i * 7) % 10) as f32 / 10.0;
                (vec![a, b], if a > b { 1.0 } else { 0.0 })
            })
            .collect();
        let mut last_loss = f32::INFINITY;
        for _ in 0..200 {
            let mut total = 0.0;
            for (x, y) in &data {
                let out = model.forward(x);
                let p = out[0];
                total += bce_loss(p, *y);
                let dl_dp = bce_grad(p, *y).clamp(-10.0, 10.0);
                model.backward(&[dl_dp]);
                model.apply_gradients(&mut opt);
            }
            last_loss = total / data.len() as f32;
        }
        assert!(
            last_loss < 0.35,
            "training did not converge: loss {last_loss}"
        );
        // Check a couple of predictions.
        assert!(model.forward(&[0.9, 0.1])[0] > 0.6);
        assert!(model.forward(&[0.1, 0.9])[0] < 0.4);
    }
}
