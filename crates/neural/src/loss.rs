//! Loss functions used by the neurosymbolic training loops.

/// Binary cross entropy between a predicted probability and a 0/1 label.
pub fn bce_loss(prediction: f32, label: f32) -> f32 {
    let p = prediction.clamp(1e-6, 1.0 - 1e-6);
    -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
}

/// Gradient of [`bce_loss`] with respect to the prediction.
pub fn bce_grad(prediction: f32, label: f32) -> f32 {
    let p = prediction.clamp(1e-6, 1.0 - 1e-6);
    (p - label) / (p * (1.0 - p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_low_for_correct_confident_predictions() {
        assert!(bce_loss(0.99, 1.0) < 0.05);
        assert!(bce_loss(0.01, 0.0) < 0.05);
        assert!(bce_loss(0.01, 1.0) > 2.0);
    }

    #[test]
    fn gradient_points_toward_the_label() {
        assert!(bce_grad(0.8, 1.0) < 0.0, "should push the prediction up");
        assert!(bce_grad(0.2, 0.0) > 0.0, "should push the prediction down");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let eps = 1e-4;
        for &(p, y) in &[(0.3, 1.0), (0.7, 0.0), (0.5, 1.0)] {
            let numeric = (bce_loss(p + eps, y) - bce_loss(p - eps, y)) / (2.0 * eps);
            assert!((numeric - bce_grad(p, y)).abs() < 1e-2);
        }
    }
}
