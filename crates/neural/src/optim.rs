//! Optimizers.

use std::collections::HashMap;

/// A parameter-group optimizer. `slot` identifies a parameter tensor so the
/// optimizer can keep per-tensor state (e.g. Adam moments).
pub trait Optimizer {
    /// Updates `params` in place using `grads`.
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &mut [f32]);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Sgd { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _slot: usize, params: &mut [f32], grads: &mut [f32]) {
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            *p -= self.learning_rate * g;
        }
    }
}

/// The Adam optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub epsilon: f32,
    state: HashMap<usize, (Vec<f32>, Vec<f32>, u32)>,
}

impl Adam {
    /// Creates Adam with the usual defaults.
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            state: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &mut [f32]) {
        let (m, v, t) = self
            .state
            .entry(slot)
            .or_insert_with(|| (vec![0.0; params.len()], vec![0.0; params.len()], 0));
        *t += 1;
        let t_f = *t as f32;
        for i in 0..params.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grads[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = m[i] / (1.0 - self.beta1.powf(t_f));
            let v_hat = v[i] / (1.0 - self.beta2.powf(t_f));
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_the_gradient() {
        let mut opt = Sgd::new(0.1);
        let mut params = vec![1.0, -1.0];
        let mut grads = vec![0.5, -0.5];
        opt.step(0, &mut params, &mut grads);
        assert!((params[0] - 0.95).abs() < 1e-6);
        assert!((params[1] + 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // Minimize f(x) = (x - 3)^2 from x = 0.
        let mut opt = Adam::new(0.1);
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            let mut grad = vec![2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &mut grad);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn adam_keeps_separate_state_per_slot() {
        let mut opt = Adam::new(0.1);
        let mut a = vec![0.0f32];
        let mut b = vec![0.0f32];
        for _ in 0..100 {
            let mut grad_a = vec![2.0 * (a[0] - 1.0)];
            opt.step(0, &mut a, &mut grad_a);
            let mut grad_b = vec![2.0 * (b[0] + 1.0)];
            opt.step(1, &mut b, &mut grad_b);
        }
        assert!(a[0] > 0.5);
        assert!(b[0] < -0.5);
    }
}
