//! Dense layers and multi-layer perceptrons with manual backpropagation.

use crate::optim::Optimizer;
use rand::Rng;

/// Activation function applied after each hidden layer (and the output
/// layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid (used when outputs are probabilities).
    Sigmoid,
    /// No activation.
    Identity,
}

impl Activation {
    fn forward(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the pre-activation, expressed in terms of
    /// the activated output `y`.
    fn backward(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }
}

/// One dense layer: `y = act(W x + b)`.
#[derive(Debug, Clone)]
pub struct Layer {
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    inputs: usize,
    outputs: usize,
    activation: Activation,
    last_input: Vec<f32>,
    last_output: Vec<f32>,
}

impl Layer {
    /// Creates a layer with Xavier-style random initialization.
    pub fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        let scale = (2.0 / (inputs + outputs) as f32).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Layer {
            weights,
            bias: vec![0.0; outputs],
            grad_weights: vec![0.0; inputs * outputs],
            grad_bias: vec![0.0; outputs],
            inputs,
            outputs,
            activation,
            last_input: vec![0.0; inputs],
            last_output: vec![0.0; outputs],
        }
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        debug_assert_eq!(input.len(), self.inputs);
        self.last_input.copy_from_slice(input);
        let mut out = vec![0.0; self.outputs];
        for (o, out_val) in out.iter_mut().enumerate() {
            let mut acc = self.bias[o];
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            *out_val = self.activation.forward(acc);
        }
        self.last_output.copy_from_slice(&out);
        out
    }

    fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        debug_assert_eq!(grad_output.len(), self.outputs);
        let mut grad_input = vec![0.0; self.inputs];
        for (o, &g_out) in grad_output.iter().enumerate() {
            let dz = g_out * self.activation.backward(self.last_output[o]);
            self.grad_bias[o] += dz;
            let row_start = o * self.inputs;
            for (i, g_in) in grad_input.iter_mut().enumerate() {
                self.grad_weights[row_start + i] += dz * self.last_input[i];
                *g_in += dz * self.weights[row_start + i];
            }
        }
        grad_input
    }

    fn apply(&mut self, optimizer: &mut dyn Optimizer, layer_index: usize) {
        optimizer.step(layer_index * 2, &mut self.weights, &mut self.grad_weights);
        optimizer.step(layer_index * 2 + 1, &mut self.bias, &mut self.grad_bias);
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes; hidden layers use ReLU and
    /// the output layer uses `output_activation`.
    pub fn new(sizes: &[usize], output_activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least an input and an output size"
        );
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let activation = if i + 2 == sizes.len() {
                output_activation
            } else {
                Activation::Relu
            };
            layers.push(Layer::new(sizes[i], sizes[i + 1], activation, rng));
        }
        Mlp { layers }
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Layer::parameter_count).sum()
    }

    /// Forward pass for one input vector.
    pub fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        let mut value = input.to_vec();
        for layer in &mut self.layers {
            value = layer.forward(&value);
        }
        value
    }

    /// Backward pass: accumulates parameter gradients given the gradient of
    /// the loss with respect to the network output, and returns the gradient
    /// with respect to the input.
    pub fn backward(&mut self, grad_output: &[f32]) -> Vec<f32> {
        let mut grad = grad_output.to_vec();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Applies and clears the accumulated gradients.
    pub fn apply_gradients(&mut self, optimizer: &mut impl Optimizer) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.apply(optimizer, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_match() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(&[4, 6, 3], Activation::Sigmoid, &mut rng);
        let out = mlp.forward(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(mlp.parameter_count(), 4 * 6 + 6 + 6 * 3 + 3);
    }

    #[test]
    fn numeric_gradient_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[3, 5, 1], Activation::Sigmoid, &mut rng);
        let x = [0.3, -0.2, 0.8];
        // Analytic input gradient of the scalar output.
        let _ = mlp.forward(&x);
        let grad = mlp.backward(&[1.0]);
        // Finite differences on the input.
        let eps = 1e-3;
        for i in 0..x.len() {
            let mut plus = x;
            plus[i] += eps;
            let mut minus = x;
            minus[i] -= eps;
            let f_plus = mlp.forward(&plus)[0];
            let f_minus = mlp.forward(&minus)[0];
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-2,
                "input gradient mismatch at {i}: analytic {} vs numeric {numeric}",
                grad[i]
            );
        }
    }

    #[test]
    fn activations_behave() {
        assert_eq!(Activation::Relu.forward(-1.0), 0.0);
        assert_eq!(Activation::Relu.forward(2.0), 2.0);
        assert!((Activation::Sigmoid.forward(0.0) - 0.5).abs() < 1e-6);
        assert_eq!(Activation::Identity.forward(3.5), 3.5);
        assert_eq!(Activation::Identity.backward(3.5), 1.0);
    }
}
