//! Cell values and their 64-bit device encoding.

use std::fmt;

/// The logical type of a relation column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Unsigned 32-bit integers (the paper's `u32` / `Cell` type).
    U32,
    /// Signed 64-bit integers.
    I64,
    /// 64-bit floating point numbers (needed by the HWF benchmark).
    F64,
    /// Interned symbols (strings).
    Symbol,
    /// Booleans.
    Bool,
}

impl ValueType {
    /// The physical width in bytes a column of this type needs on the
    /// device, before dictionary encoding: booleans fit a byte, `u32`s four,
    /// and the 64-bit types the full word. `Symbol` reports its *ceiling*
    /// width — a per-database dictionary can narrow symbol columns further
    /// (see [`crate::SymbolDict::width_bytes`]).
    pub fn physical_width(self) -> usize {
        match self {
            ValueType::Bool => 1,
            ValueType::U32 | ValueType::Symbol => 4,
            ValueType::I64 | ValueType::F64 => 8,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueType::U32 => "u32",
            ValueType::I64 => "i64",
            ValueType::F64 => "f64",
            ValueType::Symbol => "symbol",
            ValueType::Bool => "bool",
        };
        f.write_str(name)
    }
}

/// A single cell value.
///
/// Values are encoded as raw 64-bit words on the device ([`Value::encode`]);
/// the logical type is carried by the relation schema. Word-for-word equality
/// of encodings coincides with value equality within one type, which is the
/// only property the device kernels rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An unsigned 32-bit integer.
    U32(u32),
    /// A signed 64-bit integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// An interned symbol id (see [`crate::SymbolTable`]).
    Symbol(u32),
    /// A boolean.
    Bool(bool),
}

/// A tuple of cell values (one fact, minus its provenance tag).
pub type Tuple = Vec<Value>;

impl Value {
    /// The logical type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::U32(_) => ValueType::U32,
            Value::I64(_) => ValueType::I64,
            Value::F64(_) => ValueType::F64,
            Value::Symbol(_) => ValueType::Symbol,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// Encodes the value as a 64-bit device word.
    pub fn encode(&self) -> u64 {
        match self {
            Value::U32(v) => u64::from(*v),
            Value::I64(v) => *v as u64,
            // Normalize -0.0 to 0.0 so bit-equality coincides with value
            // equality. NaNs are not expected in relation data.
            Value::F64(v) => (if *v == 0.0 { 0.0 } else { *v }).to_bits(),
            Value::Symbol(v) => u64::from(*v),
            Value::Bool(v) => u64::from(*v),
        }
    }

    /// Decodes a 64-bit device word of the given logical type.
    pub fn decode(word: u64, ty: ValueType) -> Value {
        match ty {
            ValueType::U32 => Value::U32(word as u32),
            ValueType::I64 => Value::I64(word as i64),
            ValueType::F64 => Value::F64(f64::from_bits(word)),
            ValueType::Symbol => Value::Symbol(word as u32),
            ValueType::Bool => Value::Bool(word != 0),
        }
    }

    /// The value as an `f64`, converting integers when necessary.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::U32(v) => f64::from(*v),
            Value::I64(v) => *v as f64,
            Value::F64(v) => *v,
            Value::Symbol(v) => f64::from(*v),
            Value::Bool(v) => f64::from(u8::from(*v)),
        }
    }

    /// The value as a `u32` if it is one.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::U32(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Symbol(v) => write!(f, "sym#{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let cases = vec![
            Value::U32(42),
            Value::I64(-7),
            Value::F64(3.25),
            Value::Symbol(9),
            Value::Bool(true),
            Value::Bool(false),
        ];
        for v in cases {
            let decoded = Value::decode(v.encode(), v.value_type());
            assert_eq!(decoded, v, "round trip failed for {v:?}");
        }
    }

    #[test]
    fn negative_zero_normalizes() {
        assert_eq!(Value::F64(-0.0).encode(), Value::F64(0.0).encode());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3u32), Value::U32(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(0.5), Value::F64(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::U32(7).as_f64(), 7.0);
        assert_eq!(Value::U32(7).as_u32(), Some(7));
        assert_eq!(Value::F64(7.0).as_u32(), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::U32(5).to_string(), "5");
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
        assert_eq!(ValueType::F64.to_string(), "f64");
    }
}
