//! Static analyses over RAM programs used by the optimizer and scheduler.
//!
//! * [`is_linear_recursive`] — detects the "linear recursion" property of
//!   Section 4.2: every join in a recursive stratum has at most one input
//!   that depends on the stratum's own relations, which is what allows the
//!   hash index of the other (EDB / stable) side to be built once and reused
//!   across fix-point iterations via a static register.
//! * [`count_recursive_joins`] — the heuristic of Section 5.3 used by the
//!   stratum-offloading scheduler to identify the longest-running stratum.

use crate::{RamExpr, Stratum};
use std::collections::BTreeSet;

/// Summary of a stratum produced by [`StratumAnalysis::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratumAnalysis {
    /// Number of joins whose inputs include a relation defined in this
    /// stratum (i.e. joins that participate in the recursion).
    pub recursive_joins: usize,
    /// Total number of joins in the stratum.
    pub total_joins: usize,
    /// Whether every join is linear recursive.
    pub linear_recursive: bool,
    /// Relations read by the stratum but defined elsewhere.
    pub input_relations: Vec<String>,
    /// Relations defined by the stratum.
    pub output_relations: Vec<String>,
}

impl StratumAnalysis {
    /// Analyzes a stratum.
    pub fn analyze(stratum: &Stratum) -> Self {
        let own: BTreeSet<&str> = stratum.relations.iter().map(String::as_str).collect();
        let mut recursive_joins = 0;
        let mut total_joins = 0;
        let mut linear = true;
        let mut inputs: BTreeSet<String> = BTreeSet::new();
        for rule in &stratum.rules {
            let mut refs = Vec::new();
            rule.expr.referenced_relations(&mut refs);
            for r in refs {
                if !own.contains(r.as_str()) {
                    inputs.insert(r);
                }
            }
            rule.expr.visit(&mut |e| {
                if let RamExpr::Join { left, right, .. } = e {
                    total_joins += 1;
                    let l = depends_on(left, &own);
                    let r = depends_on(right, &own);
                    if l || r {
                        recursive_joins += 1;
                    }
                    if l && r {
                        linear = false;
                    }
                }
            });
        }
        StratumAnalysis {
            recursive_joins,
            total_joins,
            linear_recursive: linear,
            input_relations: inputs.into_iter().collect(),
            output_relations: stratum.relations.clone(),
        }
    }
}

fn depends_on(expr: &RamExpr, own: &BTreeSet<&str>) -> bool {
    let mut refs = Vec::new();
    expr.referenced_relations(&mut refs);
    refs.iter().any(|r| own.contains(r.as_str()))
}

/// Whether every join of the stratum has at most one input that depends on
/// the stratum's own (recursive) relations.
pub fn is_linear_recursive(stratum: &Stratum) -> bool {
    StratumAnalysis::analyze(stratum).linear_recursive
}

/// Number of joins in the stratum that involve a recursive relation. Used as
/// the scheduling heuristic for identifying the longest-running stratum.
pub fn count_recursive_joins(stratum: &Stratum) -> usize {
    StratumAnalysis::analyze(stratum).recursive_joins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RamRule, RowProjection, ScalarExpr};

    fn linear_stratum() -> Stratum {
        // path(x,y) :- path(x,z), edge(z,y): one recursive input per join.
        let path_zx = RamExpr::relation("path").project(RowProjection::new(
            vec![ScalarExpr::Col(1), ScalarExpr::Col(0)],
            None,
        ));
        let expr = path_zx
            .join(RamExpr::relation("edge"), 1)
            .project(RowProjection::new(
                vec![ScalarExpr::Col(1), ScalarExpr::Col(2)],
                None,
            ));
        Stratum {
            relations: vec!["path".into()],
            rules: vec![RamRule {
                target: "path".into(),
                expr,
            }],
            recursive: true,
        }
    }

    fn nonlinear_stratum() -> Stratum {
        // path(x,y) :- path(x,z), path(z,y): both join inputs are recursive.
        let expr = RamExpr::relation("path").join(RamExpr::relation("path"), 1);
        Stratum {
            relations: vec!["path".into()],
            rules: vec![RamRule {
                target: "path".into(),
                expr,
            }],
            recursive: true,
        }
    }

    #[test]
    fn linear_recursion_is_detected() {
        assert!(is_linear_recursive(&linear_stratum()));
        assert!(!is_linear_recursive(&nonlinear_stratum()));
    }

    #[test]
    fn recursive_joins_are_counted() {
        assert_eq!(count_recursive_joins(&linear_stratum()), 1);
        let analysis = StratumAnalysis::analyze(&linear_stratum());
        assert_eq!(analysis.total_joins, 1);
        assert_eq!(analysis.input_relations, vec!["edge".to_string()]);
        assert_eq!(analysis.output_relations, vec!["path".to_string()]);
    }

    #[test]
    fn non_recursive_stratum_has_zero_recursive_joins() {
        let stratum = Stratum {
            relations: vec!["result".into()],
            rules: vec![RamRule {
                target: "result".into(),
                expr: RamExpr::relation("a").join(RamExpr::relation("b"), 1),
            }],
            recursive: false,
        };
        assert_eq!(count_recursive_joins(&stratum), 0);
        assert!(is_linear_recursive(&stratum));
        assert_eq!(StratumAnalysis::analyze(&stratum).total_joins, 1);
    }
}
