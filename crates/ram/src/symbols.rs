//! String interning for symbolic constants.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

#[derive(Debug, Default)]
struct Inner {
    by_name: HashMap<Arc<str>, u32>,
    by_id: Vec<Arc<str>>,
}

/// A shared, append-only table interning strings to dense `u32` ids.
///
/// Symbols appear in relation columns of type [`crate::ValueType::Symbol`]
/// (e.g. kinship relation names in the CLUTRR benchmark or alarm kinds in the
/// static-analysis benchmark). The table is cheaply cloneable and clones share
/// state, so a front-end, runtime, and result decoder can all hold handles to
/// one table.
///
/// Strings are stored as `Arc<str>` shared between the name→id map and the
/// id→name vector, so [`SymbolTable::resolve`] hands out a reference-counted
/// handle instead of allocating a fresh `String` per decoded tuple.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    inner: Arc<RwLock<Inner>>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared symbol table.
    ///
    /// Every compiled program interns through this table, so pooled
    /// sessions, incremental delta sessions, and TCP connections all agree
    /// on symbol ids without re-interning, and cached outputs stay stable
    /// across session recycling. Ids are dense and append-only for the
    /// lifetime of the process; per-database *dictionaries* (see
    /// [`crate::SymbolDict`]) re-densify the subset a given run actually
    /// touches.
    pub fn global() -> SymbolTable {
        static GLOBAL: OnceLock<SymbolTable> = OnceLock::new();
        GLOBAL.get_or_init(SymbolTable::new).clone()
    }

    /// Interns `name`, returning its id (existing id if already interned).
    pub fn intern(&self, name: &str) -> u32 {
        {
            let inner = self.inner.read().expect("symbol table poisoned");
            if let Some(&id) = inner.by_name.get(name) {
                return id;
            }
        }
        let mut inner = self.inner.write().expect("symbol table poisoned");
        if let Some(&id) = inner.by_name.get(name) {
            return id;
        }
        let id = inner.by_id.len() as u32;
        let name: Arc<str> = Arc::from(name);
        inner.by_id.push(Arc::clone(&name));
        inner.by_name.insert(name, id);
        id
    }

    /// Looks up an already interned symbol without interning it.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .by_name
            .get(name)
            .copied()
    }

    /// Resolves an id back to its string, if known. The returned handle
    /// shares the table's storage — no per-call allocation.
    pub fn resolve(&self, id: u32) -> Option<Arc<str>> {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .by_id
            .get(id as usize)
            .cloned()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .by_id
            .len()
    }

    /// `true` when no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let t = SymbolTable::new();
        let a = t.intern("mother");
        let b = t.intern("father");
        assert_ne!(a, b);
        assert_eq!(t.intern("mother"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_and_lookup() {
        let t = SymbolTable::new();
        let a = t.intern("alarm");
        assert_eq!(t.resolve(a).as_deref(), Some("alarm"));
        assert_eq!(t.lookup("alarm"), Some(a));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.resolve(99), None);
    }

    #[test]
    fn clones_share_state() {
        let t = SymbolTable::new();
        let clone = t.clone();
        let id = t.intern("shared");
        assert_eq!(clone.resolve(id).as_deref(), Some("shared"));
        assert!(!clone.is_empty());
    }

    #[test]
    fn resolve_shares_storage_without_allocating() {
        let t = SymbolTable::new();
        let id = t.intern("aunt");
        let a = t.resolve(id).unwrap();
        let b = t.resolve(id).unwrap();
        // Both handles point at the same allocation.
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn global_table_is_one_instance() {
        let a = SymbolTable::global();
        let b = SymbolTable::global();
        let id = a.intern("lobster-global-test-symbol");
        assert_eq!(b.resolve(id).as_deref(), Some("lobster-global-test-symbol"));
    }

    /// Many threads interning overlapping name sets must converge on one id
    /// per name, dense ids, and consistent resolution — the contract pooled
    /// sessions and TCP connections rely on when they share one table.
    #[test]
    fn concurrent_interning_agrees_across_threads() {
        const THREADS: usize = 8;
        const NAMES: usize = 200;
        let table = SymbolTable::new();
        let barrier = std::sync::Barrier::new(THREADS);
        let ids: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let table = table.clone();
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        // Each thread walks the shared name set from a
                        // different offset so first-intern races cover every
                        // name, then records the id it observed.
                        (0..NAMES)
                            .map(|i| table.intern(&format!("sym-{}", (i + t * 37) % NAMES)))
                            .collect::<Vec<u32>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one id per distinct name, and every id is in 0..NAMES.
        assert_eq!(table.len(), NAMES);
        for (t, thread_ids) in ids.iter().enumerate() {
            for (i, &id) in thread_ids.iter().enumerate() {
                let name = format!("sym-{}", (i + t * 37) % NAMES);
                assert!((id as usize) < NAMES, "non-dense id {id}");
                assert_eq!(table.lookup(&name), Some(id), "thread {t} saw a stale id");
                assert_eq!(table.resolve(id).as_deref(), Some(name.as_str()));
            }
        }
    }
}
