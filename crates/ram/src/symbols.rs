//! String interning for symbolic constants.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

#[derive(Debug, Default)]
struct Inner {
    by_name: HashMap<String, u32>,
    by_id: Vec<String>,
}

/// A shared, append-only table interning strings to dense `u32` ids.
///
/// Symbols appear in relation columns of type [`crate::ValueType::Symbol`]
/// (e.g. kinship relation names in the CLUTRR benchmark or alarm kinds in the
/// static-analysis benchmark). The table is cheaply cloneable and clones share
/// state, so a front-end, runtime, and result decoder can all hold handles to
/// one table.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    inner: Arc<RwLock<Inner>>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing id if already interned).
    pub fn intern(&self, name: &str) -> u32 {
        {
            let inner = self.inner.read().expect("symbol table poisoned");
            if let Some(&id) = inner.by_name.get(name) {
                return id;
            }
        }
        let mut inner = self.inner.write().expect("symbol table poisoned");
        if let Some(&id) = inner.by_name.get(name) {
            return id;
        }
        let id = inner.by_id.len() as u32;
        inner.by_id.push(name.to_string());
        inner.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an already interned symbol without interning it.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .by_name
            .get(name)
            .copied()
    }

    /// Resolves an id back to its string, if known.
    pub fn resolve(&self, id: u32) -> Option<String> {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .by_id
            .get(id as usize)
            .cloned()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .by_id
            .len()
    }

    /// `true` when no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let t = SymbolTable::new();
        let a = t.intern("mother");
        let b = t.intern("father");
        assert_ne!(a, b);
        assert_eq!(t.intern("mother"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_and_lookup() {
        let t = SymbolTable::new();
        let a = t.intern("alarm");
        assert_eq!(t.resolve(a).as_deref(), Some("alarm"));
        assert_eq!(t.lookup("alarm"), Some(a));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.resolve(99), None);
    }

    #[test]
    fn clones_share_state() {
        let t = SymbolTable::new();
        let clone = t.clone();
        let id = t.intern("shared");
        assert_eq!(clone.resolve(id).as_deref(), Some("shared"));
        assert!(!clone.is_empty());
    }
}
