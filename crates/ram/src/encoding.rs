//! Narrow, dictionary-encoded columnar layouts.
//!
//! Every cell travels the kernels as a full 64-bit word, but most logical
//! types need far fewer bytes: booleans one, `u32`s four, and interned
//! symbols only as many as the number of *distinct* symbols a database
//! actually touches. This module defines the two pieces that let storage
//! exploit that:
//!
//! * [`SymbolDict`] — an **order-preserving** per-database dictionary
//!   mapping the process-global symbol ids that appear in a run down to a
//!   dense range `0..n`. Local ids are the *rank* of the global id in the
//!   sorted used-set, so `local(a) < local(b) ⇔ a < b`: sorting, merging,
//!   deduplicating, and comparing encoded columns produces exactly the same
//!   row order as the full-width path, which is what keeps encoded
//!   execution bit-identical.
//! * [`RelationLayout`] — a packing of a relation's logical columns into
//!   ≤ 8-byte *groups*, each stored as one physical `u64` column. Column 0
//!   of a group occupies the most-significant lane, so comparing packed
//!   words as plain `u64`s is the same as comparing the underlying columns
//!   left-to-right — the kernels need no layout knowledge at all, they just
//!   see fewer columns with fewer significant bytes.

use crate::ValueType;

/// An order-preserving dictionary over process-global symbol ids.
///
/// Built from the set of global ids a database touches (fact values plus
/// program constants); the local id of a global id is its rank in the sorted
/// set. Extending the dictionary with new ids shifts ranks *monotonically*
/// (see [`SymbolDict::extend`]), so already-sorted encoded tables stay
/// sorted after remapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolDict {
    /// Sorted global ids; the local id of `globals[i]` is `i`.
    globals: Vec<u32>,
}

impl SymbolDict {
    /// Builds a dictionary from an arbitrary collection of global ids
    /// (duplicates are fine).
    pub fn from_globals(mut globals: Vec<u32>) -> Self {
        globals.sort_unstable();
        globals.dedup();
        SymbolDict { globals }
    }

    /// Number of distinct symbols in the dictionary.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// `true` when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// The local id (rank) of a global id, if present.
    pub fn local(&self, global: u32) -> Option<u32> {
        self.globals.binary_search(&global).ok().map(|i| i as u32)
    }

    /// The global id behind a local id, if in range.
    pub fn global(&self, local: u32) -> Option<u32> {
        self.globals.get(local as usize).copied()
    }

    /// `true` when every id in `globals` is already present.
    pub fn covers(&self, globals: impl IntoIterator<Item = u32>) -> bool {
        globals.into_iter().all(|g| self.local(g).is_some())
    }

    /// The physical width in bytes of a local id: the smallest of {1, 2, 4}
    /// that fits every rank.
    pub fn width_bytes(&self) -> usize {
        if self.globals.len() <= 1 << 8 {
            1
        } else if self.globals.len() <= 1 << 16 {
            2
        } else {
            4
        }
    }

    /// Extends the dictionary with additional global ids, returning the new
    /// dictionary plus the monotone remap table `old local id → new local
    /// id`. Monotonicity (ranks only shift upward, preserving relative
    /// order) is what lets callers remap sorted encoded columns in place
    /// without re-sorting.
    pub fn extend(&self, new_globals: impl IntoIterator<Item = u32>) -> (SymbolDict, Vec<u32>) {
        let mut globals = self.globals.clone();
        globals.extend(new_globals);
        let extended = SymbolDict::from_globals(globals);
        let remap = self
            .globals
            .iter()
            .map(|g| extended.local(*g).expect("extension keeps old ids"))
            .collect();
        (extended, remap)
    }

    /// The sorted global ids (local id = position).
    pub fn globals(&self) -> &[u32] {
        &self.globals
    }
}

/// One lane of a packed group: a logical column's position inside the
/// group's `u64` word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane {
    /// The logical column this lane stores.
    pub column: usize,
    /// Bit offset of the lane's least-significant bit within the word.
    pub shift: u32,
    /// Lane width in bytes (1, 2, 4, or 8).
    pub bytes: usize,
    /// Whether the lane holds dictionary-encoded symbol ids.
    pub symbol: bool,
}

impl Lane {
    /// The lane's value mask (before shifting).
    pub fn mask(&self) -> u64 {
        if self.bytes >= 8 {
            u64::MAX
        } else {
            (1u64 << (self.bytes * 8)) - 1
        }
    }
}

/// One packed group: the lanes sharing one physical `u64` column, first
/// lane most significant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Group {
    /// The lanes, in logical column order (descending shift).
    pub lanes: Vec<Lane>,
}

impl Group {
    /// Packs the given logical cell values (one per lane, in lane order)
    /// into the group's word.
    pub fn pack(&self, values: &[u64]) -> u64 {
        debug_assert_eq!(values.len(), self.lanes.len());
        let mut word = 0u64;
        for (lane, v) in self.lanes.iter().zip(values) {
            debug_assert_eq!(v & !lane.mask(), 0, "value exceeds lane width");
            word |= (v & lane.mask()) << lane.shift;
        }
        word
    }

    /// Extracts one lane's value from the group's word.
    pub fn unpack(&self, word: u64, lane: usize) -> u64 {
        let lane = &self.lanes[lane];
        (word >> lane.shift) & lane.mask()
    }

    /// Total bytes occupied by the group's lanes.
    pub fn used_bytes(&self) -> usize {
        self.lanes.iter().map(|l| l.bytes).sum()
    }
}

/// The physical layout of one relation: its logical columns packed into
/// `u64` groups, in order.
///
/// The packing is greedy and **order-preserving**: columns are taken left to
/// right, each group accumulates columns until the next would exceed 8
/// bytes, and within a group the first column occupies the most-significant
/// lane. Comparing rows group-word by group-word therefore equals comparing
/// them column by column, so sorted packed tables are sorted in exactly the
/// original row order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelationLayout {
    /// The groups, in order; each is one physical column.
    pub groups: Vec<Group>,
    /// The logical arity (number of unpacked columns).
    pub arity: usize,
}

impl RelationLayout {
    /// Plans the layout for a column type list, narrowing `Symbol` columns
    /// to `sym_bytes` (the dictionary width) and `U32` columns to
    /// `u32_bytes`.
    ///
    /// `u32_bytes` is 4 normally, but callers must pass 8 when the program
    /// performs arithmetic at `u32` operand type: the expression machine
    /// computes `u32` arithmetic at full word width without masking, so the
    /// full-width path can legitimately store >32-bit words in a `u32`
    /// column — narrowing those would change dedup/join behavior and break
    /// bit-identity with the unencoded path.
    pub fn plan(types: &[ValueType], sym_bytes: usize, u32_bytes: usize) -> RelationLayout {
        let mut groups: Vec<Group> = Vec::new();
        let mut current: Vec<(usize, usize, bool)> = Vec::new(); // (column, bytes, symbol)
        let mut used = 0usize;
        let flush = |current: &mut Vec<(usize, usize, bool)>, groups: &mut Vec<Group>| {
            if current.is_empty() {
                return;
            }
            let total: usize = current.iter().map(|(_, b, _)| b).sum();
            let mut remaining = total;
            let lanes = current
                .drain(..)
                .map(|(column, bytes, symbol)| {
                    remaining -= bytes;
                    Lane {
                        column,
                        shift: (remaining * 8) as u32,
                        bytes,
                        symbol,
                    }
                })
                .collect();
            groups.push(Group { lanes });
        };
        for (column, ty) in types.iter().enumerate() {
            let symbol = *ty == ValueType::Symbol;
            let bytes = match ty {
                ValueType::Symbol => sym_bytes,
                ValueType::U32 => u32_bytes,
                _ => ty.physical_width(),
            };
            if used + bytes > 8 {
                flush(&mut current, &mut groups);
                used = 0;
            }
            current.push((column, bytes, symbol));
            used += bytes;
        }
        flush(&mut current, &mut groups);
        RelationLayout {
            groups,
            arity: types.len(),
        }
    }

    /// Number of physical columns after packing.
    pub fn packed_arity(&self) -> usize {
        self.groups.len()
    }

    /// `true` when packing is the identity (every group holds exactly one
    /// full-width lane) — callers can skip the pack/unpack kernels.
    pub fn is_identity(&self) -> bool {
        self.groups
            .iter()
            .all(|g| g.lanes.len() == 1 && g.lanes[0].bytes == 8)
    }

    /// `true` when any lane stores dictionary-encoded symbols.
    pub fn has_symbols(&self) -> bool {
        self.groups.iter().any(|g| g.lanes.iter().any(|l| l.symbol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_ranks_preserve_order() {
        let dict = SymbolDict::from_globals(vec![42, 7, 19, 7]);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.local(7), Some(0));
        assert_eq!(dict.local(19), Some(1));
        assert_eq!(dict.local(42), Some(2));
        assert_eq!(dict.local(8), None);
        assert_eq!(dict.global(1), Some(19));
        assert_eq!(dict.global(9), None);
        assert!(dict.covers([7, 42]));
        assert!(!dict.covers([7, 8]));
    }

    #[test]
    fn dict_width_tracks_cardinality() {
        assert_eq!(SymbolDict::default().width_bytes(), 1);
        assert_eq!(
            SymbolDict::from_globals((0..256).collect()).width_bytes(),
            1
        );
        assert_eq!(
            SymbolDict::from_globals((0..257).collect()).width_bytes(),
            2
        );
        assert_eq!(
            SymbolDict::from_globals((0..65_536).collect()).width_bytes(),
            2
        );
        // Width depends on cardinality, not on the magnitude of global ids.
        assert_eq!(
            SymbolDict::from_globals((0..70_000).collect()).width_bytes(),
            4
        );
        assert_eq!(
            SymbolDict::from_globals((0..100).map(|i| i * 1_000_000).collect()).width_bytes(),
            1
        );
    }

    #[test]
    fn dict_extension_is_monotone() {
        let dict = SymbolDict::from_globals(vec![10, 20, 30]);
        let (extended, remap) = dict.extend([5, 25, 20]);
        assert_eq!(extended.globals(), &[5, 10, 20, 25, 30]);
        // Old locals 0,1,2 (for 10,20,30) map to 1,2,4 — strictly increasing.
        assert_eq!(remap, vec![1, 2, 4]);
        assert!(remap.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn layout_packs_greedily_and_preserves_order() {
        // u32, u32 → one group with lanes at shifts 32 and 0.
        let layout = RelationLayout::plan(&[ValueType::U32, ValueType::U32], 4, 4);
        assert_eq!(layout.packed_arity(), 1);
        let g = &layout.groups[0];
        assert_eq!(g.lanes[0].shift, 32);
        assert_eq!(g.lanes[1].shift, 0);
        // Packed comparison == column-lexicographic comparison.
        let a = g.pack(&[1, 9]);
        let b = g.pack(&[2, 0]);
        assert!(a < b);
        assert_eq!(g.unpack(a, 0), 1);
        assert_eq!(g.unpack(a, 1), 9);
    }

    #[test]
    fn layout_splits_when_full() {
        // i64 takes the whole word; u32+bool+sym(1) fit the next one.
        let layout = RelationLayout::plan(
            &[
                ValueType::I64,
                ValueType::U32,
                ValueType::Bool,
                ValueType::Symbol,
            ],
            1,
            4,
        );
        assert_eq!(layout.packed_arity(), 2);
        assert_eq!(layout.groups[0].lanes.len(), 1);
        assert_eq!(layout.groups[0].lanes[0].bytes, 8);
        assert_eq!(layout.groups[1].lanes.len(), 3);
        assert_eq!(layout.groups[1].used_bytes(), 6);
        assert!(layout.has_symbols());
        assert!(!layout.is_identity());
    }

    #[test]
    fn full_width_layout_is_identity() {
        let layout = RelationLayout::plan(&[ValueType::F64, ValueType::I64], 4, 4);
        assert_eq!(layout.packed_arity(), 2);
        assert!(layout.is_identity());
        assert!(!layout.has_symbols());
    }

    #[test]
    fn empty_schema_packs_to_nothing() {
        let layout = RelationLayout::plan(&[], 4, 4);
        assert_eq!(layout.packed_arity(), 0);
        assert!(layout.is_identity());
    }
}
