//! Scalar expressions and the bytecode stack machine that evaluates them.
//!
//! Projection and selection functions in RAM are arbitrary expressions over
//! the columns of a row. Following Section 5.2 of the paper, expressions that
//! merely permute or subset columns take a fast path of columnar copies,
//! while expressions containing arithmetic or comparisons are compiled to a
//! small bytecode program executed by each device thread against one row with
//! a fixed-size stack.

use crate::{Value, ValueType};

/// Binary operators usable in projection / selection expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division by zero yields 0).
    Div,
    /// Remainder (by zero yields 0).
    Rem,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinaryOp {
    /// Whether the operator produces a boolean regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

/// Unary operators usable in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

/// A scalar expression over the columns of a row.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// The value of column `i` of the input row.
    Col(usize),
    /// A constant.
    Const(Value),
    /// A binary operation; `ty` is the operand type used for arithmetic and
    /// ordering semantics.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Operand type.
        ty: ValueType,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand type.
        ty: ValueType,
        /// Operand.
        expr: Box<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// Convenience constructor for a typed binary expression.
    pub fn binary(op: BinaryOp, ty: ValueType, lhs: ScalarExpr, rhs: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op,
            ty,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a typed unary expression.
    pub fn unary(op: UnaryOp, ty: ValueType, expr: ScalarExpr) -> Self {
        ScalarExpr::Unary {
            op,
            ty,
            expr: Box::new(expr),
        }
    }

    /// Compiles the expression to bytecode.
    pub fn compile(&self) -> ExprProgram {
        let mut ops = Vec::new();
        self.emit(&mut ops);
        ExprProgram { ops }
    }

    fn emit(&self, ops: &mut Vec<ByteOp>) {
        match self {
            ScalarExpr::Col(i) => ops.push(ByteOp::PushCol(*i)),
            // Symbol constants keep their identity in the bytecode so a
            // dictionary-encoding executor can rewrite them to local ids at
            // run time; they evaluate to the same word as `PushConst` would.
            ScalarExpr::Const(Value::Symbol(id)) => ops.push(ByteOp::PushSymConst(*id)),
            ScalarExpr::Const(v) => ops.push(ByteOp::PushConst(v.encode())),
            ScalarExpr::Binary { op, ty, lhs, rhs } => {
                lhs.emit(ops);
                rhs.emit(ops);
                ops.push(ByteOp::Binary(*op, *ty));
            }
            ScalarExpr::Unary { op, ty, expr } => {
                expr.emit(ops);
                ops.push(ByteOp::Unary(*op, *ty));
            }
        }
    }

    /// If this expression is a bare column reference, returns its index.
    pub fn as_column(&self) -> Option<usize> {
        match self {
            ScalarExpr::Col(i) => Some(*i),
            _ => None,
        }
    }

    /// Collects the global ids of every `Value::Symbol` constant in the
    /// expression tree.
    pub fn symbol_consts(&self, out: &mut Vec<u32>) {
        match self {
            ScalarExpr::Const(Value::Symbol(id)) => out.push(*id),
            ScalarExpr::Col(_) | ScalarExpr::Const(_) => {}
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.symbol_consts(out);
                rhs.symbol_consts(out);
            }
            ScalarExpr::Unary { expr, .. } => expr.symbol_consts(out),
        }
    }

    /// `true` when the expression applies an arithmetic operator (add, sub,
    /// mul, div, rem, or negation) at `Symbol` or `Bool` operand type —
    /// which silently treats interned ids / truth values as machine words.
    pub fn has_symbol_arithmetic(&self) -> bool {
        match self {
            ScalarExpr::Col(_) | ScalarExpr::Const(_) => false,
            ScalarExpr::Binary { op, ty, lhs, rhs } => {
                (is_arithmetic_op(*op) && is_id_type(*ty))
                    || lhs.has_symbol_arithmetic()
                    || rhs.has_symbol_arithmetic()
            }
            ScalarExpr::Unary { op, ty, expr } => {
                (*op == UnaryOp::Neg && is_id_type(*ty)) || expr.has_symbol_arithmetic()
            }
        }
    }

    /// `true` when the expression applies an arithmetic operator at `u32`
    /// operand type (computed at unmasked 64-bit width — see
    /// [`ExprProgram::has_u32_arithmetic`]).
    pub fn has_u32_arithmetic(&self) -> bool {
        match self {
            ScalarExpr::Col(_) | ScalarExpr::Const(_) => false,
            ScalarExpr::Binary { op, ty, lhs, rhs } => {
                (is_arithmetic_op(*op) && *ty == ValueType::U32)
                    || lhs.has_u32_arithmetic()
                    || rhs.has_u32_arithmetic()
            }
            ScalarExpr::Unary { op, ty, expr } => {
                (*op == UnaryOp::Neg && *ty == ValueType::U32) || expr.has_u32_arithmetic()
            }
        }
    }

    /// The largest column index referenced by the expression, if any.
    pub fn max_column(&self) -> Option<usize> {
        match self {
            ScalarExpr::Col(i) => Some(*i),
            ScalarExpr::Const(_) => None,
            ScalarExpr::Binary { lhs, rhs, .. } => match (lhs.max_column(), rhs.max_column()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            ScalarExpr::Unary { expr, .. } => expr.max_column(),
        }
    }
}

/// One bytecode instruction of the expression stack machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ByteOp {
    /// Push the encoded value of input column `i`.
    PushCol(usize),
    /// Push an encoded constant.
    PushConst(u64),
    /// Push a symbol constant by its global interner id. Identical to
    /// `PushConst(id as u64)` under full-width execution; kept distinct so
    /// dictionary-encoded execution can rewrite the id to the database's
    /// local rank ([`RowProjection::map_symbol_consts`]).
    PushSymConst(u32),
    /// Pop two operands, apply a typed binary operator, push the result.
    Binary(BinaryOp, ValueType),
    /// Pop one operand, apply a typed unary operator, push the result.
    Unary(UnaryOp, ValueType),
}

/// A compiled expression: a straight-line bytecode program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExprProgram {
    /// The instructions, executed in order.
    pub ops: Vec<ByteOp>,
}

impl ExprProgram {
    /// Evaluates the program against an encoded row, returning the encoded
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if the program is malformed (stack underflow) — compiled
    /// programs produced by [`ScalarExpr::compile`] are always well formed.
    pub fn eval(&self, row: &[u64]) -> u64 {
        let mut stack: Vec<u64> = Vec::with_capacity(8);
        self.eval_with_stack(row, &mut stack)
    }

    /// [`ExprProgram::eval`] with a caller-provided operand stack, so a hot
    /// loop evaluating many rows reuses one allocation. The stack is cleared
    /// on entry.
    ///
    /// # Panics
    ///
    /// Panics if the program is malformed (stack underflow) — compiled
    /// programs produced by [`ScalarExpr::compile`] are always well formed.
    pub fn eval_with_stack(&self, row: &[u64], stack: &mut Vec<u64>) -> u64 {
        stack.clear();
        for op in &self.ops {
            match op {
                ByteOp::PushCol(i) => stack.push(row[*i]),
                ByteOp::PushConst(c) => stack.push(*c),
                ByteOp::PushSymConst(id) => stack.push(u64::from(*id)),
                ByteOp::Binary(op, ty) => {
                    let b = stack.pop().expect("expression stack underflow");
                    let a = stack.pop().expect("expression stack underflow");
                    stack.push(apply_binary(*op, *ty, a, b));
                }
                ByteOp::Unary(op, ty) => {
                    let a = stack.pop().expect("expression stack underflow");
                    stack.push(apply_unary(*op, *ty, a));
                }
            }
        }
        stack.pop().expect("expression produced no value")
    }

    /// Evaluates the program as a boolean predicate (non-zero = true).
    pub fn eval_bool(&self, row: &[u64]) -> bool {
        self.eval(row) != 0
    }

    /// A copy of the program with every symbol constant replaced by
    /// `f(global id)` — the hook dictionary-encoded execution uses to turn
    /// global interner ids into per-database local ranks. Programs without
    /// symbol constants are returned unchanged (cheap clone of the op list).
    pub fn map_symbol_consts(&self, f: &dyn Fn(u32) -> u64) -> ExprProgram {
        ExprProgram {
            ops: self
                .ops
                .iter()
                .map(|op| match op {
                    ByteOp::PushSymConst(id) => ByteOp::PushConst(f(*id)),
                    other => *other,
                })
                .collect(),
        }
    }

    /// `true` when the program contains a symbol constant.
    pub fn has_symbol_consts(&self) -> bool {
        self.ops
            .iter()
            .any(|op| matches!(op, ByteOp::PushSymConst(_)))
    }

    /// The compiled-bytecode variant of
    /// [`ScalarExpr::has_symbol_arithmetic`].
    pub fn has_symbol_arithmetic(&self) -> bool {
        self.ops.iter().any(|op| match op {
            ByteOp::Binary(op, ty) => is_arithmetic_op(*op) && is_id_type(*ty),
            ByteOp::Unary(UnaryOp::Neg, ty) => is_id_type(*ty),
            _ => false,
        })
    }

    /// The global ids of every symbol constant in the program.
    pub fn symbol_consts(&self, out: &mut Vec<u32>) {
        for op in &self.ops {
            if let ByteOp::PushSymConst(id) = op {
                out.push(*id);
            }
        }
    }

    /// `true` when the program applies an arithmetic operator at `u32`
    /// operand type. Such operations compute at full 64-bit word width
    /// without masking (overflow wraps at 64, not 32, bits), so storage must
    /// not narrow `u32` columns while any rule can feed them arithmetic
    /// results — see `RelationLayout::plan`.
    pub fn has_u32_arithmetic(&self) -> bool {
        self.ops.iter().any(|op| match op {
            ByteOp::Binary(op, ValueType::U32) => is_arithmetic_op(*op),
            ByteOp::Unary(UnaryOp::Neg, ValueType::U32) => true,
            _ => false,
        })
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for the empty program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Operators whose result depends on the numeric magnitude of the operands
/// (as opposed to comparisons, which only need a consistent ordering).
fn is_arithmetic_op(op: BinaryOp) -> bool {
    matches!(
        op,
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem
    )
}

/// Types whose words are identifiers or truth values, not numbers.
fn is_id_type(ty: ValueType) -> bool {
    matches!(ty, ValueType::Symbol | ValueType::Bool)
}

fn apply_binary(op: BinaryOp, ty: ValueType, a: u64, b: u64) -> u64 {
    use BinaryOp::*;
    match ty {
        ValueType::F64 => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            match op {
                Add => (x + y).to_bits(),
                Sub => (x - y).to_bits(),
                Mul => (x * y).to_bits(),
                Div => (x / y).to_bits(),
                Rem => (x % y).to_bits(),
                Eq => u64::from(x == y),
                Ne => u64::from(x != y),
                Lt => u64::from(x < y),
                Le => u64::from(x <= y),
                Gt => u64::from(x > y),
                Ge => u64::from(x >= y),
                And => u64::from(x != 0.0 && y != 0.0),
                Or => u64::from(x != 0.0 || y != 0.0),
            }
        }
        ValueType::I64 => {
            let (x, y) = (a as i64, b as i64);
            match op {
                Add => x.wrapping_add(y) as u64,
                Sub => x.wrapping_sub(y) as u64,
                Mul => x.wrapping_mul(y) as u64,
                Div => x.checked_div(y).unwrap_or(0) as u64,
                Rem => x.checked_rem(y).unwrap_or(0) as u64,
                Eq => u64::from(x == y),
                Ne => u64::from(x != y),
                Lt => u64::from(x < y),
                Le => u64::from(x <= y),
                Gt => u64::from(x > y),
                Ge => u64::from(x >= y),
                And => u64::from(x != 0 && y != 0),
                Or => u64::from(x != 0 || y != 0),
            }
        }
        // U32, Symbol, and Bool all use unsigned word semantics.
        _ => match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => a.checked_div(b).unwrap_or(0),
            Rem => a.checked_rem(b).unwrap_or(0),
            Eq => u64::from(a == b),
            Ne => u64::from(a != b),
            Lt => u64::from(a < b),
            Le => u64::from(a <= b),
            Gt => u64::from(a > b),
            Ge => u64::from(a >= b),
            And => u64::from(a != 0 && b != 0),
            Or => u64::from(a != 0 || b != 0),
        },
    }
}

fn apply_unary(op: UnaryOp, ty: ValueType, a: u64) -> u64 {
    match (op, ty) {
        (UnaryOp::Neg, ValueType::F64) => (-f64::from_bits(a)).to_bits(),
        (UnaryOp::Neg, ValueType::I64) => (a as i64).wrapping_neg() as u64,
        (UnaryOp::Neg, _) => a.wrapping_neg(),
        (UnaryOp::Not, _) => u64::from(a == 0),
    }
}

/// A row-to-row projection: one compiled expression per output column, with a
/// fast path when the projection is a pure column permutation / subset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowProjection {
    /// The compiled expression for each output column.
    pub programs: Vec<ExprProgram>,
    /// When every output column is a bare input column, the list of source
    /// columns (the columnar-copy fast path of Section 5.2).
    pub permutation: Option<Vec<usize>>,
    /// Optional selection predicate applied to the *input* row; rows failing
    /// the predicate produce no output.
    pub filter: Option<ExprProgram>,
}

impl RowProjection {
    /// Builds a projection from output expressions and an optional filter.
    pub fn new(outputs: Vec<ScalarExpr>, filter: Option<ScalarExpr>) -> Self {
        let permutation: Option<Vec<usize>> = if filter.is_none() {
            outputs.iter().map(ScalarExpr::as_column).collect()
        } else {
            None
        };
        RowProjection {
            programs: outputs.iter().map(ScalarExpr::compile).collect(),
            permutation,
            filter: filter.map(|f| f.compile()),
        }
    }

    /// The identity projection over `arity` columns.
    pub fn identity(arity: usize) -> Self {
        RowProjection::new((0..arity).map(ScalarExpr::Col).collect(), None)
    }

    /// Number of output columns.
    pub fn output_arity(&self) -> usize {
        self.programs.len()
    }

    /// Evaluates the projection against an encoded row; `None` when the
    /// filter rejects the row.
    pub fn eval(&self, row: &[u64]) -> Option<Vec<u64>> {
        if let Some(filter) = &self.filter {
            if !filter.eval_bool(row) {
                return None;
            }
        }
        Some(self.programs.iter().map(|p| p.eval(row)).collect())
    }

    /// Allocation-free [`RowProjection::eval`]: writes the output row into
    /// `out` (length must equal [`RowProjection::output_arity`]) reusing the
    /// caller's expression stack, returning `false` when the filter rejects
    /// the row (leaving `out` unspecified).
    pub fn eval_into(&self, row: &[u64], out: &mut [u64], stack: &mut Vec<u64>) -> bool {
        debug_assert_eq!(out.len(), self.output_arity());
        if let Some(filter) = &self.filter {
            if filter.eval_with_stack(row, stack) == 0 {
                return false;
            }
        }
        for (slot, program) in out.iter_mut().zip(&self.programs) {
            *slot = program.eval_with_stack(row, stack);
        }
        true
    }

    /// Whether the projection is a pure column permutation (no arithmetic, no
    /// filter), eligible for the columnar-copy fast path.
    pub fn is_permutation(&self) -> bool {
        self.permutation.is_some()
    }

    /// `true` when any output expression or the filter contains a symbol
    /// constant.
    pub fn has_symbol_consts(&self) -> bool {
        self.programs.iter().any(ExprProgram::has_symbol_consts)
            || self
                .filter
                .as_ref()
                .is_some_and(ExprProgram::has_symbol_consts)
    }

    /// Collects the global ids of every symbol constant in the projection.
    pub fn symbol_consts(&self, out: &mut Vec<u32>) {
        for program in &self.programs {
            program.symbol_consts(out);
        }
        if let Some(filter) = &self.filter {
            filter.symbol_consts(out);
        }
    }

    /// `true` when any output expression or the filter applies arithmetic at
    /// `Symbol` or `Bool` operand type (see
    /// [`ScalarExpr::has_symbol_arithmetic`]).
    pub fn has_symbol_arithmetic(&self) -> bool {
        self.programs.iter().any(ExprProgram::has_symbol_arithmetic)
            || self
                .filter
                .as_ref()
                .is_some_and(ExprProgram::has_symbol_arithmetic)
    }

    /// `true` when any output expression or the filter applies arithmetic at
    /// `u32` operand type (see [`ExprProgram::has_u32_arithmetic`]).
    pub fn has_u32_arithmetic(&self) -> bool {
        self.programs.iter().any(ExprProgram::has_u32_arithmetic)
            || self
                .filter
                .as_ref()
                .is_some_and(ExprProgram::has_u32_arithmetic)
    }

    /// A copy of the projection with every symbol constant rewritten through
    /// `f` (see [`ExprProgram::map_symbol_consts`]).
    pub fn map_symbol_consts(&self, f: &dyn Fn(u32) -> u64) -> RowProjection {
        RowProjection {
            programs: self
                .programs
                .iter()
                .map(|p| p.map_symbol_consts(f))
                .collect(),
            permutation: self.permutation.clone(),
            filter: self.filter.as_ref().map(|p| p.map_symbol_consts(f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_on_u32() {
        let e = ScalarExpr::binary(
            BinaryOp::Add,
            ValueType::U32,
            ScalarExpr::Col(0),
            ScalarExpr::Const(Value::U32(5)),
        );
        assert_eq!(e.compile().eval(&[10]), 15);
    }

    #[test]
    fn arithmetic_on_f64() {
        let e = ScalarExpr::binary(
            BinaryOp::Div,
            ValueType::F64,
            ScalarExpr::Col(0),
            ScalarExpr::Col(1),
        );
        let row = [Value::F64(1.0).encode(), Value::F64(4.0).encode()];
        assert_eq!(f64::from_bits(e.compile().eval(&row)), 0.25);
    }

    #[test]
    fn signed_comparison_respects_sign() {
        let e = ScalarExpr::binary(
            BinaryOp::Lt,
            ValueType::I64,
            ScalarExpr::Const(Value::I64(-5)),
            ScalarExpr::Const(Value::I64(3)),
        );
        assert_eq!(e.compile().eval(&[]), 1);
    }

    #[test]
    fn division_by_zero_is_zero_for_integers() {
        let e = ScalarExpr::binary(
            BinaryOp::Div,
            ValueType::U32,
            ScalarExpr::Const(Value::U32(10)),
            ScalarExpr::Const(Value::U32(0)),
        );
        assert_eq!(e.compile().eval(&[]), 0);
    }

    #[test]
    fn unary_operators() {
        let neg = ScalarExpr::unary(UnaryOp::Neg, ValueType::I64, ScalarExpr::Col(0));
        assert_eq!(neg.compile().eval(&[Value::I64(4).encode()]) as i64, -4);
        let not = ScalarExpr::unary(UnaryOp::Not, ValueType::Bool, ScalarExpr::Col(0));
        assert_eq!(not.compile().eval(&[0]), 1);
        assert_eq!(not.compile().eval(&[1]), 0);
    }

    #[test]
    fn projection_permutation_fast_path() {
        let proj = RowProjection::new(vec![ScalarExpr::Col(2), ScalarExpr::Col(0)], None);
        assert!(proj.is_permutation());
        assert_eq!(proj.permutation, Some(vec![2, 0]));
        assert_eq!(proj.eval(&[10, 20, 30]), Some(vec![30, 10]));
    }

    #[test]
    fn projection_with_filter_rejects_rows() {
        let filter = ScalarExpr::binary(
            BinaryOp::Ne,
            ValueType::U32,
            ScalarExpr::Col(0),
            ScalarExpr::Col(1),
        );
        let proj = RowProjection::new(vec![ScalarExpr::Col(0)], Some(filter));
        assert!(!proj.is_permutation());
        assert_eq!(proj.eval(&[1, 1]), None);
        assert_eq!(proj.eval(&[1, 2]), Some(vec![1]));
    }

    #[test]
    fn identity_projection() {
        let proj = RowProjection::identity(3);
        assert_eq!(proj.output_arity(), 3);
        assert_eq!(proj.eval(&[7, 8, 9]), Some(vec![7, 8, 9]));
    }

    #[test]
    fn symbol_consts_are_typed_and_rewritable() {
        let e = ScalarExpr::binary(
            BinaryOp::Eq,
            ValueType::Symbol,
            ScalarExpr::Col(0),
            ScalarExpr::Const(Value::Symbol(40)),
        );
        let program = e.compile();
        assert!(program.has_symbol_consts());
        let mut ids = Vec::new();
        program.symbol_consts(&mut ids);
        assert_eq!(ids, vec![40]);
        // Untouched, the constant evaluates to its global id.
        assert_eq!(program.eval(&[40]), 1);
        assert_eq!(program.eval(&[41]), 0);
        // Rewritten, it evaluates to whatever the dictionary says.
        let local = program.map_symbol_consts(&|id| u64::from(id) - 37);
        assert!(!local.has_symbol_consts());
        assert_eq!(local.eval(&[3]), 1);
        assert_eq!(local.eval(&[40]), 0);

        let proj = RowProjection::new(vec![ScalarExpr::Col(0)], Some(e));
        assert!(proj.has_symbol_consts());
        let mut ids = Vec::new();
        proj.symbol_consts(&mut ids);
        assert_eq!(ids, vec![40]);
        let mapped = proj.map_symbol_consts(&|_| 7);
        assert_eq!(mapped.eval(&[7]), Some(vec![7]));
        assert_eq!(mapped.eval(&[40]), None);
    }

    #[test]
    fn max_column_tracks_references() {
        let e = ScalarExpr::binary(
            BinaryOp::Add,
            ValueType::U32,
            ScalarExpr::Col(3),
            ScalarExpr::Const(Value::U32(1)),
        );
        assert_eq!(e.max_column(), Some(3));
        assert_eq!(ScalarExpr::Const(Value::U32(1)).max_column(), None);
    }
}
