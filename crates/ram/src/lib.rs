//! The Relational Algebra Machine (RAM): Lobster's mid-level intermediate
//! representation.
//!
//! The Datalog front-end (`lobster-datalog`) compiles a user-level program
//! into a RAM program (Figure 4 of the paper): an ordered list of *strata*,
//! each containing rules of the form `ρ ← ε` where `ε` is a relational
//! algebra expression over project (`π`), select (`σ`), join (`⊲⊳`), union,
//! product, and intersect. The APM back-end (`lobster-apm`) then lowers each
//! stratum to APM instructions for execution on the (simulated) GPU.
//!
//! This crate also defines the data model shared by every layer:
//!
//! * [`Value`] / [`ValueType`] — 64-bit encoded cell values,
//! * [`SymbolTable`] — string interning for symbolic constants,
//! * [`ExprProgram`] — the bytecode stack machine of Section 5.2 used to
//!   evaluate projection and selection expressions row-by-row on the device.
//!
//! # Static analysis
//!
//! The [`passes`] module analyzes a finished [`RamProgram`] and produces
//! facts the compiler, executor, and schedulers consume:
//!
//! * [`passes::validate_program`] — full structural validation (schemas,
//!   arities, column bounds, operand types), reporting *every* error with
//!   rule provenance instead of stopping at the first like
//!   [`RamProgram::validate`];
//! * [`passes::expr_sorted_prefix`] / [`passes::join_strategy`] — sort-order
//!   inference yielding per-join [`passes::JoinStrategy`] hints (merge-path
//!   vs hash build+probe);
//! * [`passes::live_relations`] / [`passes::eliminate_dead_rules`] — output
//!   reachability and dead-rule pruning;
//! * [`passes::CostModel`] — static per-relation weights refining the
//!   fact-count costs used by batch planners;
//! * [`passes::lint_program`] — the combined diagnostics report
//!   ([`passes::Diagnostic`]) surfaced by `Program::diagnostics()` and the
//!   `lobster-lint` tool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod encoding;
mod expr;
pub mod passes;
mod program;
mod symbols;
mod value;

pub use analysis::{count_recursive_joins, is_linear_recursive, StratumAnalysis};
pub use encoding::{Group, Lane, RelationLayout, SymbolDict};
pub use expr::{BinaryOp, ByteOp, ExprProgram, RowProjection, ScalarExpr, UnaryOp};
pub use passes::{Diagnostic, IrError, JoinStrategy, RuleRef, Severity};
pub use program::{RamExpr, RamProgram, RamRule, RelationSchema, Stratum, ValidationError};
pub use symbols::SymbolTable;
pub use value::{Tuple, Value, ValueType};
