//! Static cost model: per-relation and per-stratum weights for schedulers.
//!
//! The sharded batch planner balances samples across shard databases with
//! an LPT heuristic whose item cost was simply the sample's fact count —
//! which treats a fact feeding three recursive joins the same as one that a
//! single non-recursive rule copies through. This pass derives a cheap
//! static weight per relation from the program structure:
//!
//! ```text
//! weight(R) = 1 + joins(R) + 2 × recursive_refs(R)
//! ```
//!
//! where `joins(R)` counts the join operands referencing `R` across all
//! rules, and `recursive_refs(R)` counts references to `R` from rules of
//! recursive strata (facts feeding a fix point are amortised over every
//! iteration). The weights are intentionally coarse — they refine relative
//! ordering between samples, not absolute time — and they are computed once
//! per compiled program, so the planner's hot path only does map lookups.

use crate::analysis::StratumAnalysis;
use crate::{RamExpr, RamProgram};
use std::collections::BTreeMap;

/// Static cost summary of one stratum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratumCost {
    /// Relations the stratum updates.
    pub relations: Vec<String>,
    /// Number of rules (before semi-naive variant expansion).
    pub rules: usize,
    /// Total join sites across the stratum's rules.
    pub joins: usize,
    /// Join sites with at least one recursive input.
    pub recursive_joins: usize,
    /// Join sites where sort-order inference proves both inputs sorted on
    /// the key prefix (merge-path candidates).
    pub merge_eligible_joins: usize,
    /// Whether the stratum iterates to a fix point.
    pub recursive: bool,
    /// Widest relation arity touched by the stratum.
    pub max_arity: usize,
}

impl StratumCost {
    /// A scalar score for comparing strata: rules plus join sites, with
    /// recursive joins double-weighted (they re-run every iteration).
    pub fn score(&self) -> u64 {
        (self.rules + self.joins + 2 * self.recursive_joins) as u64
    }
}

/// Program-level cost facts: per-relation weights and per-stratum
/// summaries.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    relation_weights: BTreeMap<String, u64>,
    /// One summary per stratum, in evaluation order.
    pub strata: Vec<StratumCost>,
}

impl CostModel {
    /// Computes the model for a program.
    pub fn analyze(ram: &RamProgram) -> Self {
        let mut joins: BTreeMap<&str, u64> = BTreeMap::new();
        let mut recursive_refs: BTreeMap<&str, u64> = BTreeMap::new();
        let mut strata = Vec::with_capacity(ram.strata.len());
        for stratum in &ram.strata {
            let analysis = StratumAnalysis::analyze(stratum);
            let mut max_arity = 0;
            for rule in &stratum.rules {
                let mut referenced = Vec::new();
                rule.expr.referenced_relations(&mut referenced);
                for name in referenced {
                    if let Some(arity) = ram.arity(&name) {
                        max_arity = max_arity.max(arity);
                    }
                    if stratum.recursive {
                        if let Some((key, _)) = ram.schemas.get_key_value(&name) {
                            *recursive_refs.entry(key).or_insert(0) += 1;
                        }
                    }
                }
                count_join_operands(&rule.expr, ram, &mut joins);
                if let Some(arity) = ram.arity(&rule.target) {
                    max_arity = max_arity.max(arity);
                }
            }
            strata.push(StratumCost {
                relations: stratum.relations.clone(),
                rules: stratum.rules.len(),
                joins: analysis.total_joins,
                recursive_joins: analysis.recursive_joins,
                merge_eligible_joins: super::merge_eligible_joins(stratum, ram),
                recursive: stratum.recursive,
                max_arity,
            });
        }
        let relation_weights = ram
            .schemas
            .keys()
            .map(|name| {
                let weight = 1
                    + joins.get(name.as_str()).copied().unwrap_or(0)
                    + 2 * recursive_refs.get(name.as_str()).copied().unwrap_or(0);
                (name.clone(), weight)
            })
            .collect();
        Self {
            relation_weights,
            strata,
        }
    }

    /// The weight of one fact of `relation`; unknown relations weigh 1.
    pub fn relation_weight(&self, relation: &str) -> u64 {
        self.relation_weights.get(relation).copied().unwrap_or(1)
    }

    /// The full weight table, for consumers that snapshot it.
    pub fn relation_weights(&self) -> &BTreeMap<String, u64> {
        &self.relation_weights
    }
}

/// Adds one join participation per join operand referencing each relation.
fn count_join_operands<'a>(
    expr: &RamExpr,
    ram: &'a RamProgram,
    joins: &mut BTreeMap<&'a str, u64>,
) {
    expr.visit(&mut |node| {
        if let RamExpr::Join { left, right, .. } = node {
            for side in [left, right] {
                let mut referenced = Vec::new();
                side.referenced_relations(&mut referenced);
                for name in referenced {
                    if let Some((key, _)) = ram.schemas.get_key_value(&name) {
                        *joins.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RamRule, RelationSchema, Stratum, ValueType};

    /// Transitive closure: `path = edge; path = path ⋈ edge` (recursive).
    fn tc_program() -> RamProgram {
        let mut schemas = BTreeMap::new();
        for name in ["edge", "path"] {
            schemas.insert(
                name.to_string(),
                RelationSchema::new(name, vec![ValueType::U32, ValueType::U32]),
            );
        }
        RamProgram {
            schemas,
            strata: vec![Stratum {
                relations: vec!["path".into()],
                rules: vec![
                    RamRule {
                        target: "path".into(),
                        expr: RamExpr::relation("edge"),
                    },
                    RamRule {
                        target: "path".into(),
                        expr: RamExpr::relation("path").join(RamExpr::relation("edge"), 1),
                    },
                ],
                recursive: true,
            }],
            outputs: vec!["path".into()],
        }
    }

    #[test]
    fn recursive_references_dominate_weights() {
        let model = CostModel::analyze(&tc_program());
        // edge: 1 base + 1 join operand + 2×2 recursive refs (both rules).
        assert_eq!(model.relation_weight("edge"), 6);
        // path: 1 base + 1 join operand + 2×1 recursive ref.
        assert_eq!(model.relation_weight("path"), 4);
        assert_eq!(model.relation_weight("unknown"), 1);
    }

    #[test]
    fn stratum_cost_summarises_structure() {
        let model = CostModel::analyze(&tc_program());
        assert_eq!(model.strata.len(), 1);
        let cost = &model.strata[0];
        assert_eq!(cost.rules, 2);
        assert_eq!(cost.joins, 1);
        assert_eq!(cost.recursive_joins, 1);
        assert!(cost.recursive);
        assert_eq!(cost.max_arity, 2);
        assert_eq!(cost.score(), 2 + 1 + 2);
    }

    #[test]
    fn weights_are_stable_over_identical_programs() {
        let a = CostModel::analyze(&tc_program());
        let b = CostModel::analyze(&tc_program());
        assert_eq!(a.relation_weights(), b.relation_weights());
    }
}
