//! Sort-order inference: which column prefixes of an expression's result
//! arrive lexicographically sorted.
//!
//! Every relation partition is stored as a sorted table (sorted
//! lexicographically by row, deduplicated). The executor's loads therefore
//! produce sorted columns whenever they read a single partition — and, for
//! relations the running stratum does not update, even the combined "all"
//! partition (its recent half is empty once the defining stratum reached its
//! fix point). This pass propagates that invariant through the expression
//! operators:
//!
//! * **project** keeps the longest output prefix that is an identity prefix
//!   of the input (output column `i` reads input column `i`), capped by the
//!   input's sorted prefix; filters drop rows but never reorder them;
//! * **select** preserves the input's sorted prefix unchanged;
//! * **join / union / product / intersect** outputs are conservatively
//!   unsorted (a join interleaves probe-major, a union concatenates).
//!
//! A join site where *both* inputs are sorted on at least the key width can
//! skip the hash build+probe entirely: the matches of each probe row are one
//! contiguous run of the sorted build side, found by binary search. The
//! [`JoinStrategy`] hint records that decision; the APM compiler consults it
//! per semi-naive variant (the same leaf loads different partitions in
//! different variants, so the strategy is a per-variant fact).

use crate::{ByteOp, ExprProgram, RamExpr, RamProgram, RowProjection, Stratum};
use std::collections::BTreeSet;

/// How a join site should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Build a hash index over the build side, probe per row.
    Hash,
    /// Both sides sorted on the key prefix: binary-search the sorted build
    /// side per probe row, no index at all.
    Merge,
}

/// Picks the strategy for a join on `width` key columns whose inputs are
/// sorted on `left_prefix` / `right_prefix` columns. A zero-width join is a
/// cartesian product in disguise and never merges.
pub fn join_strategy(left_prefix: usize, right_prefix: usize, width: usize) -> JoinStrategy {
    if width > 0 && left_prefix >= width && right_prefix >= width {
        JoinStrategy::Merge
    } else {
        JoinStrategy::Hash
    }
}

/// The sorted prefix that survives a projection applied to an input sorted
/// on its first `input_prefix` columns: the longest run of output columns
/// that read the same-numbered input column, capped by `input_prefix`.
/// (Filters reject rows but preserve order, so they don't cap anything.)
pub fn projection_sorted_prefix(proj: &RowProjection, input_prefix: usize) -> usize {
    let mut prefix = 0;
    for (out_col, program) in proj.programs.iter().enumerate() {
        if program_as_column(program) == Some(out_col) && out_col < input_prefix {
            prefix += 1;
        } else {
            break;
        }
    }
    prefix
}

/// If a compiled column program is a bare column read, returns its index.
fn program_as_column(program: &ExprProgram) -> Option<usize> {
    match program.ops.as_slice() {
        [ByteOp::PushCol(i)] => Some(*i),
        _ => None,
    }
}

/// The sorted prefix of an expression's result, given the sorted prefix of
/// each `Relation` leaf. `leaf_sorted` is called once per leaf in traversal
/// order (left before right), which lets the APM compiler replay its
/// semi-naive partition assignment exactly.
pub fn expr_sorted_prefix(expr: &RamExpr, leaf_sorted: &mut impl FnMut(&str) -> usize) -> usize {
    match expr {
        RamExpr::Relation(name) => leaf_sorted(name),
        RamExpr::Project { input, proj } => {
            let input_prefix = expr_sorted_prefix(input, leaf_sorted);
            projection_sorted_prefix(proj, input_prefix)
        }
        RamExpr::Select { input, .. } => expr_sorted_prefix(input, leaf_sorted),
        RamExpr::Join { left, right, .. }
        | RamExpr::Union(left, right)
        | RamExpr::Product(left, right)
        | RamExpr::Intersect(left, right) => {
            // Both sides must still be visited so the caller's leaf cursor
            // stays aligned with traversal order.
            expr_sorted_prefix(left, leaf_sorted);
            expr_sorted_prefix(right, leaf_sorted);
            0
        }
    }
}

/// Conservative whole-stratum count of merge-eligible join sites: a leaf is
/// taken as fully sorted when its relation is *not* updated by the stratum
/// (such loads read a table whose recent half is empty), and unsorted when
/// it is (the semi-naive `all` partition interleaves two sorted halves).
/// The compiler's per-variant decision can only find *more* merge sites
/// than this (single-partition loads of own relations are sorted too).
pub fn merge_eligible_joins(stratum: &Stratum, ram: &RamProgram) -> usize {
    let own: BTreeSet<&str> = stratum.relations.iter().map(String::as_str).collect();
    let mut eligible = 0;
    for rule in &stratum.rules {
        count_in_expr(&rule.expr, ram, &own, &mut eligible);
    }
    eligible
}

/// Walks an expression, counting joins whose two sides are sorted on at
/// least the key width under the conservative leaf rule.
fn count_in_expr(
    expr: &RamExpr,
    ram: &RamProgram,
    own: &BTreeSet<&str>,
    eligible: &mut usize,
) -> usize {
    let mut leaf = |name: &str| {
        if own.contains(name) {
            0
        } else {
            ram.arity(name).unwrap_or(0)
        }
    };
    match expr {
        RamExpr::Relation(_) | RamExpr::Select { .. } | RamExpr::Project { .. } => {
            // Leaves and unary operators: delegate to the pure computation
            // (joins can only nest beneath them through their input).
            match expr {
                RamExpr::Project { input, .. } | RamExpr::Select { input, .. } => {
                    count_in_expr(input, ram, own, eligible);
                }
                _ => {}
            }
            expr_sorted_prefix(expr, &mut leaf)
        }
        RamExpr::Join { left, right, width } => {
            let l = count_in_expr(left, ram, own, eligible);
            let r = count_in_expr(right, ram, own, eligible);
            if join_strategy(l, r, *width) == JoinStrategy::Merge {
                *eligible += 1;
            }
            0
        }
        RamExpr::Union(left, right)
        | RamExpr::Product(left, right)
        | RamExpr::Intersect(left, right) => {
            count_in_expr(left, ram, own, eligible);
            count_in_expr(right, ram, own, eligible);
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RamRule, RelationSchema, ScalarExpr, ValueType};
    use std::collections::BTreeMap;

    fn two_col_program() -> RamProgram {
        let mut schemas = BTreeMap::new();
        for name in ["a", "b", "out"] {
            schemas.insert(
                name.to_string(),
                RelationSchema::new(name, vec![ValueType::U32, ValueType::U32]),
            );
        }
        RamProgram {
            schemas,
            strata: Vec::new(),
            outputs: vec!["out".into()],
        }
    }

    #[test]
    fn identity_prefix_survives_projection() {
        // (0, 1) → keeps both; (0, arithmetic) → keeps one; (1, 0) → none.
        let keep_both = RowProjection::new(vec![ScalarExpr::Col(0), ScalarExpr::Col(1)], None);
        assert_eq!(projection_sorted_prefix(&keep_both, 2), 2);
        let compute = RowProjection::new(
            vec![
                ScalarExpr::Col(0),
                ScalarExpr::binary(
                    crate::BinaryOp::Add,
                    ValueType::U32,
                    ScalarExpr::Col(1),
                    ScalarExpr::Col(0),
                ),
            ],
            None,
        );
        assert_eq!(projection_sorted_prefix(&compute, 2), 1);
        let swap = RowProjection::new(vec![ScalarExpr::Col(1), ScalarExpr::Col(0)], None);
        assert_eq!(projection_sorted_prefix(&swap, 2), 0);
    }

    #[test]
    fn input_prefix_caps_projection_prefix() {
        let keep_both = RowProjection::new(vec![ScalarExpr::Col(0), ScalarExpr::Col(1)], None);
        assert_eq!(projection_sorted_prefix(&keep_both, 1), 1);
        assert_eq!(projection_sorted_prefix(&keep_both, 0), 0);
    }

    #[test]
    fn filtered_identity_projection_keeps_order() {
        // A filter forces `permutation: None`, but the per-column programs
        // are still bare column reads — order is preserved, rows are only
        // dropped.
        let filtered = RowProjection::new(
            vec![ScalarExpr::Col(0), ScalarExpr::Col(1)],
            Some(ScalarExpr::binary(
                crate::BinaryOp::Ne,
                ValueType::U32,
                ScalarExpr::Col(0),
                ScalarExpr::Col(1),
            )),
        );
        assert!(!filtered.is_permutation());
        assert_eq!(projection_sorted_prefix(&filtered, 2), 2);
    }

    #[test]
    fn select_preserves_and_join_destroys_sortedness() {
        let select = RamExpr::relation("a").select(ScalarExpr::binary(
            crate::BinaryOp::Ne,
            ValueType::U32,
            ScalarExpr::Col(0),
            ScalarExpr::Col(1),
        ));
        assert_eq!(expr_sorted_prefix(&select, &mut |_| 2), 2);
        let join = RamExpr::relation("a").join(RamExpr::relation("b"), 1);
        assert_eq!(expr_sorted_prefix(&join, &mut |_| 2), 0);
    }

    #[test]
    fn leaf_cursor_visits_leaves_in_traversal_order() {
        let expr = RamExpr::relation("a").join(RamExpr::relation("b"), 1);
        let mut seen = Vec::new();
        expr_sorted_prefix(&expr, &mut |name| {
            seen.push(name.to_string());
            0
        });
        assert_eq!(seen, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn join_strategy_requires_both_sides_and_nonzero_width() {
        assert_eq!(join_strategy(2, 2, 1), JoinStrategy::Merge);
        assert_eq!(join_strategy(1, 2, 2), JoinStrategy::Hash);
        assert_eq!(join_strategy(2, 0, 1), JoinStrategy::Hash);
        assert_eq!(join_strategy(2, 2, 0), JoinStrategy::Hash);
    }

    #[test]
    fn nonrecursive_edb_join_is_merge_eligible() {
        let ram = two_col_program();
        let stratum = Stratum {
            relations: vec!["out".into()],
            rules: vec![RamRule {
                target: "out".into(),
                expr: RamExpr::relation("a").join(RamExpr::relation("b"), 1),
            }],
            recursive: false,
        };
        assert_eq!(merge_eligible_joins(&stratum, &ram), 1);
    }

    #[test]
    fn own_relation_leaves_are_conservatively_unsorted() {
        let ram = two_col_program();
        let stratum = Stratum {
            relations: vec!["out".into()],
            rules: vec![RamRule {
                target: "out".into(),
                expr: RamExpr::relation("out").join(RamExpr::relation("b"), 1),
            }],
            recursive: true,
        };
        assert_eq!(merge_eligible_joins(&stratum, &ram), 0);
    }
}
