//! Lint diagnostics: validator errors plus structural warnings, each with
//! rule provenance.
//!
//! Warnings flag RAM shapes that execute correctly but poorly, or that
//! suggest a front-end mistake:
//!
//! * `cartesian-product` — a `Product` node or a width-0 join multiplies
//!   its inputs' cardinalities;
//! * `non-linear-recursion` — a recursive stratum joining two recursive
//!   inputs, which disables the static-index reuse of the Lobster paper's
//!   Section 4.2 (every iteration rebuilds its join index);
//! * `unused-relation` — a declared relation no rule reads and no query
//!   returns: facts inserted there are dead weight;
//! * `constant-false-filter` — a selection or projection filter that
//!   references no columns and evaluates to false, making the rule a no-op;
//! * `symbol-arithmetic` — an expression applies `+ - * / %` or negation at
//!   `symbol` or `bool` operand type, silently treating interned ids (or
//!   truth values) as machine words; besides being almost certainly a
//!   front-end mistake, it pins the program to full-width execution because
//!   dictionary-encoded symbol ranks are only order-preserving, not
//!   magnitude-preserving;
//! * `dead-rule` — a rule that cannot reach any declared output (see
//!   [`super::liveness`]).

use super::{dead_rules, validate_program, RuleRef};
use crate::analysis::StratumAnalysis;
use crate::{RamExpr, RamProgram, ScalarExpr};
use std::collections::BTreeSet;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is structurally invalid and must not be executed.
    Error,
    /// The program executes correctly but something looks wasteful or
    /// unintended.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (`cartesian-product`, `invalid-ir`, …).
    pub code: &'static str,
    /// The rule the finding refers to, when attributable to one.
    pub rule: Option<RuleRef>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(rule) = &self.rule {
            write!(f, " at {rule}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Runs every analysis over the program and returns the combined report:
/// validator errors first, then warnings in (stratum, rule) order, then
/// program-level warnings. An empty report means the program is clean.
pub fn lint_program(ram: &RamProgram) -> Vec<Diagnostic> {
    let mut report = Vec::new();
    if let Err(errors) = validate_program(ram) {
        for error in errors {
            report.push(Diagnostic {
                severity: Severity::Error,
                code: "invalid-ir",
                message: error.kind.to_string(),
                rule: Some(error.rule),
            });
        }
    }
    let dead: BTreeSet<(usize, usize)> = dead_rules(ram)
        .into_iter()
        .map(|r| (r.stratum, r.rule))
        .collect();
    for (stratum_idx, stratum) in ram.strata.iter().enumerate() {
        let analysis = StratumAnalysis::analyze(stratum);
        for (rule_idx, rule) in stratum.rules.iter().enumerate() {
            let at = || RuleRef {
                stratum: stratum_idx,
                rule: rule_idx,
                target: rule.target.clone(),
            };
            rule.expr.visit(&mut |node| match node {
                RamExpr::Product(..) => report.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "cartesian-product",
                    rule: Some(at()),
                    message: "product multiplies its input cardinalities; \
                              join on a shared key if one exists"
                        .into(),
                }),
                RamExpr::Join { width: 0, .. } => report.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "cartesian-product",
                    rule: Some(at()),
                    message: "width-0 join is a cartesian product".into(),
                }),
                RamExpr::Select { cond, .. } => {
                    if is_constant_false(cond) {
                        report.push(Diagnostic {
                            severity: Severity::Warning,
                            code: "constant-false-filter",
                            rule: Some(at()),
                            message: "selection condition is constant false; \
                                      the rule derives nothing"
                                .into(),
                        });
                    }
                    if cond.has_symbol_arithmetic() {
                        report.push(symbol_arithmetic(at(), "selection condition"));
                    }
                }
                RamExpr::Project { proj, .. } => {
                    if let Some(filter) = &proj.filter {
                        if is_constant_false_program(filter) {
                            report.push(Diagnostic {
                                severity: Severity::Warning,
                                code: "constant-false-filter",
                                rule: Some(at()),
                                message: "projection filter is constant false; \
                                          the rule derives nothing"
                                    .into(),
                            });
                        }
                    }
                    if proj.has_symbol_arithmetic() {
                        report.push(symbol_arithmetic(at(), "projection"));
                    }
                }
                _ => {}
            });
            if dead.contains(&(stratum_idx, rule_idx)) {
                report.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "dead-rule",
                    rule: Some(at()),
                    message: format!(
                        "`{}` cannot reach any declared output; \
                         the rule never affects query results",
                        rule.target
                    ),
                });
            }
        }
        if stratum.recursive && !analysis.linear_recursive {
            report.push(Diagnostic {
                severity: Severity::Warning,
                code: "non-linear-recursion",
                rule: None,
                message: format!(
                    "stratum {stratum_idx} joins two recursive inputs; \
                     static index reuse is disabled and join indexes are \
                     rebuilt every iteration"
                ),
            });
        }
    }
    for name in unused_relations(ram) {
        report.push(Diagnostic {
            severity: Severity::Warning,
            code: "unused-relation",
            rule: None,
            message: format!("relation `{name}` is never read by a rule and never queried"),
        });
    }
    report
}

/// Builds the `symbol-arithmetic` diagnostic for one offending site.
fn symbol_arithmetic(rule: RuleRef, site: &str) -> Diagnostic {
    Diagnostic {
        severity: Severity::Warning,
        code: "symbol-arithmetic",
        rule: Some(rule),
        message: format!(
            "{site} applies arithmetic to `symbol`/`bool` operands, \
             treating interned ids as machine words; the result is \
             id-assignment dependent and the program falls back to \
             full-width (unencoded) columnar execution"
        ),
    }
}

/// A condition with no column references that evaluates to false.
fn is_constant_false(cond: &ScalarExpr) -> bool {
    cond.max_column().is_none() && !cond.compile().eval_bool(&[])
}

/// The compiled-bytecode variant of [`is_constant_false`], for projection
/// filters (which only survive in compiled form).
fn is_constant_false_program(program: &crate::ExprProgram) -> bool {
    let reads_columns = program
        .ops
        .iter()
        .any(|op| matches!(op, crate::ByteOp::PushCol(_)));
    !reads_columns && !program.eval_bool(&[])
}

/// Declared relations no rule body reads and no query returns. Rule
/// *targets* don't count as uses: deriving into a relation nobody reads is
/// exactly the waste this lint flags.
fn unused_relations(ram: &RamProgram) -> Vec<String> {
    let mut used: BTreeSet<String> = ram.outputs.iter().cloned().collect();
    for stratum in &ram.strata {
        for rule in &stratum.rules {
            let mut referenced = Vec::new();
            rule.expr.referenced_relations(&mut referenced);
            used.extend(referenced);
        }
    }
    ram.schemas
        .keys()
        .filter(|name| !used.contains(*name))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryOp, RamRule, RelationSchema, Stratum, ValueType};
    use std::collections::BTreeMap;

    fn schemas(names: &[&str]) -> BTreeMap<String, RelationSchema> {
        names
            .iter()
            .map(|name| {
                (
                    name.to_string(),
                    RelationSchema::new(*name, vec![ValueType::U32, ValueType::U32]),
                )
            })
            .collect()
    }

    #[test]
    fn clean_program_has_empty_report() {
        let ram = RamProgram {
            schemas: schemas(&["edge", "path"]),
            strata: vec![Stratum {
                relations: vec!["path".into()],
                rules: vec![RamRule {
                    target: "path".into(),
                    expr: RamExpr::relation("edge"),
                }],
                recursive: false,
            }],
            outputs: vec!["path".into()],
        };
        assert!(lint_program(&ram).is_empty());
    }

    #[test]
    fn products_and_width_zero_joins_are_flagged() {
        let ram = RamProgram {
            schemas: schemas(&["a", "b", "wide"]),
            strata: vec![Stratum {
                relations: vec!["wide".into()],
                rules: vec![RamRule {
                    target: "wide".into(),
                    expr: RamExpr::Project {
                        input: Box::new(RamExpr::relation("a").join(RamExpr::relation("b"), 0)),
                        proj: crate::RowProjection::new(
                            vec![ScalarExpr::Col(0), ScalarExpr::Col(2)],
                            None,
                        ),
                    },
                }],
                recursive: false,
            }],
            outputs: vec!["wide".into()],
        };
        let report = lint_program(&ram);
        assert!(report
            .iter()
            .any(|d| d.code == "cartesian-product" && d.severity == Severity::Warning));
    }

    #[test]
    fn constant_false_filter_is_flagged() {
        let always_false = ScalarExpr::binary(
            BinaryOp::Eq,
            ValueType::U32,
            ScalarExpr::Const(crate::Value::U32(0)),
            ScalarExpr::Const(crate::Value::U32(1)),
        );
        let ram = RamProgram {
            schemas: schemas(&["edge", "path"]),
            strata: vec![Stratum {
                relations: vec!["path".into()],
                rules: vec![RamRule {
                    target: "path".into(),
                    expr: RamExpr::relation("edge").select(always_false),
                }],
                recursive: false,
            }],
            outputs: vec!["path".into()],
        };
        let report = lint_program(&ram);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].code, "constant-false-filter");
        assert_eq!(report[0].rule.as_ref().unwrap().target, "path");
    }

    #[test]
    fn symbol_arithmetic_is_flagged_in_selects_and_projections() {
        let mut schemas = schemas(&["pair", "out"]);
        for schema in schemas.values_mut() {
            *schema = RelationSchema::new(
                schema.name.clone(),
                vec![ValueType::Symbol, ValueType::Symbol],
            );
        }
        let sym_sum = ScalarExpr::binary(
            BinaryOp::Add,
            ValueType::Symbol,
            ScalarExpr::Col(0),
            ScalarExpr::Col(1),
        );
        let ram = RamProgram {
            schemas,
            strata: vec![Stratum {
                relations: vec!["out".into()],
                rules: vec![
                    RamRule {
                        target: "out".into(),
                        // Comparison at symbol type is fine; the nested
                        // addition is not.
                        expr: RamExpr::relation("pair").select(ScalarExpr::binary(
                            BinaryOp::Eq,
                            ValueType::Symbol,
                            sym_sum.clone(),
                            ScalarExpr::Col(0),
                        )),
                    },
                    RamRule {
                        target: "out".into(),
                        expr: RamExpr::Project {
                            input: Box::new(RamExpr::relation("pair")),
                            proj: crate::RowProjection::new(
                                vec![sym_sum, ScalarExpr::Col(1)],
                                None,
                            ),
                        },
                    },
                ],
                recursive: false,
            }],
            outputs: vec!["out".into()],
        };
        let report = lint_program(&ram);
        let hits: Vec<&Diagnostic> = report
            .iter()
            .filter(|d| d.code == "symbol-arithmetic")
            .collect();
        assert_eq!(hits.len(), 2, "{report:?}");
        assert!(hits.iter().all(|d| d.severity == Severity::Warning));
        assert!(hits[0].message.contains("selection condition"));
        assert!(hits[1].message.contains("projection"));

        // Pure comparisons over symbols are order-preserving and stay clean.
        let clean = RamProgram {
            schemas: {
                let mut s = BTreeMap::new();
                s.insert(
                    "pair".to_string(),
                    RelationSchema::new("pair", vec![ValueType::Symbol, ValueType::Symbol]),
                );
                s.insert(
                    "out".to_string(),
                    RelationSchema::new("out", vec![ValueType::Symbol, ValueType::Symbol]),
                );
                s
            },
            strata: vec![Stratum {
                relations: vec!["out".into()],
                rules: vec![RamRule {
                    target: "out".into(),
                    expr: RamExpr::relation("pair").select(ScalarExpr::binary(
                        BinaryOp::Lt,
                        ValueType::Symbol,
                        ScalarExpr::Col(0),
                        ScalarExpr::Col(1),
                    )),
                }],
                recursive: false,
            }],
            outputs: vec!["out".into()],
        };
        assert!(lint_program(&clean)
            .iter()
            .all(|d| d.code != "symbol-arithmetic"));
    }

    #[test]
    fn unused_relation_and_dead_rule_are_flagged() {
        let ram = RamProgram {
            schemas: schemas(&["edge", "path", "noise", "scratch"]),
            strata: vec![
                Stratum {
                    relations: vec!["path".into()],
                    rules: vec![RamRule {
                        target: "path".into(),
                        expr: RamExpr::relation("edge"),
                    }],
                    recursive: false,
                },
                Stratum {
                    relations: vec!["scratch".into()],
                    rules: vec![RamRule {
                        target: "scratch".into(),
                        expr: RamExpr::relation("noise"),
                    }],
                    recursive: false,
                },
            ],
            outputs: vec!["path".into()],
        };
        let report = lint_program(&ram);
        let codes: Vec<&str> = report.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"dead-rule"));
        // `scratch` is derived but never read or queried.
        assert!(report
            .iter()
            .any(|d| d.code == "unused-relation" && d.message.contains("scratch")));
    }

    #[test]
    fn nonlinear_recursion_is_flagged_at_stratum_level() {
        let ram = RamProgram {
            schemas: schemas(&["edge", "path"]),
            strata: vec![Stratum {
                relations: vec!["path".into()],
                rules: vec![
                    RamRule {
                        target: "path".into(),
                        expr: RamExpr::relation("edge"),
                    },
                    RamRule {
                        target: "path".into(),
                        expr: RamExpr::relation("path").join(RamExpr::relation("path"), 1),
                    },
                ],
                recursive: true,
            }],
            outputs: vec!["path".into()],
        };
        let report = lint_program(&ram);
        assert!(report
            .iter()
            .any(|d| d.code == "non-linear-recursion" && d.rule.is_none()));
    }

    #[test]
    fn diagnostics_render_with_provenance() {
        let diag = Diagnostic {
            severity: Severity::Warning,
            code: "cartesian-product",
            rule: Some(RuleRef {
                stratum: 2,
                rule: 1,
                target: "path".into(),
            }),
            message: "width-0 join is a cartesian product".into(),
        };
        assert_eq!(
            diag.to_string(),
            "warning[cartesian-product] at stratum 2, rule 1 (`path`): \
             width-0 join is a cartesian product"
        );
    }
}
