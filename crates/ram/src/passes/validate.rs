//! The IR validator: schema / arity / column-bound / type consistency.
//!
//! [`RamProgram::validate`](crate::RamProgram::validate) catches the
//! coarse structural errors (unknown relations, rule-vs-target arity, join
//! width). This pass goes further: it checks every column reference of every
//! projection and selection against the arity of its input, type-checks
//! scalar expressions against the relation schemas, and verifies that join
//! keys and union/intersect sides agree column-by-column. Errors carry rule
//! provenance, so a malformed rewrite is reported as "stratum 2, rule 1
//! (`value_alias`): …" instead of surfacing as executor misbehaviour at
//! request time.

use super::RuleRef;
use crate::{
    BinaryOp, ByteOp, ExprProgram, RamExpr, RamProgram, RowProjection, ScalarExpr, ValueType,
};
use std::fmt;

/// What the validator found wrong at one place of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrErrorKind {
    /// An expression references a relation with no declared schema.
    UnknownRelation(String),
    /// A projection or selection reads a column past its input's arity.
    ColumnOutOfBounds {
        /// The referenced column index.
        column: usize,
        /// The input arity it must be below.
        arity: usize,
    },
    /// A join's key width exceeds one of its input arities.
    BadJoinWidth {
        /// Requested key width.
        width: usize,
        /// Left input arity.
        left: usize,
        /// Right input arity.
        right: usize,
    },
    /// Union / intersect sides with different arities.
    SideArityMismatch {
        /// Left input arity.
        left: usize,
        /// Right input arity.
        right: usize,
    },
    /// A rule expression whose arity differs from its target schema.
    TargetArityMismatch {
        /// The target relation's declared arity.
        expected: usize,
        /// The rule expression's arity.
        actual: usize,
    },
    /// Two columns (or an operand and its operator annotation) with
    /// incompatible types.
    TypeMismatch {
        /// Where the mismatch was found.
        context: String,
        /// The type required there.
        expected: ValueType,
        /// The type found instead.
        found: ValueType,
    },
}

impl fmt::Display for IrErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrErrorKind::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            IrErrorKind::ColumnOutOfBounds { column, arity } => {
                write!(f, "column {column} out of bounds for arity {arity}")
            }
            IrErrorKind::BadJoinWidth { width, left, right } => write!(
                f,
                "join width {width} exceeds input arities ({left}, {right})"
            ),
            IrErrorKind::SideArityMismatch { left, right } => {
                write!(f, "sides have different arities ({left} vs {right})")
            }
            IrErrorKind::TargetArityMismatch { expected, actual } => {
                write!(f, "target expects arity {expected}, rule produces {actual}")
            }
            IrErrorKind::TypeMismatch {
                context,
                expected,
                found,
            } => write!(f, "type mismatch in {context}: {expected} vs {found}"),
        }
    }
}

/// One validation error with its rule provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    /// The rule the error was found in.
    pub rule: RuleRef,
    /// What is wrong.
    pub kind: IrErrorKind,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.kind)
    }
}

impl std::error::Error for IrError {}

/// The inferred column types of an expression result. `None` marks a column
/// whose type cannot be derived statically (the output of arithmetic whose
/// operand types are unknown).
type ColTypes = Vec<Option<ValueType>>;

/// Validates every rule of every stratum, collecting all errors instead of
/// stopping at the first.
///
/// # Errors
///
/// Returns every [`IrError`] found, in (stratum, rule) order.
pub fn validate_program(ram: &RamProgram) -> Result<(), Vec<IrError>> {
    let mut errors = Vec::new();
    for (si, stratum) in ram.strata.iter().enumerate() {
        for (ri, rule) in stratum.rules.iter().enumerate() {
            let at = RuleRef {
                stratum: si,
                rule: ri,
                target: rule.target.clone(),
            };
            let mut push = |kind: IrErrorKind| {
                errors.push(IrError {
                    rule: at.clone(),
                    kind,
                })
            };
            let Some(target) = ram.schema(&rule.target) else {
                push(IrErrorKind::UnknownRelation(rule.target.clone()));
                continue;
            };
            let types = match infer_types(&rule.expr, ram, &mut push) {
                Some(types) => types,
                // The failure was already recorded; the rule's downstream
                // checks would only cascade from it.
                None => continue,
            };
            if types.len() != target.arity() {
                push(IrErrorKind::TargetArityMismatch {
                    expected: target.arity(),
                    actual: types.len(),
                });
                continue;
            }
            for (c, (inferred, declared)) in types.iter().zip(&target.arg_types).enumerate() {
                if let Some(t) = inferred {
                    if t != declared {
                        push(IrErrorKind::TypeMismatch {
                            context: format!("column {c} stored into `{}`", rule.target),
                            expected: *declared,
                            found: *t,
                        });
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Bottom-up type inference over one rule expression. Local errors are
/// reported through `push`; returns `None` when the expression is too broken
/// to assign a result type at all (unknown relation), which stops the
/// cascade.
fn infer_types(
    expr: &RamExpr,
    ram: &RamProgram,
    push: &mut impl FnMut(IrErrorKind),
) -> Option<ColTypes> {
    match expr {
        RamExpr::Relation(name) => match ram.schema(name) {
            Some(schema) => Some(schema.arg_types.iter().copied().map(Some).collect()),
            None => {
                push(IrErrorKind::UnknownRelation(name.clone()));
                None
            }
        },
        RamExpr::Project { input, proj } => {
            let input_types = infer_types(input, ram, push)?;
            Some(check_projection(proj, &input_types, push))
        }
        RamExpr::Select { input, cond } => {
            let input_types = infer_types(input, ram, push)?;
            check_scalar(cond, &input_types, push);
            Some(input_types)
        }
        RamExpr::Join { left, right, width } => {
            let l = infer_types(left, ram, push)?;
            let r = infer_types(right, ram, push)?;
            if *width > l.len() || *width > r.len() {
                push(IrErrorKind::BadJoinWidth {
                    width: *width,
                    left: l.len(),
                    right: r.len(),
                });
                return None;
            }
            for k in 0..*width {
                if let (Some(lt), Some(rt)) = (l[k], r[k]) {
                    if lt != rt {
                        push(IrErrorKind::TypeMismatch {
                            context: format!("join key column {k}"),
                            expected: lt,
                            found: rt,
                        });
                    }
                }
            }
            // Join output: the left row, then the non-key right columns.
            let mut out = l;
            out.extend(r.into_iter().skip(*width));
            Some(out)
        }
        RamExpr::Union(left, right) | RamExpr::Intersect(left, right) => {
            let l = infer_types(left, ram, push)?;
            let r = infer_types(right, ram, push)?;
            if l.len() != r.len() {
                push(IrErrorKind::SideArityMismatch {
                    left: l.len(),
                    right: r.len(),
                });
                return Some(l);
            }
            // A column's type is known only when both sides agree on it.
            Some(
                l.into_iter()
                    .zip(r)
                    .map(|(a, b)| match (a, b) {
                        (Some(x), Some(y)) if x == y => Some(x),
                        _ => None,
                    })
                    .collect(),
            )
        }
        RamExpr::Product(left, right) => {
            let mut l = infer_types(left, ram, push)?;
            l.extend(infer_types(right, ram, push)?);
            Some(l)
        }
    }
}

/// Checks a compiled projection's column bounds and operand types against
/// the input column types; returns the output column types.
fn check_projection(
    proj: &RowProjection,
    input_types: &[Option<ValueType>],
    push: &mut impl FnMut(IrErrorKind),
) -> ColTypes {
    if let Some(filter) = &proj.filter {
        check_program(filter, input_types, "projection filter", push);
    }
    proj.programs
        .iter()
        .enumerate()
        .map(|(c, program)| {
            check_program(program, input_types, &format!("output column {c}"), push)
        })
        .collect()
}

/// Abstract interpretation of one expression bytecode program over column
/// *types*: bounds-checks every column read and flags operands whose known
/// type disagrees with the operator's type annotation. Returns the result
/// type when derivable.
fn check_program(
    program: &ExprProgram,
    input_types: &[Option<ValueType>],
    context: &str,
    push: &mut impl FnMut(IrErrorKind),
) -> Option<ValueType> {
    let arity = input_types.len();
    let mut stack: Vec<Option<ValueType>> = Vec::with_capacity(8);
    for op in &program.ops {
        match op {
            ByteOp::PushCol(i) => {
                if *i >= arity {
                    push(IrErrorKind::ColumnOutOfBounds { column: *i, arity });
                    stack.push(None);
                } else {
                    stack.push(input_types[*i]);
                }
            }
            // Generic constants are already encoded in bytecode; their
            // logical type is gone, so they never conflict. Symbol constants
            // keep their type.
            ByteOp::PushConst(_) => stack.push(None),
            ByteOp::PushSymConst(_) => stack.push(Some(ValueType::Symbol)),
            ByteOp::Binary(op, ty) => {
                let b = stack.pop().flatten();
                let a = stack.pop().flatten();
                for operand in [a, b].into_iter().flatten() {
                    check_operand(operand, *ty, context, push);
                }
                stack.push(Some(result_type(Some(*op), *ty)));
            }
            ByteOp::Unary(_, ty) => {
                if let Some(operand) = stack.pop().flatten() {
                    check_operand(operand, *ty, context, push);
                }
                stack.push(Some(*ty));
            }
        }
    }
    stack.pop().flatten()
}

/// Type check of an uncompiled scalar expression (selection predicates keep
/// their tree form); returns the result type when derivable.
fn check_scalar(
    expr: &ScalarExpr,
    input_types: &[Option<ValueType>],
    push: &mut impl FnMut(IrErrorKind),
) -> Option<ValueType> {
    match expr {
        ScalarExpr::Col(i) => {
            if *i >= input_types.len() {
                push(IrErrorKind::ColumnOutOfBounds {
                    column: *i,
                    arity: input_types.len(),
                });
                None
            } else {
                input_types[*i]
            }
        }
        ScalarExpr::Const(v) => Some(v.value_type()),
        ScalarExpr::Binary { op, ty, lhs, rhs } => {
            for side in [lhs, rhs] {
                if let Some(t) = check_scalar(side, input_types, push) {
                    check_operand(t, *ty, "selection predicate", push);
                }
            }
            Some(result_type(Some(*op), *ty))
        }
        ScalarExpr::Unary { ty, expr, .. } => {
            if let Some(t) = check_scalar(expr, input_types, push) {
                check_operand(t, *ty, "selection predicate", push);
            }
            Some(*ty)
        }
    }
}

/// One operand check: a known operand type must match the operator's type
/// annotation. `Bool` operands are accepted where the annotation is a word
/// type (comparison results feed logical connectives annotated with the
/// column type).
fn check_operand(
    found: ValueType,
    annotated: ValueType,
    context: &str,
    push: &mut impl FnMut(IrErrorKind),
) {
    if found == annotated || found == ValueType::Bool {
        return;
    }
    push(IrErrorKind::TypeMismatch {
        context: context.to_string(),
        expected: annotated,
        found,
    });
}

/// The result type of an operator: comparisons and logical connectives
/// produce booleans, arithmetic produces the annotated type.
fn result_type(op: Option<BinaryOp>, ty: ValueType) -> ValueType {
    match op {
        Some(op) if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) => {
            ValueType::Bool
        }
        _ => ty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RamRule, RelationSchema, Stratum, Value};
    use std::collections::BTreeMap;

    fn program_with_rule(expr: RamExpr) -> RamProgram {
        let mut schemas = BTreeMap::new();
        schemas.insert(
            "edge".to_string(),
            RelationSchema::new("edge", vec![ValueType::U32, ValueType::U32]),
        );
        schemas.insert(
            "weight".to_string(),
            RelationSchema::new("weight", vec![ValueType::U32, ValueType::F64]),
        );
        schemas.insert(
            "path".to_string(),
            RelationSchema::new("path", vec![ValueType::U32, ValueType::U32]),
        );
        RamProgram {
            schemas,
            strata: vec![Stratum {
                relations: vec!["path".into()],
                rules: vec![RamRule {
                    target: "path".into(),
                    expr,
                }],
                recursive: false,
            }],
            outputs: vec!["path".into()],
        }
    }

    #[test]
    fn well_formed_rule_passes() {
        let expr = RamExpr::relation("edge").project(RowProjection::new(
            vec![ScalarExpr::Col(1), ScalarExpr::Col(0)],
            None,
        ));
        validate_program(&program_with_rule(expr)).unwrap();
    }

    #[test]
    fn out_of_bounds_projection_column_is_reported() {
        let expr = RamExpr::relation("edge").project(RowProjection::new(
            vec![ScalarExpr::Col(0), ScalarExpr::Col(5)],
            None,
        ));
        let errors = validate_program(&program_with_rule(expr)).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e.kind,
            IrErrorKind::ColumnOutOfBounds {
                column: 5,
                arity: 2
            }
        )));
        assert_eq!(errors[0].rule.target, "path");
    }

    #[test]
    fn out_of_bounds_selection_column_is_reported() {
        let expr = RamExpr::relation("edge").select(ScalarExpr::binary(
            BinaryOp::Ne,
            ValueType::U32,
            ScalarExpr::Col(0),
            ScalarExpr::Col(9),
        ));
        let errors = validate_program(&program_with_rule(expr)).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, IrErrorKind::ColumnOutOfBounds { column: 9, .. })));
    }

    #[test]
    fn join_key_type_mismatch_is_reported() {
        // weight(u32, f64) reordered to (f64, u32) joined with edge(u32, u32)
        // on the first column: f64 vs u32 keys.
        let flipped = RamExpr::relation("weight").project(RowProjection::new(
            vec![ScalarExpr::Col(1), ScalarExpr::Col(0)],
            None,
        ));
        let expr = flipped
            .join(RamExpr::relation("edge"), 1)
            .project(RowProjection::new(
                vec![ScalarExpr::Col(1), ScalarExpr::Col(2)],
                None,
            ));
        let errors = validate_program(&program_with_rule(expr)).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, IrErrorKind::TypeMismatch { .. })));
    }

    #[test]
    fn bad_join_width_is_reported_with_both_arities() {
        let expr = RamExpr::relation("edge").join(RamExpr::relation("edge"), 4);
        let errors = validate_program(&program_with_rule(expr)).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e.kind,
            IrErrorKind::BadJoinWidth {
                width: 4,
                left: 2,
                right: 2
            }
        )));
    }

    #[test]
    fn union_side_arity_mismatch_is_reported() {
        let narrow =
            RamExpr::relation("edge").project(RowProjection::new(vec![ScalarExpr::Col(0)], None));
        let expr = RamExpr::Union(Box::new(RamExpr::relation("edge")), Box::new(narrow));
        let errors = validate_program(&program_with_rule(expr)).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, IrErrorKind::SideArityMismatch { left: 2, right: 1 })));
    }

    #[test]
    fn stored_column_type_mismatch_is_reported() {
        // weight(u32, f64) stored into path(u32, u32): column 1 is f64.
        let expr = RamExpr::relation("weight");
        let errors = validate_program(&program_with_rule(expr)).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e.kind,
            IrErrorKind::TypeMismatch {
                expected: ValueType::U32,
                found: ValueType::F64,
                ..
            }
        )));
    }

    #[test]
    fn unknown_relation_is_reported_without_cascading() {
        let expr = RamExpr::relation("ghost").join(RamExpr::relation("edge"), 1);
        let errors = validate_program(&program_with_rule(expr)).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(matches!(
            &errors[0].kind,
            IrErrorKind::UnknownRelation(name) if name == "ghost"
        ));
    }

    #[test]
    fn typed_operator_over_wrong_column_type_is_reported() {
        // Comparing the f64 column of `weight` with u32 semantics.
        let expr = RamExpr::relation("weight")
            .select(ScalarExpr::binary(
                BinaryOp::Lt,
                ValueType::U32,
                ScalarExpr::Col(1),
                ScalarExpr::Const(Value::U32(3)),
            ))
            .project(RowProjection::new(
                vec![ScalarExpr::Col(0), ScalarExpr::Col(0)],
                None,
            ));
        let errors = validate_program(&program_with_rule(expr)).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            e.kind,
            IrErrorKind::TypeMismatch {
                expected: ValueType::U32,
                found: ValueType::F64,
                ..
            }
        )));
    }

    #[test]
    fn errors_from_multiple_rules_are_all_collected() {
        let mut ram = program_with_rule(RamExpr::relation("ghost"));
        ram.strata[0].rules.push(RamRule {
            target: "path".into(),
            expr: RamExpr::relation("edge").join(RamExpr::relation("edge"), 3),
        });
        let errors = validate_program(&ram).unwrap_err();
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[1].rule.rule, 1);
    }
}
