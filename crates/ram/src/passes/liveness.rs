//! Relation liveness and dead-rule elimination.
//!
//! A relation is *live* when it can contribute tuples to one of the
//! program's declared outputs: every output relation is live, and the
//! bodies of rules deriving a live relation make their referenced relations
//! live in turn. Rules whose target is not live can never influence a
//! queried result — they are *dead* and safe to drop.
//!
//! Programs that declare no outputs are treated as "everything is
//! observable" (the session API allows querying any relation), so nothing
//! is dead in that case.

use super::RuleRef;
use crate::RamProgram;
use std::collections::BTreeSet;

/// The set of relations reachable (backwards through rule bodies) from the
/// program's outputs. With no declared outputs, every schema relation is
/// considered live.
pub fn live_relations(ram: &RamProgram) -> BTreeSet<String> {
    if ram.outputs.is_empty() {
        return ram.schemas.keys().cloned().collect();
    }
    let mut live: BTreeSet<String> = ram.outputs.iter().cloned().collect();
    loop {
        let mut grew = false;
        for stratum in &ram.strata {
            for rule in &stratum.rules {
                if !live.contains(&rule.target) {
                    continue;
                }
                let mut referenced = Vec::new();
                rule.expr.referenced_relations(&mut referenced);
                for name in referenced {
                    grew |= live.insert(name);
                }
            }
        }
        if !grew {
            return live;
        }
    }
}

/// The rules whose target relation is not live — evaluating them can never
/// change any output.
pub fn dead_rules(ram: &RamProgram) -> Vec<RuleRef> {
    let live = live_relations(ram);
    let mut dead = Vec::new();
    for (stratum_idx, stratum) in ram.strata.iter().enumerate() {
        for (rule_idx, rule) in stratum.rules.iter().enumerate() {
            if !live.contains(&rule.target) {
                dead.push(RuleRef {
                    stratum: stratum_idx,
                    rule: rule_idx,
                    target: rule.target.clone(),
                });
            }
        }
    }
    dead
}

/// Returns a copy of the program with every dead rule removed. Strata left
/// with no rules are dropped entirely, and each surviving stratum's updated
/// relation list is pruned to the relations its remaining rules still
/// derive. Schemas and outputs are untouched — dead relations stay
/// declared (and empty), so query shapes don't change.
pub fn eliminate_dead_rules(ram: &RamProgram) -> RamProgram {
    let live = live_relations(ram);
    let mut pruned = ram.clone();
    for stratum in &mut pruned.strata {
        stratum.rules.retain(|rule| live.contains(&rule.target));
        let derived: BTreeSet<&str> = stratum
            .rules
            .iter()
            .map(|rule| rule.target.as_str())
            .collect();
        stratum
            .relations
            .retain(|relation| derived.contains(relation.as_str()));
    }
    pruned.strata.retain(|stratum| !stratum.rules.is_empty());
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RamExpr, RamRule, RelationSchema, Stratum, ValueType};
    use std::collections::BTreeMap;

    /// edge → path (output), plus an unrelated `scratch` relation derived
    /// from `noise` that nothing queries.
    fn program_with_dead_branch() -> RamProgram {
        let mut schemas = BTreeMap::new();
        for name in ["edge", "path", "noise", "scratch"] {
            schemas.insert(
                name.to_string(),
                RelationSchema::new(name, vec![ValueType::U32, ValueType::U32]),
            );
        }
        RamProgram {
            schemas,
            strata: vec![
                Stratum {
                    relations: vec!["path".into()],
                    rules: vec![RamRule {
                        target: "path".into(),
                        expr: RamExpr::relation("edge"),
                    }],
                    recursive: false,
                },
                Stratum {
                    relations: vec!["scratch".into()],
                    rules: vec![RamRule {
                        target: "scratch".into(),
                        expr: RamExpr::relation("noise"),
                    }],
                    recursive: false,
                },
            ],
            outputs: vec!["path".into()],
        }
    }

    #[test]
    fn liveness_reaches_backwards_from_outputs() {
        let ram = program_with_dead_branch();
        let live = live_relations(&ram);
        assert!(live.contains("path"));
        assert!(live.contains("edge"));
        assert!(!live.contains("scratch"));
        assert!(!live.contains("noise"));
    }

    #[test]
    fn no_outputs_means_everything_is_live() {
        let mut ram = program_with_dead_branch();
        ram.outputs.clear();
        assert_eq!(live_relations(&ram).len(), ram.schemas.len());
        assert!(dead_rules(&ram).is_empty());
    }

    #[test]
    fn dead_rules_carry_provenance() {
        let ram = program_with_dead_branch();
        let dead = dead_rules(&ram);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].stratum, 1);
        assert_eq!(dead[0].rule, 0);
        assert_eq!(dead[0].target, "scratch");
    }

    #[test]
    fn elimination_drops_rules_strata_and_relation_entries() {
        let ram = program_with_dead_branch();
        let pruned = eliminate_dead_rules(&ram);
        assert_eq!(pruned.strata.len(), 1);
        assert_eq!(pruned.strata[0].relations, vec!["path".to_string()]);
        // Schemas and outputs are preserved so query shapes don't change.
        assert_eq!(pruned.schemas.len(), ram.schemas.len());
        assert_eq!(pruned.outputs, ram.outputs);
    }

    #[test]
    fn elimination_is_identity_on_fully_live_programs() {
        let mut ram = program_with_dead_branch();
        ram.outputs.push("scratch".into());
        let pruned = eliminate_dead_rules(&ram);
        assert_eq!(pruned.strata.len(), ram.strata.len());
        assert_eq!(dead_rules(&pruned).len(), 0);
    }
}
