//! Multi-pass static analysis over RAM programs.
//!
//! The passes in this module compute compile-time facts about a
//! [`RamProgram`](crate::RamProgram) that downstream layers consume instead
//! of guessing at run time:
//!
//! * [`validate_program`] — the IR validator: schema, arity, column-bound,
//!   and type consistency for every expression of every rule. The APM
//!   compiler runs it under `debug_assertions` after each rewrite; the core
//!   builder runs it unconditionally at compile time.
//! * [`expr_sorted_prefix`] / [`join_strategy`] — sort-order inference:
//!   propagates the sorted-table column-prefix invariant through
//!   project/select/join so each join site statically knows whether both
//!   inputs arrive sorted on the join prefix, yielding a per-join
//!   [`JoinStrategy`] hint the executor uses to pick a merge-path join over
//!   a hash build+probe.
//! * [`live_relations`] / [`eliminate_dead_rules`] — relation liveness:
//!   reachability from the program's output relations, identifying rules
//!   that can never contribute to any queried result (prunable behind a
//!   runtime option).
//! * [`CostModel`] — a static cost model: per-relation and per-stratum
//!   weights (join participation, recursion, arity) that refine the
//!   fact-count costs used by the sharded batch planner.
//! * [`lint_program`] — the diagnostics report: validator errors plus
//!   warnings (cartesian products, non-linear recursion, unused inputs,
//!   constant-false filters, dead rules), each carrying rule provenance.

mod cost;
mod lint;
mod liveness;
mod sort_order;
mod validate;

pub use cost::{CostModel, StratumCost};
pub use lint::{lint_program, Diagnostic, Severity};
pub use liveness::{dead_rules, eliminate_dead_rules, live_relations};
pub use sort_order::{
    expr_sorted_prefix, join_strategy, merge_eligible_joins, projection_sorted_prefix, JoinStrategy,
};
pub use validate::{validate_program, IrError, IrErrorKind};

use std::fmt;

/// Provenance of a diagnostic or validation error: which rule of which
/// stratum it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRef {
    /// Stratum index in evaluation order.
    pub stratum: usize,
    /// Rule index within the stratum.
    pub rule: usize,
    /// The rule's target relation.
    pub target: String,
}

impl fmt::Display for RuleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stratum {}, rule {} (`{}`)",
            self.stratum, self.rule, self.target
        )
    }
}
