//! The RAM program structure: expressions, rules, strata, and programs.

use crate::{RowProjection, ScalarExpr, ValueType};
use std::collections::BTreeMap;
use std::fmt;

/// The schema of one relation: its name and column types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name.
    pub name: String,
    /// Column types, in order.
    pub arg_types: Vec<ValueType>,
}

impl RelationSchema {
    /// Creates a schema.
    pub fn new(name: impl Into<String>, arg_types: Vec<ValueType>) -> Self {
        RelationSchema {
            name: name.into(),
            arg_types,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arg_types.len()
    }
}

/// A relational-algebra expression (the `ε` of Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub enum RamExpr {
    /// A reference to a relation in the database.
    Relation(String),
    /// Projection `π_α(ε)`; may also filter rows (a fused `σ∘π`).
    Project {
        /// Input expression.
        input: Box<RamExpr>,
        /// The projection function.
        proj: RowProjection,
    },
    /// Selection `σ_β(ε)`.
    Select {
        /// Input expression.
        input: Box<RamExpr>,
        /// The selection predicate over the input row.
        cond: ScalarExpr,
    },
    /// Join `ε₁ ⊲⊳_w ε₂` on the first `w` columns of each side. The output
    /// row is the left row followed by the non-key columns of the right row.
    Join {
        /// Left (probe) input.
        left: Box<RamExpr>,
        /// Right (build) input.
        right: Box<RamExpr>,
        /// Number of key columns.
        width: usize,
    },
    /// Union `ε₁ ∪ ε₂`.
    Union(Box<RamExpr>, Box<RamExpr>),
    /// Cartesian product `ε₁ × ε₂`.
    Product(Box<RamExpr>, Box<RamExpr>),
    /// Intersection `ε₁ ∩ ε₂`.
    Intersect(Box<RamExpr>, Box<RamExpr>),
}

impl RamExpr {
    /// A reference to a relation.
    pub fn relation(name: impl Into<String>) -> Self {
        RamExpr::Relation(name.into())
    }

    /// Wraps the expression in a projection.
    pub fn project(self, proj: RowProjection) -> Self {
        RamExpr::Project {
            input: Box::new(self),
            proj,
        }
    }

    /// Wraps the expression in a selection.
    pub fn select(self, cond: ScalarExpr) -> Self {
        RamExpr::Select {
            input: Box::new(self),
            cond,
        }
    }

    /// Joins two expressions on their first `width` columns.
    pub fn join(self, other: RamExpr, width: usize) -> Self {
        RamExpr::Join {
            left: Box::new(self),
            right: Box::new(other),
            width,
        }
    }

    /// The arity of the expression given a lookup of relation arities.
    pub fn arity(&self, relation_arity: &impl Fn(&str) -> Option<usize>) -> Option<usize> {
        match self {
            RamExpr::Relation(name) => relation_arity(name),
            RamExpr::Project { proj, .. } => Some(proj.output_arity()),
            RamExpr::Select { input, .. } => input.arity(relation_arity),
            RamExpr::Join { left, right, width } => {
                let l = left.arity(relation_arity)?;
                let r = right.arity(relation_arity)?;
                Some(l + r - width)
            }
            RamExpr::Union(l, _) | RamExpr::Intersect(l, _) => l.arity(relation_arity),
            RamExpr::Product(l, r) => Some(l.arity(relation_arity)? + r.arity(relation_arity)?),
        }
    }

    /// Collects the names of every relation referenced by the expression.
    pub fn referenced_relations(&self, out: &mut Vec<String>) {
        match self {
            RamExpr::Relation(name) => out.push(name.clone()),
            RamExpr::Project { input, .. } | RamExpr::Select { input, .. } => {
                input.referenced_relations(out)
            }
            RamExpr::Join { left, right, .. }
            | RamExpr::Union(left, right)
            | RamExpr::Product(left, right)
            | RamExpr::Intersect(left, right) => {
                left.referenced_relations(out);
                right.referenced_relations(out);
            }
        }
    }

    /// Number of operator nodes in the expression tree.
    pub fn node_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |_| count += 1);
        count
    }

    /// Visits every sub-expression, outermost first.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a RamExpr)) {
        f(self);
        match self {
            RamExpr::Relation(_) => {}
            RamExpr::Project { input, .. } | RamExpr::Select { input, .. } => input.visit(f),
            RamExpr::Join { left, right, .. }
            | RamExpr::Union(left, right)
            | RamExpr::Product(left, right)
            | RamExpr::Intersect(left, right) => {
                left.visit(f);
                right.visit(f);
            }
        }
    }
}

/// A RAM rule `ρ ← ε`.
#[derive(Debug, Clone, PartialEq)]
pub struct RamRule {
    /// The relation updated by this rule.
    pub target: String,
    /// The query producing new facts for the target.
    pub expr: RamExpr,
}

/// A stratum: a set of rules evaluated together to a fix point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Stratum {
    /// Relations defined (updated) by this stratum.
    pub relations: Vec<String>,
    /// The rules of the stratum.
    pub rules: Vec<RamRule>,
    /// Whether the stratum is recursive (needs fix-point iteration).
    pub recursive: bool,
}

/// A complete RAM program: schemas, strata in evaluation order, and the
/// relations the user asked to query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RamProgram {
    /// Schemas of every relation (EDB and IDB).
    pub schemas: BTreeMap<String, RelationSchema>,
    /// Strata in dependency order.
    pub strata: Vec<Stratum>,
    /// Output (queried) relations.
    pub outputs: Vec<String>,
}

/// Errors detected by [`RamProgram::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A rule or expression references a relation with no schema.
    UnknownRelation(String),
    /// An expression's arity does not match its target or sibling.
    ArityMismatch {
        /// Where the mismatch was found.
        context: String,
        /// Expected arity.
        expected: usize,
        /// Actual arity.
        actual: usize,
    },
    /// A join's key width exceeds one of its inputs.
    BadJoinWidth {
        /// The rule's target relation.
        target: String,
        /// The requested key width.
        width: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            ValidationError::ArityMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "arity mismatch in {context}: expected {expected}, found {actual}"
                )
            }
            ValidationError::BadJoinWidth { target, width } => {
                write!(
                    f,
                    "join width {width} exceeds input arity in rule for `{target}`"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl RamProgram {
    /// The schema of a relation, if declared.
    pub fn schema(&self, name: &str) -> Option<&RelationSchema> {
        self.schemas.get(name)
    }

    /// The global interner ids of every symbol constant appearing in any
    /// rule expression, sorted and deduplicated. A dictionary-encoding
    /// runtime seeds its per-database dictionary with these so constant
    /// rewriting always finds a local rank, even for symbols no fact
    /// mentions.
    pub fn symbol_constants(&self) -> Vec<u32> {
        let mut ids = Vec::new();
        for stratum in &self.strata {
            for rule in &stratum.rules {
                rule.expr.visit(&mut |node| match node {
                    RamExpr::Select { cond, .. } => cond.symbol_consts(&mut ids),
                    RamExpr::Project { proj, .. } => proj.symbol_consts(&mut ids),
                    _ => {}
                });
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// `true` when any rule applies arithmetic at `Symbol`/`Bool` operand
    /// type (the `symbol-arithmetic` lint). Dictionary-encoding runtimes
    /// must fall back to full-width storage for such programs: arithmetic
    /// over raw interner ids is not invariant under re-encoding.
    pub fn has_symbol_arithmetic(&self) -> bool {
        self.any_rule_expr(|node| match node {
            RamExpr::Select { cond, .. } => cond.has_symbol_arithmetic(),
            RamExpr::Project { proj, .. } => proj.has_symbol_arithmetic(),
            _ => false,
        })
    }

    /// `true` when any rule applies arithmetic at `u32` operand type. Such
    /// arithmetic is computed at unmasked 64-bit width, so encoded storage
    /// must keep `u32` lanes 8 bytes wide (see
    /// `lobster_ram::RelationLayout::plan`).
    pub fn has_u32_arithmetic(&self) -> bool {
        self.any_rule_expr(|node| match node {
            RamExpr::Select { cond, .. } => cond.has_u32_arithmetic(),
            RamExpr::Project { proj, .. } => proj.has_u32_arithmetic(),
            _ => false,
        })
    }

    /// Visits every rule expression node, returning `true` as soon as
    /// `pred` matches one.
    fn any_rule_expr(&self, pred: impl Fn(&RamExpr) -> bool) -> bool {
        let mut found = false;
        for stratum in &self.strata {
            for rule in &stratum.rules {
                rule.expr.visit(&mut |node| {
                    if pred(node) {
                        found = true;
                    }
                });
            }
        }
        found
    }

    /// The arity of a relation, if declared.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.schemas.get(name).map(RelationSchema::arity)
    }

    /// Relations that are never the target of any rule (the extensional
    /// database).
    pub fn edb_relations(&self) -> Vec<String> {
        let idb: std::collections::BTreeSet<&str> = self
            .strata
            .iter()
            .flat_map(|s| s.rules.iter().map(|r| r.target.as_str()))
            .collect();
        self.schemas
            .keys()
            .filter(|name| !idb.contains(name.as_str()))
            .cloned()
            .collect()
    }

    /// A deterministic estimate of the compiled program's resident size in
    /// bytes: relation schemas plus every operator node of every rule at a
    /// fixed per-node cost. Serving-layer caches use this as the LRU weight
    /// when budgeting how many compiled programs stay resident, so the exact
    /// constants matter less than the estimate being stable across runs and
    /// monotone in program complexity.
    pub fn size_estimate(&self) -> usize {
        // Costs approximate the in-memory footprint of the corresponding
        // structures (strings, boxed enum nodes, vectors) on a 64-bit target.
        const PER_SCHEMA: usize = 64;
        const PER_COLUMN: usize = 16;
        const PER_RULE: usize = 64;
        const PER_EXPR_NODE: usize = 96;
        let schemas: usize = self
            .schemas
            .values()
            .map(|s| PER_SCHEMA + s.name.len() + s.arg_types.len() * PER_COLUMN)
            .sum();
        let rules: usize = self
            .strata
            .iter()
            .flat_map(|stratum| stratum.rules.iter())
            .map(|rule| PER_RULE + rule.target.len() + rule.expr.node_count() * PER_EXPR_NODE)
            .sum();
        let outputs: usize = self.outputs.iter().map(|name| 24 + name.len()).sum();
        schemas + rules + outputs
    }

    /// Checks structural well-formedness of the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] found.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let lookup = |name: &str| self.arity(name);
        for stratum in &self.strata {
            for rule in &stratum.rules {
                let target_arity = self
                    .arity(&rule.target)
                    .ok_or_else(|| ValidationError::UnknownRelation(rule.target.clone()))?;
                let mut refs = Vec::new();
                rule.expr.referenced_relations(&mut refs);
                for r in refs {
                    if self.arity(&r).is_none() {
                        return Err(ValidationError::UnknownRelation(r));
                    }
                }
                let mut join_error = None;
                rule.expr.visit(&mut |e| {
                    if let RamExpr::Join { left, right, width } = e {
                        let l = left.arity(&lookup).unwrap_or(0);
                        let r = right.arity(&lookup).unwrap_or(0);
                        if *width > l || *width > r {
                            join_error.get_or_insert(ValidationError::BadJoinWidth {
                                target: rule.target.clone(),
                                width: *width,
                            });
                        }
                    }
                });
                if let Some(err) = join_error {
                    return Err(err);
                }
                let actual = rule
                    .expr
                    .arity(&lookup)
                    .ok_or_else(|| ValidationError::UnknownRelation(rule.target.clone()))?;
                if actual != target_arity {
                    return Err(ValidationError::ArityMismatch {
                        context: format!("rule for `{}`", rule.target),
                        expected: target_arity,
                        actual,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RowProjection, ScalarExpr};

    fn tc_program() -> RamProgram {
        // path(x, y) :- edge(x, y) or (path(x, z) and edge(z, y)).
        let mut schemas = BTreeMap::new();
        schemas.insert(
            "edge".to_string(),
            RelationSchema::new("edge", vec![ValueType::U32, ValueType::U32]),
        );
        schemas.insert(
            "path".to_string(),
            RelationSchema::new("path", vec![ValueType::U32, ValueType::U32]),
        );
        let base = RamRule {
            target: "path".into(),
            expr: RamExpr::relation("edge"),
        };
        // path(x,z) joined with edge(z,y) on z: reorder path to (z, x).
        let path_zx = RamExpr::relation("path").project(RowProjection::new(
            vec![ScalarExpr::Col(1), ScalarExpr::Col(0)],
            None,
        ));
        let joined = path_zx.join(RamExpr::relation("edge"), 1);
        // joined columns: (z, x, y) -> project to (x, y).
        let rec = RamRule {
            target: "path".into(),
            expr: joined.project(RowProjection::new(
                vec![ScalarExpr::Col(1), ScalarExpr::Col(2)],
                None,
            )),
        };
        RamProgram {
            schemas,
            strata: vec![Stratum {
                relations: vec!["path".into()],
                rules: vec![base, rec],
                recursive: true,
            }],
            outputs: vec!["path".into()],
        }
    }

    #[test]
    fn transitive_closure_program_validates() {
        let prog = tc_program();
        prog.validate().unwrap();
        assert_eq!(prog.edb_relations(), vec!["edge".to_string()]);
    }

    #[test]
    fn arity_of_join_expression() {
        let prog = tc_program();
        let lookup = |name: &str| prog.arity(name);
        let expr = RamExpr::relation("path").join(RamExpr::relation("edge"), 1);
        assert_eq!(expr.arity(&lookup), Some(3));
        let product = RamExpr::Product(
            Box::new(RamExpr::relation("path")),
            Box::new(RamExpr::relation("edge")),
        );
        assert_eq!(product.arity(&lookup), Some(4));
    }

    #[test]
    fn unknown_relation_is_rejected() {
        let mut prog = tc_program();
        prog.strata[0].rules.push(RamRule {
            target: "path".into(),
            expr: RamExpr::relation("ghost"),
        });
        assert_eq!(
            prog.validate(),
            Err(ValidationError::UnknownRelation("ghost".into()))
        );
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut prog = tc_program();
        prog.strata[0].rules.push(RamRule {
            target: "path".into(),
            expr: RamExpr::relation("edge")
                .project(RowProjection::new(vec![ScalarExpr::Col(0)], None)),
        });
        assert!(matches!(
            prog.validate(),
            Err(ValidationError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn bad_join_width_is_rejected() {
        let mut prog = tc_program();
        prog.strata[0].rules.push(RamRule {
            target: "path".into(),
            expr: RamExpr::relation("edge").join(RamExpr::relation("edge"), 3),
        });
        assert!(matches!(
            prog.validate(),
            Err(ValidationError::BadJoinWidth { .. })
        ));
    }

    #[test]
    fn referenced_relations_are_collected() {
        let expr = RamExpr::relation("a")
            .join(RamExpr::relation("b"), 1)
            .select(ScalarExpr::binary(
                crate::BinaryOp::Ne,
                ValueType::U32,
                ScalarExpr::Col(0),
                ScalarExpr::Col(1),
            ));
        let mut refs = Vec::new();
        expr.referenced_relations(&mut refs);
        assert_eq!(refs, vec!["a".to_string(), "b".to_string()]);
    }
}
