//! A miniature model server: one process-wide [`ProgramCache`], one
//! [`BatchScheduler`] per hot program, many concurrent request threads.
//!
//! Run with `cargo run -p lobster-serve --example serve`. The example prints
//! the cache behaviour (miss → compile, hits, coalesced concurrent
//! requests) and the scheduler's batching statistics, so it doubles as a
//! quick tour of the serving knobs.

use lobster::{FactSet, ProvenanceKind, Value};
use lobster_serve::{BatchScheduler, ProgramCache, SchedulerConfig};
use std::sync::Arc;
use std::time::Duration;

const REACHABILITY: &str = "type edge(x: u32, y: u32)
    rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
    query path";

fn main() {
    // --- The cache: each distinct program compiles once per process. ------
    let cache = Arc::new(ProgramCache::with_budget(1 << 20));

    // Eight "handler threads" race for the same program. Exactly one
    // compiles; the other seven block and share the artifact.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache
                    .get_or_compile(REACHABILITY, ProvenanceKind::AddMultProb)
                    .expect("program compiles")
            })
        })
        .collect();
    let program = handles
        .into_iter()
        .map(|h| h.join().expect("handler thread"))
        .next_back()
        .expect("eight handlers ran");
    let stats = cache.stats();
    println!(
        "cache: {} compile(s) for 8 concurrent requests \
         ({} miss, {} coalesced, {} hit)",
        stats.compiles, stats.misses, stats.coalesced, stats.hits
    );
    // Re-requesting is now a pure hit.
    cache
        .get_or_compile(REACHABILITY, ProvenanceKind::AddMultProb)
        .expect("cached");
    println!("cache: re-request hits ({} total hits)", cache.stats().hits);

    // --- The scheduler: one fix-point per mini-batch. ---------------------
    // `max_batch_size` caps how many requests share a fix-point;
    // `max_queue_delay` bounds how long the first request of a batch can
    // wait for company.
    let scheduler = BatchScheduler::new(
        program,
        SchedulerConfig::default()
            .with_max_batch_size(16)
            .with_max_queue_delay(Duration::from_millis(2)),
    );

    // Sixty-four independent requests, submitted as fast as possible.
    let tickets: Vec<_> = (0..64u32)
        .map(|i| {
            let mut request = FactSet::new();
            request.add("edge", &[Value::U32(i), Value::U32(i + 1)], Some(0.9));
            request.add("edge", &[Value::U32(i + 1), Value::U32(i + 2)], Some(0.9));
            scheduler.submit(request)
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let i = i as u32;
        let result = ticket.wait().expect("request served");
        let p = result.probability("path", &[Value::U32(i), Value::U32(i + 2)]);
        assert!((p - 0.81).abs() < 1e-9, "request {i}: {p}");
    }
    let stats = scheduler.stats();
    println!(
        "scheduler: {} requests in {} batch(es) (largest {}, {} full / {} timer flushes)",
        stats.samples, stats.batches, stats.largest_batch, stats.full_flushes, stats.timer_flushes
    );
    assert!(
        stats.batches < stats.samples,
        "batching amortized at least one fix-point"
    );
}
