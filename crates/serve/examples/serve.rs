//! A miniature model server: one process-wide [`ProgramCache`], one
//! [`BatchScheduler`] per hot program, many concurrent request threads —
//! including the persistent sharded runtime (`num_shards > 1`: one
//! long-lived shard worker pool serving every batch) and direct session-pool
//! reuse. This is the executable version of the request lifecycle described
//! in `docs/ARCHITECTURE.md`.
//!
//! Run with `cargo run -p lobster-serve --example serve`. The example prints
//! the cache behaviour (miss → compile, hits, coalesced concurrent
//! requests), the scheduler's batching statistics, and the session-pool
//! reuse counters, so it doubles as a quick tour of the serving knobs.

use lobster::{FactSet, ProvenanceKind, Value};
use lobster_serve::{BatchScheduler, ProgramCache, SchedulerConfig};
use std::sync::Arc;
use std::time::Duration;

const REACHABILITY: &str = "type edge(x: u32, y: u32)
    rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
    query path";

fn main() {
    // --- The cache: each distinct program compiles once per process. ------
    let cache = Arc::new(ProgramCache::with_budget(1 << 20));

    // Eight "handler threads" race for the same program. Exactly one
    // compiles; the other seven block and share the artifact.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache
                    .get_or_compile(REACHABILITY, ProvenanceKind::AddMultProb)
                    .expect("program compiles")
            })
        })
        .collect();
    let program = handles
        .into_iter()
        .map(|h| h.join().expect("handler thread"))
        .next_back()
        .expect("eight handlers ran");
    let stats = cache.stats();
    println!(
        "cache: {} compile(s) for 8 concurrent requests \
         ({} miss, {} coalesced, {} hit)",
        stats.compiles, stats.misses, stats.coalesced, stats.hits
    );
    // Re-requesting is now a pure hit.
    cache
        .get_or_compile(REACHABILITY, ProvenanceKind::AddMultProb)
        .expect("cached");
    println!("cache: re-request hits ({} total hits)", cache.stats().hits);

    // --- The scheduler: one fix-point per mini-batch, on a persistent ----
    // --- runtime. ---------------------------------------------------------
    // `max_batch_size` caps how many requests share a fix-point;
    // `max_queue_delay` bounds how long the first request of a batch can
    // wait for company. With `num_shards` = 2 the scheduler spawns its
    // two shard workers ONCE, here — every batch below is fed to those same
    // threads over a work queue, paying no per-batch spawn/join.
    let scheduler = BatchScheduler::new(
        program,
        SchedulerConfig::default()
            .with_max_batch_size(16)
            .with_max_queue_delay(Duration::from_millis(2))
            .with_num_shards(2),
    );

    // Sixty-four independent requests, submitted as fast as possible.
    let tickets: Vec<_> = (0..64u32)
        .map(|i| {
            let mut request = FactSet::new();
            request.add("edge", &[Value::U32(i), Value::U32(i + 1)], Some(0.9));
            request.add("edge", &[Value::U32(i + 1), Value::U32(i + 2)], Some(0.9));
            scheduler.submit(request)
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let i = i as u32;
        let result = ticket.wait().expect("request served");
        let p = result.probability("path", &[Value::U32(i), Value::U32(i + 2)]);
        assert!((p - 0.81).abs() < 1e-9, "request {i}: {p}");
    }
    let stats = scheduler.stats();
    println!(
        "scheduler: {} requests in {} batch(es) over 2 persistent shard workers \
         (largest {}, {} full / {} timer flushes, {} shard chunks)",
        stats.samples,
        stats.batches,
        stats.largest_batch,
        stats.full_flushes,
        stats.timer_flushes,
        stats.sharded_chunks,
    );
    assert!(
        stats.batches < stats.samples,
        "batching amortized at least one fix-point"
    );
    assert!(
        stats.sharded_chunks >= stats.batches,
        "every batch fanned out across the persistent shard workers"
    );

    // --- The session pool: per-request state, recycled. -------------------
    // A handler that runs one-off (unbatched) requests borrows a session
    // instead of building one: the pool resets it on return, so request
    // state never leaks while the registry/fact allocations are reused.
    let pool = scheduler.program().session_pool();
    for i in 0..32u32 {
        let mut session = pool.acquire();
        session
            .add_fact("edge", &[Value::U32(i), Value::U32(i + 1)], Some(0.5))
            .expect("well-formed fact");
        let result = session.run().expect("request runs");
        assert_eq!(result.len("path"), 1, "a recycled session starts clean");
    }
    let pool_stats = pool.stats();
    println!(
        "session pool: 32 one-off requests served by {} session(s) ({} reuses)",
        pool_stats.created, pool_stats.reused
    );
    assert_eq!(pool_stats.created, 1);
}
