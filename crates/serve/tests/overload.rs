//! Overload-path integration tests: the network front end under more
//! demand than the scheduler is allowed to hold.
//!
//! What is asserted here is the serving contract under stress, end to end
//! over real TCP: load is shed with a structured retry-after instead of
//! queueing unboundedly, quota rejections happen *before* the scheduler
//! sees the request, graceful drain resolves every in-flight ticket, and a
//! client vanishing mid-request harms nobody else.

use lobster::{DynProgram, FactSet, ProvenanceKind, Value};
use lobster_serve::{
    AdmissionConfig, Client, KeyStore, Quota, SchedulerConfig, Server, ServerConfig,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TC: &str = "type edge(x: u32, y: u32)
    rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
    query path";

fn program() -> Arc<DynProgram> {
    Arc::new(DynProgram::compile(TC, ProvenanceKind::AddMultProb).expect("compiles"))
}

fn edge_request(a: u32, b: u32) -> FactSet {
    let mut facts = FactSet::new();
    facts.add("edge", &[Value::U32(a), Value::U32(b)], Some(0.5));
    facts
}

fn server_with(max_pending: usize, queue_delay: Duration, quota: Quota) -> Server {
    let keys = KeyStore::new();
    keys.add_key("k", quota);
    Server::bind(
        ("127.0.0.1", 0),
        program(),
        keys,
        ServerConfig {
            scheduler: SchedulerConfig::default()
                .with_max_batch_size(64)
                .with_max_queue_delay(queue_delay),
            admission: AdmissionConfig::default().with_max_pending(max_pending),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

#[test]
fn overload_is_shed_with_a_retry_after_and_admitted_requests_still_serve() {
    // Cap the scheduler at 2 pending requests and hold the flush timer at
    // 300ms: a burst of 6 concurrent clients lands while the first requests
    // are still queued, so at least one must be shed.
    let server = server_with(2, Duration::from_millis(300), Quota::unlimited());
    let addr = server.local_addr();
    let replies: Vec<_> = (0..6u32)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, "k").expect("connect");
                client.run(&edge_request(i, i + 1)).expect("transport ok")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let (ok, shed): (Vec<_>, Vec<_>) = replies.iter().partition(|r| r.ok());
    assert!(!ok.is_empty(), "nothing was admitted");
    assert!(
        !shed.is_empty(),
        "6 clients against a cap of 2 and nothing shed"
    );
    for reply in &shed {
        assert_eq!(
            reply.code(),
            Some("shed"),
            "{:?}",
            reply.json().to_compact()
        );
        let retry = reply.retry_after().expect("shed replies carry retry-after");
        assert!(retry > Duration::ZERO);
    }
    let stats = server.admission_stats();
    assert_eq!(stats.admitted as usize, ok.len());
    assert_eq!(stats.shed as usize, shed.len());
    server.shutdown();
}

#[test]
fn quota_exhaustion_rejects_before_the_scheduler_sees_the_request() {
    // Burst of 2, effectively no refill within the test.
    let server = server_with(
        256,
        Duration::from_millis(1),
        Quota::per_second(1.0 / 3600.0, 2),
    );
    let mut client = Client::connect(server.local_addr(), "k").expect("connect");
    assert!(client.run(&edge_request(0, 1)).unwrap().ok());
    assert!(client.run(&edge_request(1, 2)).unwrap().ok());
    let third = client.run(&edge_request(2, 3)).unwrap();
    assert_eq!(third.code(), Some("quota"));
    assert!(third.retry_after().expect("quota carries retry-after") > Duration::ZERO);
    // "Before enqueue": the scheduler served exactly the two admitted
    // requests; the rejected one never became a sample, and admission
    // control never even voted on it.
    assert_eq!(server.scheduler().stats().samples, 2);
    assert_eq!(server.admission_stats().admitted, 2);
    assert_eq!(server.auth_stats().quota_rejected, 1);
    server.shutdown();
}

#[test]
fn graceful_drain_resolves_every_in_flight_ticket() {
    // A 200ms flush timer guarantees requests are still pending (queued,
    // unflushed) when shutdown lands mid-burst.
    let server = server_with(256, Duration::from_millis(200), Quota::unlimited());
    let addr = server.local_addr();
    let clients: Vec<_> = (0..4u32)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, "k").expect("connect");
                client.run(&edge_request(i, i + 1))
            })
        })
        .collect();
    // Let the burst reach the queue, then drain under it.
    std::thread::sleep(Duration::from_millis(50));
    let pending_before = server.scheduler().pending();
    server.shutdown();
    let mut served = 0usize;
    for handle in clients {
        // No client may hang or see a transport error: a request accepted
        // into the scheduler resolves with its result (the drop-drain runs
        // the queue), and one that raced the drain gets a structured
        // `shutdown` rejection — either way the connection completes.
        let reply = handle
            .join()
            .expect("client thread")
            .expect("no transport errors during drain");
        if reply.ok() {
            served += 1;
        } else {
            assert_eq!(
                reply.code(),
                Some("shutdown"),
                "{:?}",
                reply.json().to_compact()
            );
        }
    }
    assert!(
        served >= pending_before,
        "{pending_before} tickets were in flight at drain but only {served} resolved with results"
    );
}

#[test]
fn new_connections_are_refused_while_draining_and_after() {
    let server = server_with(256, Duration::from_millis(1), Quota::unlimited());
    let addr = server.local_addr();
    let mut client = Client::connect(addr, "k").expect("connect");
    assert!(client.run(&edge_request(0, 1)).unwrap().ok());
    server.shutdown();
    // After shutdown the listener is gone entirely; a connect (or a request
    // on a racing connection) fails instead of queueing work nowhere.
    match Client::connect(addr, "k") {
        Err(_) => {}
        Ok(mut late) => assert!(late.run(&edge_request(1, 2)).is_err()),
    }
}

#[test]
fn a_client_vanishing_mid_request_leaves_the_scheduler_serving() {
    let server = server_with(256, Duration::from_millis(100), Quota::unlimited());
    let addr = server.local_addr();
    // Hand-frame a valid run request, send it, and slam the connection shut
    // before the response can be written.
    let body = br#"{"op":"run","key":"k","facts":[{"rel":"edge","values":[{"u32":7},{"u32":8}],"prob":0.5}]}"#;
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(&(body.len() as u32).to_be_bytes())
            .expect("header");
        stream.write_all(body).expect("body");
        stream.flush().expect("flush");
        // Dropped here: the server's response write fails on a dead socket.
    }
    // Also slam a connection mid-frame (header promising more than is sent).
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&(64u32).to_be_bytes()).expect("header");
        stream.write_all(b"partial").expect("partial body");
    }
    // The scheduler (and the whole front end) keeps serving other clients.
    let mut client = Client::connect(addr, "k").expect("connect");
    for i in 0..3u32 {
        let reply = client.run(&edge_request(i, i + 1)).expect("transport ok");
        assert!(reply.ok(), "{:?}", reply.json().to_compact());
    }
    server.shutdown();
}
