//! Concurrency contracts of the serving layer: single compilation under
//! thread contention, eviction within the byte budget, and batch/sequential
//! result agreement across flush boundaries.

use lobster::{DynProgram, FactSet, ProvenanceKind, RuntimeOptions, Value};
use lobster_serve::{BatchScheduler, ProgramCache, SchedulerConfig};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const TC: &str = "type edge(x: u32, y: u32)
    rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
    query path";

/// Distinct sources (different constants) so each compiles to a distinct
/// cache entry.
fn variant_source(i: usize) -> String {
    format!(
        "type edge(x: u32, y: u32)
         rel edge = {{({i}, {})}}
         rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
         query path",
        i + 1
    )
}

#[test]
fn eight_threads_same_source_compile_exactly_once() {
    let cache = Arc::new(ProgramCache::new());
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Line all threads up so they hit the cache together.
                barrier.wait();
                cache
                    .get_or_compile(TC, ProvenanceKind::AddMultProb)
                    .expect("compiles")
            })
        })
        .collect();
    let programs: Vec<Arc<DynProgram>> = handles
        .into_iter()
        .map(|h| h.join().expect("thread"))
        .collect();

    // Exactly one compilation happened, and every thread got the same
    // artifact (pointer-equal Arc), not a private copy.
    let stats = cache.stats();
    assert_eq!(stats.compiles, 1, "stats: {stats:?}");
    assert_eq!(stats.hits + stats.misses + stats.coalesced, 8);
    assert_eq!(stats.misses, 1);
    for program in &programs[1..] {
        assert!(Arc::ptr_eq(&programs[0], program));
    }
    // And the shared artifact works.
    let mut sample = FactSet::new();
    sample.add("edge", &[Value::U32(0), Value::U32(1)], Some(0.5));
    let results = programs[0].run_batch(&[sample]).unwrap();
    assert!((results[0].probability("path", &[Value::U32(0), Value::U32(1)]) - 0.5).abs() < 1e-9);
}

#[test]
fn contended_threads_over_many_keys_compile_each_key_once() {
    let cache = Arc::new(ProgramCache::new());
    let sources: Arc<Vec<String>> = Arc::new((0..4).map(variant_source).collect());
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let sources = Arc::clone(&sources);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Each thread requests every key, starting at a different
                // offset so compiles overlap across keys.
                for i in 0..sources.len() {
                    let source = &sources[(t + i) % sources.len()];
                    cache
                        .get_or_compile(source, ProvenanceKind::Unit)
                        .expect("compiles");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("thread");
    }
    assert_eq!(cache.stats().compiles, 4);
    assert_eq!(cache.len(), 4);
}

#[test]
fn eviction_respects_the_size_budget() {
    // Budget sized for roughly two compiled variants of the program.
    let one = DynProgram::compile(&variant_source(0), ProvenanceKind::Unit)
        .unwrap()
        .compiled_size_bytes();
    let budget = one * 2 + one / 2;
    let cache = ProgramCache::with_budget(budget);

    for i in 0..6 {
        cache
            .get_or_compile(&variant_source(i), ProvenanceKind::Unit)
            .unwrap();
        assert!(
            cache.stats().resident_bytes <= budget,
            "after insert {i}: {} resident > {budget} budget",
            cache.stats().resident_bytes
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.compiles, 6);
    assert!(stats.evictions >= 4, "stats: {stats:?}");
    assert!(stats.resident_programs <= 2);

    // LRU order: the most recently inserted program survived…
    let options = RuntimeOptions::default();
    assert!(cache.contains(&variant_source(5), ProvenanceKind::Unit, &options));
    // …the oldest did not, and re-requesting it recompiles.
    assert!(!cache.contains(&variant_source(0), ProvenanceKind::Unit, &options));
    cache
        .get_or_compile(&variant_source(0), ProvenanceKind::Unit)
        .unwrap();
    assert_eq!(cache.stats().compiles, 7);
}

#[test]
fn recently_used_entries_survive_eviction_over_older_ones() {
    let one = DynProgram::compile(&variant_source(0), ProvenanceKind::Unit)
        .unwrap()
        .compiled_size_bytes();
    let cache = ProgramCache::with_budget(one * 2 + one / 2);
    cache
        .get_or_compile(&variant_source(0), ProvenanceKind::Unit)
        .unwrap();
    cache
        .get_or_compile(&variant_source(1), ProvenanceKind::Unit)
        .unwrap();
    // Touch 0 so 1 becomes the LRU victim when 2 arrives.
    cache
        .get_or_compile(&variant_source(0), ProvenanceKind::Unit)
        .unwrap();
    cache
        .get_or_compile(&variant_source(2), ProvenanceKind::Unit)
        .unwrap();
    let options = RuntimeOptions::default();
    assert!(cache.contains(&variant_source(0), ProvenanceKind::Unit, &options));
    assert!(!cache.contains(&variant_source(1), ProvenanceKind::Unit, &options));
    assert!(cache.contains(&variant_source(2), ProvenanceKind::Unit, &options));
}

/// One request per chain link plus a shared query edge — enough variety
/// that per-request results differ and misrouting would be caught.
fn request(i: u32) -> FactSet {
    let mut facts = FactSet::new();
    facts.add("edge", &[Value::U32(i), Value::U32(i + 1)], Some(0.9));
    facts.add("edge", &[Value::U32(i + 1), Value::U32(i + 2)], Some(0.8));
    facts
}

/// Asserts two results agree on every queried relation: same tuples, same
/// probabilities.
fn assert_same_outputs(a: &lobster::RunResult, b: &lobster::RunResult, what: &str) {
    assert_eq!(a.relations(), b.relations(), "{what}: relation sets differ");
    for relation in a.relations() {
        let mut left: Vec<_> = a
            .relation(relation)
            .iter()
            .map(|(t, o)| (t.clone(), o.probability))
            .collect();
        let mut right: Vec<_> = b
            .relation(relation)
            .iter()
            .map(|(t, o)| (t.clone(), o.probability))
            .collect();
        let by_tuple = |x: &(Vec<Value>, f64), y: &(Vec<Value>, f64)| {
            format!("{:?}", x.0).cmp(&format!("{:?}", y.0))
        };
        left.sort_by(by_tuple);
        right.sort_by(by_tuple);
        assert_eq!(left.len(), right.len(), "{what}: `{relation}` sizes");
        for ((lt, lp), (rt, rp)) in left.iter().zip(&right) {
            assert_eq!(lt, rt, "{what}: `{relation}` tuples");
            assert!((lp - rp).abs() < 1e-9, "{what}: `{relation}` {lp} vs {rp}");
        }
    }
}

/// Serves 10 requests through a scheduler cutting the set at several flush
/// boundaries (max_batch_size 4) with the given shard count, and asserts
/// every served result agrees with the whole set run as one `run_batch`
/// fix-point.
fn assert_flush_boundary_agreement(num_shards: usize) {
    let program = Arc::new(DynProgram::compile(TC, ProvenanceKind::AddMultProb).unwrap());
    let requests: Vec<FactSet> = (0..10).map(request).collect();

    // Ground truth: the whole set in one fix-point on one device.
    let reference = program.run_batch(&requests).unwrap();

    // The scheduler must split these 10 requests across at least 3 batches
    // (max_batch_size 4), so several flush boundaries cut the set — and with
    // `num_shards > 1` each of those batches is additionally cut across
    // shard devices.
    let scheduler = BatchScheduler::new(
        Arc::clone(&program),
        SchedulerConfig::default()
            .with_max_batch_size(4)
            .with_max_queue_delay(Duration::from_millis(1))
            .with_num_shards(num_shards),
    );
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| scheduler.submit(r.clone()))
        .collect();
    let served: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("request served"))
        .collect();
    let stats = scheduler.stats();
    assert_eq!(stats.samples, 10);
    assert!(stats.batches >= 3, "stats: {stats:?}");

    for (i, (batched, one_shot)) in served.iter().zip(&reference).enumerate() {
        assert_same_outputs(
            batched,
            one_shot,
            &format!("request {i} (shards {num_shards})"),
        );
    }
}

#[test]
fn scheduler_results_agree_with_one_shot_run_batch_across_flush_boundaries() {
    assert_flush_boundary_agreement(1);
}

#[test]
fn sharded_scheduler_results_agree_with_one_shot_run_batch_across_flush_boundaries() {
    // Every pooled batch additionally fans out across 2 and 3 shard devices;
    // flush boundaries and shard boundaries together must stay invisible.
    assert_flush_boundary_agreement(2);
    assert_flush_boundary_agreement(3);
}

#[test]
fn sharded_scheduler_gradients_stay_request_local() {
    use lobster::InputFactId;

    // Requests with *different* fact counts forced into one sharded batch:
    // the gradient remap must hold whichever shard a request's sample lands
    // on.
    let program = Arc::new(DynProgram::compile(TC, ProvenanceKind::DiffAddMultProb).unwrap());
    let requests: Vec<FactSet> = (0..6).map(request).collect();
    let mut small = FactSet::new();
    small.add("edge", &[Value::U32(90), Value::U32(91)], Some(0.7));

    let scheduler = BatchScheduler::new(
        Arc::clone(&program),
        SchedulerConfig::default()
            .with_max_batch_size(7)
            .with_max_queue_delay(Duration::from_secs(30))
            .with_num_shards(3),
    );
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| scheduler.submit(r.clone()))
        .collect();
    let t_small = scheduler.submit(small.clone());
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.wait().expect("served");
        let reference = &program
            .run_batch(std::slice::from_ref(&requests[i]))
            .unwrap()[0];
        let target = [Value::U32(i as u32), Value::U32(i as u32 + 2)];
        let got: std::collections::BTreeMap<_, _> =
            result.gradient("path", &target).into_iter().collect();
        let want: std::collections::BTreeMap<_, _> =
            reference.gradient("path", &target).into_iter().collect();
        assert_eq!(got.len(), want.len(), "request {i}");
        for (id, g) in &want {
            assert!(id.0 < requests[i].len() as u32, "request-local id {id}");
            assert!((got[id] - g).abs() < 1e-9, "request {i} fact {id}");
        }
    }
    let result = t_small.wait().expect("served");
    let grad = result.gradient("path", &[Value::U32(90), Value::U32(91)]);
    assert_eq!(grad.len(), 1);
    assert_eq!(grad[0].0, InputFactId(0));
    assert_eq!(scheduler.stats().batches, 1, "requests must share a batch");
}

#[test]
fn gradients_through_the_scheduler_use_request_local_fact_ids() {
    use lobster::InputFactId;

    let program = Arc::new(DynProgram::compile(TC, ProvenanceKind::DiffAddMultProb).unwrap());
    // Two requests with different fact counts, forced into one batch: the
    // second request's facts land at batch-relative ids 2.., so without
    // remapping its gradients would point into the first request's facts.
    let mut first = FactSet::new();
    first.add("edge", &[Value::U32(0), Value::U32(1)], Some(0.9));
    first.add("edge", &[Value::U32(1), Value::U32(2)], Some(0.8));
    let mut second = FactSet::new();
    second.add("edge", &[Value::U32(5), Value::U32(6)], Some(0.7));

    let scheduler = BatchScheduler::new(
        Arc::clone(&program),
        SchedulerConfig::default()
            .with_max_batch_size(2)
            .with_max_queue_delay(Duration::from_secs(30)),
    );
    let t_first = scheduler.submit(first.clone());
    let t_second = scheduler.submit(second.clone());
    let r_first = t_first.wait().unwrap();
    let r_second = t_second.wait().unwrap();
    assert_eq!(scheduler.stats().batches, 1, "requests must share a batch");

    // Reference: each request alone in its own run_batch, where ids are
    // request-local by construction (no inline facts, single sample).
    let ref_first = &program.run_batch(std::slice::from_ref(&first)).unwrap()[0];
    let ref_second = &program.run_batch(std::slice::from_ref(&second)).unwrap()[0];

    let target = [Value::U32(0), Value::U32(2)];
    let got: std::collections::BTreeMap<_, _> =
        r_first.gradient("path", &target).into_iter().collect();
    let want: std::collections::BTreeMap<_, _> =
        ref_first.gradient("path", &target).into_iter().collect();
    assert_eq!(got.len(), want.len());
    for (id, g) in &want {
        assert!(id.0 < first.len() as u32, "request-local id, got {id}");
        assert!((got[id] - g).abs() < 1e-9, "{id}: {} vs {g}", got[id]);
    }

    // The single-fact request's gradient must reference its own fact 0,
    // not batch-relative id 2.
    let target = [Value::U32(5), Value::U32(6)];
    let grad = r_second.gradient("path", &target);
    assert_eq!(grad.len(), 1);
    assert_eq!(grad[0].0, InputFactId(0));
    assert_eq!(ref_second.gradient("path", &target)[0].0, InputFactId(0));
    assert!((grad[0].1 - ref_second.gradient("path", &target)[0].1).abs() < 1e-9);
}

#[test]
fn scheduler_agreement_holds_under_concurrent_submission() {
    let program = Arc::new(DynProgram::compile(TC, ProvenanceKind::DiffAddMultProb).unwrap());
    let requests: Vec<FactSet> = (0..16).map(request).collect();
    let reference = program.run_batch(&requests).unwrap();

    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&program),
        SchedulerConfig::default()
            .with_max_batch_size(5)
            .with_max_queue_delay(Duration::from_millis(1))
            .with_workers(2),
    ));
    // Submit from 4 threads at once; collect (request index, result).
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4usize)
        .map(|t| {
            let scheduler = Arc::clone(&scheduler);
            let requests = requests.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (0..16)
                    .filter(|i| i % 4 == t)
                    .map(|i| (i, scheduler.run_one(requests[i].clone()).expect("served")))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in handles {
        for (i, result) in handle.join().expect("thread") {
            assert_same_outputs(&result, &reference[i], &format!("request {i}"));
        }
    }
    assert_eq!(scheduler.stats().samples, 16);
}
