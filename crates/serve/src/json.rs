//! A minimal JSON value, parser, and writer.
//!
//! The workspace builds offline and deliberately carries no serde
//! dependency, but the network protocol ([`Server`](crate::Server)) speaks JSON and the
//! bench bins merge sections into already-written artifacts. This module is
//! the small, dependency-free subset both need: a [`Json`] tree that
//! preserves object key order, a strict parser, and a writer whose output
//! round-trips through the parser.
//!
//! Numbers are held as `f64`. Every integer the protocol carries (u32
//! values, counters, fact ids) fits `f64` exactly up to 2^53; 64-bit values
//! above that lose precision and are therefore transported as strings by the
//! protocol layer, not by this module.

use std::fmt;

/// A parsed JSON value. Object keys keep their insertion order, so a
/// parse → modify → write round trip preserves the document layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it is a whole number that `f64`
    /// represents exactly (|n| ≤ 2^53).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Inserts or replaces `key` in an object (no-op on other variants).
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => pairs.push((key.to_string(), value)),
            }
        }
    }

    /// Serializes the value on one line.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serializes the value with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out.push('\n');
        out
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs in order.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] pointing at the first offending byte.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    parse_bytes(input.as_bytes())
}

/// Parses a complete JSON document from raw bytes, as read off a socket.
///
/// Structure is ASCII, so validation happens where non-ASCII bytes can
/// legally appear: invalid UTF-8 inside a string literal is reported at that
/// string, and a stray non-ASCII byte anywhere else fails as an unexpected
/// character — either way the connection thread gets a [`JsonError`] instead
/// of a panic.
///
/// # Errors
///
/// Returns a [`JsonError`] pointing at the first offending byte.
pub fn parse_bytes(input: &[u8]) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input,
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting ceiling: the protocol's documents are a few levels deep; a
/// recursion bomb in a request must not overflow the connection thread's
/// stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text.parse().map_err(|_| JsonError {
            at: start,
            message: format!("malformed number `{text}`"),
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                at: start,
                message: "number out of range".to_string(),
            });
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes copied as one str slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(value: &Json, out: &mut String, indent: Option<usize>, level: usize) {
    let (open_pad, close_pad, item_sep, kv_sep) = match indent {
        Some(width) => (
            format!("\n{}", " ".repeat(width * (level + 1))),
            format!("\n{}", " ".repeat(width * level)),
            ",".to_string(),
            ": ",
        ),
        None => (String::new(), String::new(), ", ".to_string(), ": "),
    };
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(&item_sep);
                }
                out.push_str(&open_pad);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(&item_sep);
                }
                out.push_str(&open_pad);
                write_escaped(key, out);
                out.push_str(kv_sep);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_arrays_and_objects() {
        let doc = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            value.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            value
                .get("c")
                .and_then(|c| c.get("d"))
                .and_then(Json::as_f64),
            Some(-2.5)
        );
        let reparsed = parse(&value.to_compact()).unwrap();
        assert_eq!(value, reparsed);
        let reparsed = parse(&value.to_pretty()).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn key_order_is_preserved_through_a_round_trip() {
        let doc = r#"{"zeta": 1, "alpha": 2, "mid": 3}"#;
        let out = parse(doc).unwrap().to_compact();
        let zeta = out.find("zeta").unwrap();
        let alpha = out.find("alpha").unwrap();
        let mid = out.find("mid").unwrap();
        assert!(zeta < alpha && alpha < mid, "reordered: {out}");
    }

    #[test]
    fn set_replaces_and_appends() {
        let mut value = parse(r#"{"a": 1}"#).unwrap();
        value.set("a", Json::from(2u64));
        value.set("b", Json::from("new"));
        assert_eq!(value.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(value.get("b").and_then(Json::as_str), Some("new"));
    }

    #[test]
    fn escapes_survive_both_directions() {
        let original = Json::Str("quote \" slash \\ newline \n tab \t unicode \u{1F980}".into());
        let parsed = parse(&original.to_compact()).unwrap();
        assert_eq!(original, parsed);
        // Raw astral chars and their surrogate-pair escape parse alike.
        assert_eq!(parse(r#""🦀""#).unwrap(), Json::Str("\u{1F980}".into()));
        let escaped = String::from(r#"""#) + "\\ud83e\\udd80" + r#"""#;
        assert_eq!(parse(&escaped).unwrap(), Json::Str("\u{1F980}".into()));
    }

    #[test]
    fn malformed_documents_are_rejected_with_positions() {
        for doc in [
            "",
            "{",
            "[1,]",
            r#"{"a" 1}"#,
            "tru",
            "1 2",
            r#""\ud800""#,
            "nan",
            &format!("{}1{}", "[".repeat(80), "]".repeat(80)),
        ] {
            assert!(parse(doc).is_err(), "accepted: {doc}");
        }
    }

    #[test]
    fn integers_print_without_a_fraction() {
        assert_eq!(Json::from(42u64).to_compact(), "42");
        assert_eq!(Json::Num(2.5).to_compact(), "2.5");
    }

    #[test]
    fn nesting_is_accepted_at_the_bound_and_rejected_one_past_it() {
        // The innermost value of k nested arrays parses at depth k, so the
        // ceiling admits exactly MAX_DEPTH brackets.
        let at_bound = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&at_bound).is_ok());
        let past_bound = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&past_bound).unwrap_err();
        assert!(err.message.contains("too deep"), "{err}");
        // Objects count against the same ceiling as arrays.
        let mixed = format!("{}1{}", r#"{"k": ["#.repeat(40), "]}".repeat(40));
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn invalid_utf8_payloads_error_instead_of_panicking() {
        // A lone continuation byte inside a string literal.
        assert!(parse_bytes(b"\"\xff\"").is_err());
        // A truncated multi-byte sequence mid-string.
        assert!(parse_bytes(b"{\"k\": \"\xe2\x82\"}").is_err());
        // Overlong encoding of `/`.
        assert!(parse_bytes(b"[\"\xc0\xaf\"]").is_err());
        // A stray non-ASCII byte outside any string.
        assert!(parse_bytes(b"\xf0\x9f\xa6\x80").is_err());
        // Valid bytes parse identically to the &str entry point.
        assert_eq!(parse_bytes("[1, \"🦀\"]".as_bytes()), parse("[1, \"🦀\"]"));
    }

    #[test]
    fn integer_boundaries_respect_the_exact_f64_range() {
        let max_exact = 1u64 << 53;
        // 2^53 and 2^53 - 1 are exact and round-trip through text.
        for n in [max_exact, max_exact - 1] {
            let parsed = parse(&Json::from(n).to_compact()).unwrap();
            assert_eq!(parsed.as_u64(), Some(n));
        }
        // 2^53 + 2 is representable in f64 but outside the exact window, so
        // the accessors refuse rather than hand back a possibly-off value.
        let past = Json::Num((max_exact + 2) as f64);
        assert_eq!(past.as_u64(), None);
        assert_eq!(past.as_i64(), None);
        // Signed boundaries: ±2^53 round-trip via From<i64>/as_i64 ...
        for n in [-(1i64 << 53), 1i64 << 53, -42, 0] {
            let parsed = parse(&Json::from(n).to_compact()).unwrap();
            assert_eq!(parsed.as_i64(), Some(n));
        }
        // ... while i64::MIN is far outside it and negatives are not u64s.
        assert_eq!(Json::Num(i64::MIN as f64).as_i64(), None);
        assert_eq!(Json::from(-1i64).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_i64(), None);
    }

    #[test]
    fn duplicate_keys_parse_and_get_returns_the_first() {
        let value = parse(r#"{"k": 1, "k": 2, "other": 3}"#).unwrap();
        assert_eq!(value.get("k").and_then(Json::as_u64), Some(1));
        // Both pairs survive a round trip in order — the writer does not
        // dedupe what the parser preserved.
        let out = value.to_compact();
        assert_eq!(out.matches("\"k\"").count(), 2);
        assert_eq!(parse(&out).unwrap(), value);
        // `set` targets the first occurrence, matching `get`.
        let mut value = value;
        value.set("k", Json::from(9u64));
        assert_eq!(value.get("k").and_then(Json::as_u64), Some(9));
    }
}
