//! The batching request scheduler.

use crate::error::ServeError;
use lobster::{
    DynProgram, DynSessionPool, DynShardedExecutor, FactSet, InputFactId, PooledSession, RunResult,
    SessionPoolStats, ShardConfig,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Recovers a queue guard from a poisoned lock. The queue is a plain
/// `VecDeque` plus `Instant`s — valid whatever a panicking holder was doing
/// mid-push — so a single worker panicking (e.g. on a pathological request)
/// must not cascade `expect` panics through every sibling worker, every
/// subsequent `submit`, and the scheduler's own `Drop`.
fn recover<'a, T>(
    result: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Knobs trading per-request latency against batched throughput.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// A batch is flushed as soon as it holds this many requests.
    pub max_batch_size: usize,
    /// A batch is flushed this long after its *first* request arrived, even
    /// if it is not full — bounding the queueing latency a request can pay.
    pub max_queue_delay: Duration,
    /// Number of worker threads draining the queue. Each worker runs whole
    /// batches, so more workers overlap fix-points of *different* batches.
    pub workers: usize,
    /// Number of shard devices each batch is partitioned across. `1` (the
    /// default) runs every batch on the program's own device; above 1, the
    /// scheduler holds **one** persistent [`DynShardedExecutor`] — shard
    /// worker threads spawned at construction and fed every pooled batch
    /// over its work queue — and batches fan out over devices derived with
    /// `Device::split_shards`, overlapping fix-points of *slices of the same
    /// batch*. Results — tuples, probabilities, request-local gradient ids —
    /// are identical either way.
    ///
    /// Because the executor (and its budget split) is shared by all
    /// scheduler workers, the shard devices' memory budgets sum to the
    /// program device's `memory_limit` *however many batches execute
    /// concurrently* — the envelope spans the scheduler, not one batch. A
    /// chunk that overflows its shard's budget spills (splits and retries)
    /// rather than failing outright.
    pub num_shards: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch_size: 32,
            max_queue_delay: Duration::from_millis(2),
            workers: 1,
            num_shards: 1,
        }
    }
}

impl SchedulerConfig {
    /// Builder-style setter for [`SchedulerConfig::max_batch_size`].
    pub fn with_max_batch_size(mut self, n: usize) -> Self {
        self.max_batch_size = n.max(1);
        self
    }

    /// Builder-style setter for [`SchedulerConfig::max_queue_delay`].
    pub fn with_max_queue_delay(mut self, delay: Duration) -> Self {
        self.max_queue_delay = delay;
        self
    }

    /// Builder-style setter for [`SchedulerConfig::workers`].
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Builder-style setter for [`SchedulerConfig::num_shards`].
    pub fn with_num_shards(mut self, n: usize) -> Self {
        self.num_shards = n.max(1);
        self
    }
}

/// Counters describing the batches a scheduler has run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Batches executed. Without sharding every batch costs one fix-point;
    /// with [`SchedulerConfig::num_shards`] above 1 see
    /// [`SchedulerStats::sharded_chunks`] for the fix-points actually paid.
    pub batches: u64,
    /// Shard chunks executed across all sharded batches — each chunk is one
    /// fix-point (spills included). `0` when `num_shards` is 1.
    pub sharded_chunks: u64,
    /// Requests served across all batches.
    pub samples: u64,
    /// Batches flushed because they reached `max_batch_size`.
    pub full_flushes: u64,
    /// Batches flushed by the `max_queue_delay` timer (or shutdown drain).
    pub timer_flushes: u64,
    /// Largest batch executed so far.
    pub largest_batch: usize,
}

struct Request {
    facts: FactSet,
    reply: mpsc::Sender<Result<RunResult, ServeError>>,
    /// When the request entered the queue; the flush timer of a batch runs
    /// from its *oldest* request, so queueing latency is bounded by
    /// `max_queue_delay` even when workers were busy while it waited.
    enqueued: Instant,
}

struct Shared {
    program: Arc<DynProgram>,
    /// Recycled sessions for single-device batches: each worker borrows a
    /// session per batch instead of re-building registry + inline facts.
    sessions: DynSessionPool,
    /// The persistent sharded executor (`num_shards > 1` only): shard worker
    /// threads are spawned once, here, and reused by every batch from every
    /// scheduler worker. Dropped — and its workers joined — with the
    /// scheduler.
    executor: Option<DynShardedExecutor>,
    /// Number of inline program facts a session pre-registers; batched
    /// execution hands out per-request fact ids starting after these.
    inline_facts: u32,
    config: SchedulerConfig,
    queue: Mutex<VecDeque<Request>>,
    /// Signalled on submit and on shutdown.
    arrivals: Condvar,
    shutdown: AtomicBool,
    /// Requests drained into a batch that has not finished replying yet.
    /// `queued + executing` is the scheduler's *pending* count — the depth
    /// an admission controller caps.
    executing: AtomicUsize,
    batches: AtomicU64,
    sharded_chunks: AtomicU64,
    samples: AtomicU64,
    full_flushes: AtomicU64,
    timer_flushes: AtomicU64,
    largest_batch: AtomicUsize,
}

/// A pending request's handle: redeem it with [`Ticket::wait`] (or
/// [`Ticket::wait_timeout`] when the caller holds a deadline).
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<RunResult, ServeError>>,
    /// Back-reference for telling a clean shutdown apart from a worker that
    /// died without responding. `Weak`: a stray ticket must not keep the
    /// scheduler's program/executor alive.
    shared: Weak<Shared>,
}

impl Ticket {
    /// Blocks until the batch containing this request has run and returns
    /// this request's result.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Lobster`] when the batch failed to execute
    /// (every request of the failing batch receives the same error),
    /// [`ServeError::ShutDown`] when the scheduler was shut down before the
    /// request was served, or [`ServeError::Disconnected`] when the worker
    /// holding the request died without responding *and* the scheduler was
    /// not shutting down — a crash, not a clean drain.
    pub fn wait(self) -> Result<RunResult, ServeError> {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(mpsc::RecvError) => Err(self.disconnect_error()),
        }
    }

    /// Like [`Ticket::wait`], but gives up after `timeout`.
    ///
    /// A timeout abandons only the *wait*: the request stays in the
    /// scheduler and still runs (and is still counted); its result is
    /// discarded when it arrives. Remote clients holding a response
    /// deadline use this so a slow batch cannot pin a connection thread
    /// forever.
    ///
    /// # Errors
    ///
    /// [`ServeError::TimedOut`] when `timeout` elapses first; otherwise as
    /// [`Ticket::wait`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<RunResult, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::TimedOut),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.disconnect_error()),
        }
    }

    /// Non-blocking probe: `Some(result)` once the batch has run.
    pub fn try_wait(&self) -> Option<Result<RunResult, ServeError>> {
        self.rx.try_recv().ok()
    }

    /// The reply sender vanished without sending: a clean shutdown only if
    /// the scheduler actually was (or is gone entirely — its `Drop` drains
    /// before releasing the allocation, so an unreachable `Shared` implies
    /// the drain finished). Anything else is a dead worker.
    fn disconnect_error(&self) -> ServeError {
        match self.shared.upgrade() {
            Some(shared) if !shared.shutdown.load(Ordering::SeqCst) => ServeError::Disconnected,
            _ => ServeError::ShutDown,
        }
    }
}

/// Accumulates per-request [`FactSet`]s into mini-batches and runs each
/// batch in one fix-point instead of one per request (the paper's batched
/// evaluation, applied to serving).
///
/// The execution state behind the batches is *persistent*: single-device
/// batches run on sessions recycled through a [`DynSessionPool`], and with
/// [`SchedulerConfig::num_shards`] above 1 every batch is fed to one
/// long-lived [`DynShardedExecutor`] whose shard worker threads are spawned
/// when the scheduler is built — so a batch pays neither session setup nor
/// thread spawn/join, the steady-state overheads that dominate at high
/// request rates. See `docs/ARCHITECTURE.md` for the full request
/// lifecycle.
///
/// Requests are submitted with [`BatchScheduler::submit`], which returns a
/// [`Ticket`] immediately; worker threads flush the queue whenever a batch
/// fills up ([`SchedulerConfig::max_batch_size`]) or the oldest queued
/// request has waited [`SchedulerConfig::max_queue_delay`]. Derived tuples
/// and probabilities are identical to running the same requests in one
/// [`DynProgram::run_batch`] call: samples are isolated by the sample-id
/// column, whatever batch each request lands in. Gradient entries are
/// rewritten to *request-local* fact ids — `InputFactId(i)` is the `i`-th
/// fact added to the submitted [`FactSet`] — with entries for other
/// requests' and inline program facts dropped, so they too are independent
/// of batch placement.
///
/// Dropping the scheduler drains the queue (every queued request still
/// runs), joins the scheduler workers, and tears down the persistent
/// executor's shard workers.
pub struct BatchScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("config", &self.shared.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl BatchScheduler {
    /// Spawns the worker threads for `program` with the given knobs.
    pub fn new(program: Arc<DynProgram>, config: SchedulerConfig) -> Self {
        let inline_facts = program.session().fact_count() as u32;
        // Build the per-scheduler execution state once, up front: a session
        // pool for single-device batches, and — when sharding — ONE
        // persistent executor whose shard workers serve every batch this
        // scheduler will ever run (spawn/join is paid here, not per batch).
        let sessions = program.session_pool();
        let executor = (config.num_shards > 1).then(|| {
            program.sharded_executor(ShardConfig::default().with_num_shards(config.num_shards))
        });
        let shared = Arc::new(Shared {
            program,
            sessions,
            executor,
            inline_facts,
            config: config.clone(),
            queue: Mutex::new(VecDeque::new()),
            arrivals: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executing: AtomicUsize::new(0),
            batches: AtomicU64::new(0),
            sharded_chunks: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            full_flushes: AtomicU64::new(0),
            timer_flushes: AtomicU64::new(0),
            largest_batch: AtomicUsize::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lobster-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        BatchScheduler { shared, workers }
    }

    /// The program this scheduler serves.
    pub fn program(&self) -> &Arc<DynProgram> {
        &self.shared.program
    }

    /// Enqueues one request and returns its [`Ticket`] without blocking.
    ///
    /// Malformed requests (unknown relation, wrong arity) are rejected here,
    /// before they can reach a batch: the returned ticket yields the
    /// [`LobsterError::BadFact`](lobster::LobsterError::BadFact) immediately,
    /// and the requests they would have been co-batched with are unaffected.
    pub fn submit(&self, facts: FactSet) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket {
            rx,
            shared: Arc::downgrade(&self.shared),
        };
        if let Err(e) = self.shared.program.validate_facts(&facts) {
            let _ = tx.send(Err(ServeError::Lobster(e)));
            return ticket;
        }
        let queued = {
            let mut queue = recover(self.shared.queue.lock());
            queue.push_back(Request {
                facts,
                reply: tx,
                enqueued: Instant::now(),
            });
            queue.len()
        };
        // Wake workers only on the transitions they act on — the first
        // request of a batch (a phase-1 sleeper must start its timer) and a
        // full batch (a phase-2 collector can flush early). Notifying on
        // every submit instead turns a hot submission stream into a wakeup
        // storm in which the collector rechecks a not-yet-full queue once
        // per request; in-between requests are picked up at flush time
        // regardless.
        if queued == 1 || queued >= self.shared.config.max_batch_size {
            self.shared.arrivals.notify_all();
        }
        ticket
    }

    /// Requests currently waiting in the queue (not yet drained into a
    /// batch).
    pub fn queued(&self) -> usize {
        recover(self.shared.queue.lock()).len()
    }

    /// Requests drained into batches that have not finished replying.
    pub fn executing(&self) -> usize {
        self.shared.executing.load(Ordering::Relaxed)
    }

    /// Requests the scheduler currently holds: queued plus executing. This
    /// is the depth an [`AdmissionController`](crate::AdmissionController)
    /// caps — everything a newly accepted request could wait behind.
    pub fn pending(&self) -> usize {
        // Read `executing` first: a request moving queue → batch between
        // the two reads is then counted twice (transiently high), never
        // missed — admission control must over-count, not under-count.
        let executing = self.executing();
        executing + self.queued()
    }

    /// A snapshot of the scheduler's session-pool counters (single-device
    /// batches borrow their sessions here).
    pub fn session_pool_stats(&self) -> SessionPoolStats {
        self.shared.sessions.stats()
    }

    /// Borrows a session from the scheduler's pool for *incremental*
    /// serving: a long-lived request can hold it across many
    /// `insert_facts` / `retract_facts` / `run_incremental` steps,
    /// re-evaluating only its deltas while the scheduler keeps serving
    /// batched one-shot requests around it. Dropping the guard resets the
    /// session — materialized fix point included — and returns it to the
    /// pool, so the next borrower cannot observe this request's deltas.
    pub fn acquire_session(&self) -> PooledSession<'_, DynProgram> {
        self.shared.sessions.acquire()
    }

    /// Convenience: submit one request and block for its result.
    ///
    /// # Errors
    ///
    /// See [`Ticket::wait`].
    pub fn run_one(&self, facts: FactSet) -> Result<RunResult, ServeError> {
        self.submit(facts).wait()
    }

    /// A snapshot of the scheduler counters.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            batches: self.shared.batches.load(Ordering::Relaxed),
            sharded_chunks: self.shared.sharded_chunks.load(Ordering::Relaxed),
            samples: self.shared.samples.load(Ordering::Relaxed),
            full_flushes: self.shared.full_flushes.load(Ordering::Relaxed),
            timer_flushes: self.shared.timer_flushes.load(Ordering::Relaxed),
            largest_batch: self.shared.largest_batch.load(Ordering::Relaxed),
        }
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.arrivals.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Collects the next batch off the queue, honouring `max_batch_size` and
/// `max_queue_delay`, or returns `None` when shut down with an empty queue.
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let config = &shared.config;
    let mut queue = recover(shared.queue.lock());
    'restart: loop {
        // Phase 1: wait for the first request (or shutdown).
        loop {
            if !queue.is_empty() {
                break;
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = recover(shared.arrivals.wait(queue));
        }
        // Phase 2: give the batch until `max_queue_delay` after its *oldest*
        // request arrived to fill up. Shutdown flushes immediately — the
        // drain must not dawdle. The lock is released while waiting, so a
        // sibling worker may drain the queue under us: the deadline is
        // re-derived from the *current* front each iteration, and an emptied
        // queue sends us back to phase 1 rather than flushing a phantom
        // batch (or punishing a fresh request with a dead request's expired
        // deadline).
        let mut timed_out = false;
        while queue.len() < config.max_batch_size && !shared.shutdown.load(Ordering::SeqCst) {
            let Some(front) = queue.front() else {
                continue 'restart;
            };
            let deadline = front.enqueued + config.max_queue_delay;
            let now = Instant::now();
            if now >= deadline {
                timed_out = true;
                break;
            }
            // The wait result is deliberately ignored: whether this wake was
            // a timeout or a notify, the loop top re-derives the deadline
            // from the *current* front and only declares a timeout when that
            // deadline has genuinely passed. Trusting `timed_out()` here
            // would flush a request that arrived during the wait against a
            // drained request's expired deadline.
            let (guard, _) = shared
                .arrivals
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
            if queue.is_empty() {
                continue 'restart;
            }
        }
        if queue.is_empty() {
            // A sibling drained the queue between our last wake and here.
            continue 'restart;
        }
        if queue.len() >= config.max_batch_size {
            shared.full_flushes.fetch_add(1, Ordering::Relaxed);
        } else {
            // Timer expiry or shutdown drain.
            debug_assert!(timed_out || shared.shutdown.load(Ordering::SeqCst));
            shared.timer_flushes.fetch_add(1, Ordering::Relaxed);
        }
        let n = queue.len().min(config.max_batch_size);
        // Move the requests from "queued" to "executing" under the queue
        // lock, so `pending()` never observes them in neither state.
        shared.executing.fetch_add(n, Ordering::Relaxed);
        return Some(queue.drain(..n).collect());
    }
}

/// Decrements `executing` when the batch is done — by `Drop`, so a worker
/// panicking mid-batch cannot leave its requests counted as in flight
/// forever (the admission depth would ratchet shut).
struct ExecutingGuard<'a> {
    shared: &'a Shared,
    n: usize,
}

impl Drop for ExecutingGuard<'_> {
    fn drop(&mut self) {
        self.shared.executing.fetch_sub(self.n, Ordering::Relaxed);
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(batch) = next_batch(shared) {
        let _executing = ExecutingGuard {
            shared,
            n: batch.len(),
        };
        if batch.is_empty() {
            continue;
        }
        // Move the fact sets out of the requests rather than cloning them:
        // request payloads are in the hot path of every batch.
        let (facts, replies): (Vec<FactSet>, Vec<_>) =
            batch.into_iter().map(|r| (r.facts, r.reply)).unzip();
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .samples
            .fetch_add(facts.len() as u64, Ordering::Relaxed);
        shared
            .largest_batch
            .fetch_max(facts.len(), Ordering::Relaxed);
        // The gradient remap below needs each request's fact count; snapshot
        // them before the sharded path takes ownership of the payloads.
        let request_lens: Vec<u32> = facts.iter().map(|f| f.len() as u32).collect();
        // With `num_shards > 1` the batch is handed — without copying a
        // fact — to the scheduler's persistent sharded executor: its
        // long-lived shard workers fan the batch out across shard devices
        // and merge results back into submission order with the same global
        // fact-id layout, so the request-local gradient remap below is
        // shard-agnostic. Single-device batches run on a pooled session, so
        // steady-state batches rebuild neither registry nor inline facts.
        let outcome = if let Some(executor) = &shared.executor {
            executor.run_batch_owned(facts).map(|(results, stats)| {
                shared
                    .sharded_chunks
                    .fetch_add(stats.executed_chunks as u64, Ordering::Relaxed);
                results
            })
        } else {
            shared.sessions.acquire().run_batch(&facts)
        };
        match outcome {
            Ok(mut results) => {
                // Raw gradient ids are batch-relative (all samples share one
                // forked registry, ids handed out in batch order after the
                // inline program facts). Translate each result's ids into
                // request-local indices — the position of the fact in the
                // submitted `FactSet` — and drop entries pointing at other
                // requests' or inline facts, so a client's gradients mean
                // the same thing whatever batch its request landed in.
                let mut next_id = shared.inline_facts;
                for (result, len) in results.iter_mut().zip(&request_lens) {
                    let start = next_id;
                    let len = *len;
                    next_id += len;
                    result.map_gradient_ids(|id| {
                        id.0.checked_sub(start)
                            .filter(|local| *local < len)
                            .map(InputFactId)
                    });
                }
                for (reply, result) in replies.into_iter().zip(results) {
                    // A dropped ticket just discards the result.
                    let _ = reply.send(Ok(result));
                }
            }
            Err(e) => {
                for reply in replies {
                    let _ = reply.send(Err(ServeError::Lobster(e.clone())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster::{ProvenanceKind, Value};

    const TC: &str = "type edge(x: u32, y: u32)
        rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
        query path";

    fn edge_request(a: u32, b: u32, p: f64) -> FactSet {
        let mut facts = FactSet::new();
        facts.add("edge", &[Value::U32(a), Value::U32(b)], Some(p));
        facts
    }

    fn program() -> Arc<DynProgram> {
        Arc::new(DynProgram::compile(TC, ProvenanceKind::AddMultProb).unwrap())
    }

    #[test]
    fn single_request_round_trips() {
        let scheduler = BatchScheduler::new(program(), SchedulerConfig::default());
        let result = scheduler.run_one(edge_request(0, 1, 0.75)).unwrap();
        assert!((result.probability("path", &[Value::U32(0), Value::U32(1)]) - 0.75).abs() < 1e-9);
        let stats = scheduler.stats();
        assert_eq!((stats.batches, stats.samples), (1, 1));
    }

    #[test]
    fn a_full_batch_flushes_without_waiting_for_the_timer() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(4)
                // A timer long enough that a timer flush would hang the test.
                .with_max_queue_delay(Duration::from_secs(30)),
        );
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| scheduler.submit(edge_request(i, i + 1, 0.5)))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let result = ticket.wait().unwrap();
            let (a, b) = (i as u32, i as u32 + 1);
            assert!(
                (result.probability("path", &[Value::U32(a), Value::U32(b)]) - 0.5).abs() < 1e-9
            );
        }
        assert!(scheduler.stats().full_flushes >= 1);
    }

    #[test]
    fn sharded_batches_round_trip_with_correct_results() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(4)
                .with_max_queue_delay(Duration::from_secs(30))
                .with_num_shards(2),
        );
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| scheduler.submit(edge_request(i * 10, i * 10 + 1, 0.25 + 0.1 * f64::from(i))))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let result = ticket.wait().unwrap();
            let (a, b) = (i as u32 * 10, i as u32 * 10 + 1);
            let expected = 0.25 + 0.1 * i as f64;
            assert!(
                (result.probability("path", &[Value::U32(a), Value::U32(b)]) - expected).abs()
                    < 1e-9
            );
        }
        let stats = scheduler.stats();
        assert_eq!(stats.samples, 4);
        // One full batch of 4 over 2 shards executes exactly 2 chunks (one
        // fix-point each) — the counter measures, it does not model.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.sharded_chunks, 2);
    }

    #[test]
    fn the_persistent_executor_serves_many_batches_and_tears_down_cleanly() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(2)
                .with_max_queue_delay(Duration::from_secs(30))
                .with_num_shards(2),
        );
        // 40 full batches through the same two shard workers. Every result
        // must be correct and every batch must pay its chunks — reuse may
        // not corrupt, leak, or accumulate.
        for round in 0..40u32 {
            let a = scheduler.submit(edge_request(round * 10, round * 10 + 1, 0.5));
            let b = scheduler.submit(edge_request(round * 10 + 2, round * 10 + 3, 0.5));
            for (ticket, x) in [(a, round * 10), (b, round * 10 + 2)] {
                let result = ticket.wait().unwrap();
                assert!(
                    (result.probability("path", &[Value::U32(x), Value::U32(x + 1)]) - 0.5).abs()
                        < 1e-9,
                    "round {round}"
                );
            }
        }
        let stats = scheduler.stats();
        assert_eq!(stats.samples, 80);
        assert_eq!(stats.batches, 40);
        // Two single-request chunks per batch, no spills: measured, not
        // modeled — a leak across batches would show up here.
        assert_eq!(stats.sharded_chunks, 80);
        drop(scheduler); // joins scheduler workers AND shard workers
    }

    #[test]
    fn single_device_batches_recycle_pooled_sessions_without_fact_leakage() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(1)
                .with_max_queue_delay(Duration::from_millis(1)),
        );
        // Sequential single-request batches all flow through one recycled
        // session; a fact leaking between batches would surface as an extra
        // `path` tuple or a wrong probability in a later request.
        for i in 0..30u32 {
            let result = scheduler
                .run_one(edge_request(0, 1, 0.1 + 0.02 * i as f64))
                .unwrap();
            let expected = 0.1 + 0.02 * f64::from(i);
            assert!(
                (result.probability("path", &[Value::U32(0), Value::U32(1)]) - expected).abs()
                    < 1e-9,
                "batch {i}"
            );
            assert_eq!(result.len("path"), 1, "batch {i}: leaked facts");
        }
    }

    #[test]
    fn acquired_incremental_sessions_reset_on_return_to_the_pool() {
        let scheduler = BatchScheduler::new(program(), SchedulerConfig::default());
        {
            let mut session = scheduler.acquire_session();
            session.insert_facts(&edge_request(0, 1, 0.5)).unwrap();
            let result = session.run_incremental().unwrap();
            assert!(
                (result.probability("path", &[Value::U32(0), Value::U32(1)]) - 0.5).abs() < 1e-9
            );
            assert!(session.is_materialized());
            // Grow the fix-point in place: the second call is a delta update
            // against the materialized state, not a from-scratch run.
            session.insert_facts(&edge_request(1, 2, 0.5)).unwrap();
            let result = session.run_incremental().unwrap();
            assert_eq!(result.len("path"), 3);
        } // guard drop returns the session to the pool, resetting it
        let mut session = scheduler.acquire_session();
        assert!(!session.is_materialized(), "recycled session leaked deltas");
        session.insert_facts(&edge_request(7, 8, 0.25)).unwrap();
        let result = session.run_incremental().unwrap();
        assert_eq!(result.len("path"), 1, "recycled session leaked facts");
        assert!((result.probability("path", &[Value::U32(7), Value::U32(8)]) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn drop_drains_queued_requests() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(64)
                .with_max_queue_delay(Duration::from_secs(30)),
        );
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| scheduler.submit(edge_request(i, i + 1, 0.5)))
            .collect();
        drop(scheduler);
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }

    #[test]
    fn trickled_requests_with_two_workers_are_all_served_without_phantom_batches() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(4)
                .with_max_queue_delay(Duration::from_micros(200))
                .with_workers(2),
        );
        // Trickle requests so timer flushes race both workers against the
        // queue (the stale-deadline case: one worker drains while the other
        // still holds the old front's expired deadline).
        let mut tickets = Vec::new();
        for i in 0..20u32 {
            tickets.push(scheduler.submit(edge_request(i, i + 1, 0.5)));
            if i % 3 == 0 {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        let stats = scheduler.stats();
        assert_eq!(stats.samples, 20);
        // Every counted flush carried at least one request.
        assert!(stats.batches <= 20, "stats: {stats:?}");
        assert_eq!(stats.full_flushes + stats.timer_flushes, stats.batches);
    }

    #[test]
    fn malformed_requests_are_rejected_at_submit_without_harming_the_batch() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(2)
                .with_max_queue_delay(Duration::from_millis(20)),
        );
        let good = scheduler.submit(edge_request(0, 1, 0.5));
        let mut unknown = FactSet::new();
        unknown.add("ghost", &[Value::U32(0)], None);
        let mut wrong_arity = FactSet::new();
        wrong_arity.add("edge", &[Value::U32(0)], None);
        // Both malformed requests fail immediately (no queueing), each with
        // its own BadFact...
        for bad in [scheduler.submit(unknown), scheduler.submit(wrong_arity)] {
            match bad.wait() {
                Err(ServeError::Lobster(lobster::LobsterError::BadFact { .. })) => {}
                other => panic!("expected BadFact, got {other:?}"),
            }
        }
        // ...while the co-submitted good request is served normally.
        let result = good.wait().unwrap();
        assert!((result.probability("path", &[Value::U32(0), Value::U32(1)]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn a_poisoned_queue_lock_does_not_take_down_the_scheduler() {
        let scheduler = Arc::new(BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(1)
                .with_max_queue_delay(Duration::from_millis(1)),
        ));
        // Poison the queue mutex: a thread panics while holding it. Every
        // lock site — submit, queued(), the workers' next_batch, Drop's
        // drain — must recover the guard instead of cascading the panic.
        let poisoner = {
            let scheduler = Arc::clone(&scheduler);
            std::thread::spawn(move || {
                let _guard = scheduler.shared.queue.lock().unwrap();
                panic!("deliberate poison");
            })
        };
        assert!(poisoner.join().is_err(), "the poisoner must panic");
        assert!(scheduler.shared.queue.lock().is_err(), "lock not poisoned");
        // The scheduler still serves, counts, and drains.
        let result = scheduler.run_one(edge_request(0, 1, 0.5)).unwrap();
        assert!((result.probability("path", &[Value::U32(0), Value::U32(1)]) - 0.5).abs() < 1e-9);
        assert_eq!(scheduler.queued(), 0);
        let late = scheduler.submit(edge_request(1, 2, 0.5));
        drop(Arc::into_inner(scheduler).expect("sole owner"));
        assert!(late.wait().is_ok(), "drop must still drain the queue");
    }

    #[test]
    fn a_dead_sender_is_a_disconnect_while_the_scheduler_lives() {
        let scheduler = BatchScheduler::new(program(), SchedulerConfig::default());
        // Forge the failure `wait` must classify: the reply sender vanished
        // (as after a worker crash) while the scheduler is alive and healthy.
        let (tx, rx) = mpsc::channel();
        drop(tx);
        let ticket = Ticket {
            rx,
            shared: Arc::downgrade(&scheduler.shared),
        };
        assert_eq!(ticket.wait().unwrap_err(), ServeError::Disconnected);
        // The scheduler itself keeps serving after the lost request.
        assert!(scheduler.run_one(edge_request(0, 1, 0.5)).is_ok());
    }

    #[test]
    fn a_dead_sender_during_shutdown_is_a_clean_shutdown() {
        let scheduler = BatchScheduler::new(program(), SchedulerConfig::default());
        let shared = Arc::clone(&scheduler.shared);
        let (tx, rx) = mpsc::channel();
        drop(tx);
        let mid_shutdown = Ticket {
            rx,
            shared: Arc::downgrade(&shared),
        };
        let (tx, rx) = mpsc::channel();
        drop(tx);
        let after_teardown = Ticket {
            rx,
            shared: Arc::downgrade(&scheduler.shared),
        };
        drop(scheduler);
        // The shutdown flag is set (observed via our kept Arc)...
        assert_eq!(mid_shutdown.wait().unwrap_err(), ServeError::ShutDown);
        drop(shared);
        // ...and once the Shared allocation itself is gone (drain finished),
        // an unresolvable Weak means the same thing.
        assert_eq!(after_teardown.wait().unwrap_err(), ServeError::ShutDown);
    }

    #[test]
    fn wait_timeout_bounds_the_wait_without_cancelling_the_request() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(64)
                // A flush timer long enough that only shutdown drains.
                .with_max_queue_delay(Duration::from_secs(30)),
        );
        let ticket = scheduler.submit(edge_request(0, 1, 0.5));
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(20)).unwrap_err(),
            ServeError::TimedOut
        );
        // The abandoned request is still in the scheduler and still runs —
        // the drop-drain executes it (samples counts served requests).
        drop(scheduler);
    }

    #[test]
    fn wait_timeout_returns_the_result_when_the_batch_beats_the_deadline() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(1)
                .with_max_queue_delay(Duration::from_millis(1)),
        );
        let ticket = scheduler.submit(edge_request(0, 1, 0.75));
        let result = ticket.wait_timeout(Duration::from_secs(30)).unwrap();
        assert!((result.probability("path", &[Value::U32(0), Value::U32(1)]) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn pending_tracks_queued_plus_executing() {
        let scheduler = BatchScheduler::new(
            program(),
            SchedulerConfig::default()
                .with_max_batch_size(64)
                .with_max_queue_delay(Duration::from_secs(30)),
        );
        assert_eq!(scheduler.pending(), 0);
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| scheduler.submit(edge_request(i, i + 1, 0.5)))
            .collect();
        // Nothing has flushed (the timer is 30s): all three are queued.
        assert_eq!(scheduler.pending(), 3);
        drop(scheduler);
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }

    #[test]
    fn execution_failures_reach_every_request_in_the_batch() {
        // A device with a absurdly small memory budget makes every run OOM —
        // an execution error `submit` cannot screen out, so the whole batch
        // reports it.
        let program = Arc::new(
            lobster::Lobster::builder(TC)
                .device(lobster::Device::new(lobster::DeviceConfig {
                    parallelism: 1,
                    memory_limit: Some(8),
                    hash_table_expansion: 2,
                    min_parallel_rows: 4096,
                }))
                .provenance(ProvenanceKind::AddMultProb)
                .compile()
                .unwrap(),
        );
        let scheduler = BatchScheduler::new(
            program,
            SchedulerConfig::default()
                .with_max_batch_size(2)
                .with_max_queue_delay(Duration::from_secs(30)),
        );
        let a = scheduler.submit(edge_request(0, 1, 0.5));
        let b = scheduler.submit(edge_request(1, 2, 0.5));
        assert!(matches!(a.wait(), Err(ServeError::Lobster(_))));
        assert!(matches!(b.wait(), Err(ServeError::Lobster(_))));
    }
}
