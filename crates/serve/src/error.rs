//! Error type of the serving layer.

use lobster::LobsterError;
use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Compiling or executing the program failed. When a batched execution
    /// fails, every request in the batch receives the same error.
    Lobster(LobsterError),
    /// The scheduler was shut down before the request was served.
    ShutDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Lobster(e) => write!(f, "{e}"),
            ServeError::ShutDown => write!(f, "scheduler shut down before the request was served"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<LobsterError> for ServeError {
    fn from(e: LobsterError) -> Self {
        ServeError::Lobster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e: ServeError = LobsterError::Config {
            message: "no provenance".into(),
        }
        .into();
        assert!(e.to_string().contains("no provenance"));
        assert!(ServeError::ShutDown.to_string().contains("shut down"));
    }
}
