//! Error type of the serving layer.

use lobster::LobsterError;
use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Compiling or executing the program failed. When a batched execution
    /// fails, every request in the batch receives the same error.
    Lobster(LobsterError),
    /// The scheduler was shut down before the request was served.
    ShutDown,
    /// The worker holding the request died without responding while the
    /// scheduler was *not* shutting down — a crash, not a clean drain. The
    /// scheduler itself keeps serving; only this request is lost.
    Disconnected,
    /// A [`Ticket::wait_timeout`](crate::Ticket::wait_timeout) deadline
    /// elapsed before the batch ran. The request itself is still in the
    /// scheduler and still runs; only the wait was abandoned.
    TimedOut,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Lobster(e) => write!(f, "{e}"),
            ServeError::ShutDown => write!(f, "scheduler shut down before the request was served"),
            ServeError::Disconnected => {
                write!(
                    f,
                    "scheduler worker disconnected without serving the request"
                )
            }
            ServeError::TimedOut => write!(f, "timed out waiting for the request's batch"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<LobsterError> for ServeError {
    fn from(e: LobsterError) -> Self {
        ServeError::Lobster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e: ServeError = LobsterError::Config {
            message: "no provenance".into(),
        }
        .into();
        assert!(e.to_string().contains("no provenance"));
        assert!(ServeError::ShutDown.to_string().contains("shut down"));
    }
}
