//! API keys and per-key request quotas.
//!
//! The network front end ([`crate::net`]) authenticates every request
//! against a [`KeyStore`]: a map from API key to a token-bucket quota.
//! Authentication answers two independent questions — *is this client who
//! they claim* (key lookup) and *may they submit right now* (quota) — and
//! both are answered **before** the request touches the scheduler queue, so
//! an over-quota client cannot displace in-quota traffic.
//!
//! Quotas are token buckets: a key holds up to `burst` tokens, refilled at
//! `per_second` tokens per second; each admitted request spends one. A spent
//! bucket rejects with the exact [`Duration`] until the next token — the
//! client-visible `retry_after_ms` — so well-behaved clients back off with
//! precision instead of hammering.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The quota attached to one API key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quota {
    /// Sustained admission rate, in requests per second.
    pub per_second: f64,
    /// Burst capacity: requests admitted back-to-back from a full bucket.
    pub burst: u32,
}

impl Quota {
    /// A quota admitting `per_second` sustained requests with the given
    /// burst.
    pub fn per_second(per_second: f64, burst: u32) -> Self {
        Quota {
            per_second: per_second.max(f64::MIN_POSITIVE),
            burst: burst.max(1),
        }
    }

    /// A quota that never rejects (practically unlimited).
    pub fn unlimited() -> Self {
        Quota {
            per_second: f64::MAX,
            burst: u32::MAX,
        }
    }
}

/// One key's live bucket state.
#[derive(Debug)]
struct Bucket {
    quota: Quota,
    /// Tokens available, in `[0, burst]`.
    tokens: f64,
    /// When `tokens` was last refilled.
    refilled: Instant,
    /// Requests this key has had admitted.
    admitted: u64,
    /// Requests this key has had rejected over quota.
    rejected: u64,
}

impl Bucket {
    fn refill(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.quota.per_second).min(self.quota.burst as f64);
        self.refilled = now;
    }
}

/// Why a request was turned away at the door.
#[derive(Debug, Clone, PartialEq)]
pub enum AuthError {
    /// The presented key is not in the store (or no key was presented).
    Unauthorized,
    /// The key is valid but its bucket is empty; a token will be available
    /// after `retry_after`.
    QuotaExceeded {
        /// Time until the bucket holds a full token again.
        retry_after: Duration,
    },
}

/// Counters describing a [`KeyStore`]'s decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuthStats {
    /// Requests admitted (a token was spent).
    pub admitted: u64,
    /// Requests presenting an unknown key.
    pub unauthorized: u64,
    /// Requests rejected because their key's bucket was empty.
    pub quota_rejected: u64,
}

/// A map from API key to token-bucket quota, shared by every connection
/// thread of a server.
///
/// All methods take `&self`; the store is `Sync`. Keys are compared as
/// whole strings via hash-map lookup. An empty store rejects everything —
/// a server is closed by default and opened key by key.
#[derive(Debug, Default)]
pub struct KeyStore {
    buckets: Mutex<HashMap<String, Bucket>>,
    unauthorized: Mutex<u64>,
}

impl KeyStore {
    /// An empty store: every request is [`AuthError::Unauthorized`] until
    /// keys are added.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a key with the given quota. Replacing an existing
    /// key resets its bucket to full and keeps its counters.
    pub fn add_key(&self, key: impl Into<String>, quota: Quota) {
        let mut buckets = self.lock_buckets();
        let key = key.into();
        let (admitted, rejected) = buckets
            .get(&key)
            .map_or((0, 0), |b| (b.admitted, b.rejected));
        buckets.insert(
            key,
            Bucket {
                quota,
                tokens: quota.burst as f64,
                refilled: Instant::now(),
                admitted,
                rejected,
            },
        );
    }

    /// Removes a key; subsequent requests with it are unauthorized.
    pub fn remove_key(&self, key: &str) {
        self.lock_buckets().remove(key);
    }

    /// Checks `key` and spends one quota token on success.
    ///
    /// # Errors
    ///
    /// [`AuthError::Unauthorized`] for unknown keys,
    /// [`AuthError::QuotaExceeded`] (with the exact wait for the next token)
    /// for empty buckets.
    pub fn check(&self, key: &str) -> Result<(), AuthError> {
        let now = Instant::now();
        let mut buckets = self.lock_buckets();
        let Some(bucket) = buckets.get_mut(key) else {
            drop(buckets);
            *self
                .unauthorized
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
            return Err(AuthError::Unauthorized);
        };
        bucket.refill(now);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            bucket.admitted += 1;
            Ok(())
        } else {
            bucket.rejected += 1;
            let missing = 1.0 - bucket.tokens;
            let retry_after = Duration::from_secs_f64(missing / bucket.quota.per_second);
            Err(AuthError::QuotaExceeded { retry_after })
        }
    }

    /// A snapshot of the store's counters, summed over all keys.
    pub fn stats(&self) -> AuthStats {
        let buckets = self.lock_buckets();
        AuthStats {
            admitted: buckets.values().map(|b| b.admitted).sum(),
            quota_rejected: buckets.values().map(|b| b.rejected).sum(),
            unauthorized: *self
                .unauthorized
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.lock_buckets().len()
    }

    /// `true` when no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock_buckets(&self) -> std::sync::MutexGuard<'_, HashMap<String, Bucket>> {
        // Bucket state is plain data, valid whatever a panicking holder was
        // doing — recover the guard rather than cascading the panic.
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_keys_are_unauthorized() {
        let store = KeyStore::new();
        assert_eq!(store.check("ghost"), Err(AuthError::Unauthorized));
        store.add_key("real", Quota::unlimited());
        assert_eq!(store.check("ghost"), Err(AuthError::Unauthorized));
        assert!(store.check("real").is_ok());
        let stats = store.stats();
        assert_eq!((stats.admitted, stats.unauthorized), (1, 2));
    }

    #[test]
    fn burst_admits_then_quota_rejects_with_a_positive_retry_after() {
        let store = KeyStore::new();
        // 1 token/hour effectively: the bucket will not refill mid-test.
        store.add_key("k", Quota::per_second(1.0 / 3600.0, 2));
        assert!(store.check("k").is_ok());
        assert!(store.check("k").is_ok());
        match store.check("k") {
            Err(AuthError::QuotaExceeded { retry_after }) => {
                assert!(retry_after > Duration::from_secs(60), "{retry_after:?}");
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
        let stats = store.stats();
        assert_eq!((stats.admitted, stats.quota_rejected), (2, 1));
    }

    #[test]
    fn buckets_refill_over_time() {
        let store = KeyStore::new();
        store.add_key("k", Quota::per_second(1000.0, 1));
        assert!(store.check("k").is_ok());
        // At 1000 tokens/sec a few milliseconds refill the single-token
        // bucket.
        std::thread::sleep(Duration::from_millis(5));
        assert!(store.check("k").is_ok());
    }

    #[test]
    fn removed_keys_stop_authenticating() {
        let store = KeyStore::new();
        store.add_key("k", Quota::unlimited());
        assert!(store.check("k").is_ok());
        store.remove_key("k");
        assert_eq!(store.check("k"), Err(AuthError::Unauthorized));
    }
}
