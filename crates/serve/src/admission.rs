//! Queue-depth admission control: shed load instead of queueing unboundedly.
//!
//! A batching scheduler with an unbounded queue has no worst-case latency:
//! when offered load exceeds capacity the queue — and every accepted
//! request's wait — grows without bound. The [`AdmissionController`] caps
//! the number of requests the scheduler may hold (queued + executing); a
//! request arriving above the cap is **shed** with a structured
//! retry-after instead of enqueued. Accepted requests therefore wait behind
//! at most `max_pending` others, which is what bounds the served p99 under
//! overload (`BENCH_serve.json`, `overload` section).
//!
//! The retry-after hint is derived from an exponentially-weighted moving
//! average of observed request service time: a shed client is told to come
//! back roughly when the current backlog will have drained. The estimate is
//! deliberately conservative (clamped to [`AdmissionConfig::min_retry`],
//! [`AdmissionConfig::max_retry`]) — its job is to spread retries out, not
//! to promise a slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Knobs of the [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Requests the scheduler may hold (queued + executing) before arrivals
    /// are shed.
    pub max_pending: usize,
    /// Floor for the retry-after hint.
    pub min_retry: Duration,
    /// Ceiling for the retry-after hint.
    pub max_retry: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_pending: 256,
            min_retry: Duration::from_millis(1),
            max_retry: Duration::from_secs(5),
        }
    }
}

impl AdmissionConfig {
    /// Builder-style setter for [`AdmissionConfig::max_pending`].
    pub fn with_max_pending(mut self, n: usize) -> Self {
        self.max_pending = n.max(1);
        self
    }
}

/// Counters describing an [`AdmissionController`]'s decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted to the scheduler queue.
    pub admitted: u64,
    /// Requests shed at the door with a retry-after.
    pub shed: u64,
}

/// Decides, per request, whether the scheduler may take one more.
///
/// The controller holds no queue of its own — it reads the scheduler's live
/// pending count (passed in by the caller, who owns the scheduler handle)
/// and keeps only counters and the service-time EWMA. All methods take
/// `&self`.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    admitted: AtomicU64,
    shed: AtomicU64,
    /// EWMA of per-request service time (submit → resolve), in nanoseconds;
    /// `0` until the first observation.
    ewma_service_ns: Mutex<f64>,
}

impl AdmissionController {
    /// A controller with the given knobs.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            ewma_service_ns: Mutex::new(0.0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Admission decision for one arriving request given the scheduler's
    /// current pending count (queued + executing).
    ///
    /// # Errors
    ///
    /// Returns the retry-after hint when the request must be shed.
    pub fn admit(&self, pending: usize) -> Result<(), Duration> {
        if pending < self.config.max_pending {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            self.shed.fetch_add(1, Ordering::Relaxed);
            Err(self.retry_after(pending))
        }
    }

    /// Feeds one completed request's observed service time (submit →
    /// resolve) into the EWMA behind the retry-after estimate.
    pub fn observe(&self, service_time: Duration) {
        let mut ewma = self
            .ewma_service_ns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let sample = service_time.as_nanos() as f64;
        // alpha 0.2: a few dozen requests dominate the estimate, one
        // descheduling blip does not.
        *ewma = if *ewma == 0.0 {
            sample
        } else {
            0.8 * *ewma + 0.2 * sample
        };
    }

    /// The hint a request shed at `pending` depth receives: the estimated
    /// time for the excess backlog (everything beyond the cap, plus this
    /// request) to drain, clamped to the configured window.
    fn retry_after(&self, pending: usize) -> Duration {
        let ewma_ns = *self
            .ewma_service_ns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let excess = pending.saturating_sub(self.config.max_pending) + 1;
        let estimate = if ewma_ns > 0.0 {
            Duration::from_nanos((ewma_ns * excess as f64) as u64)
        } else {
            // No completions observed yet — fall back to the floor; the
            // point is a non-zero, structured backoff, not accuracy.
            self.config.min_retry
        };
        estimate.clamp(self.config.min_retry, self.config.max_retry)
    }

    /// A snapshot of the decision counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_below_the_cap_and_sheds_at_it() {
        let controller = AdmissionController::new(AdmissionConfig::default().with_max_pending(2));
        assert!(controller.admit(0).is_ok());
        assert!(controller.admit(1).is_ok());
        let retry = controller.admit(2).expect_err("at the cap");
        assert!(retry >= controller.config().min_retry);
        let stats = controller.stats();
        assert_eq!((stats.admitted, stats.shed), (2, 1));
    }

    #[test]
    fn retry_after_scales_with_the_backlog_and_observed_service_time() {
        let controller = AdmissionController::new(AdmissionConfig::default().with_max_pending(4));
        for _ in 0..10 {
            controller.observe(Duration::from_millis(10));
        }
        let small = controller.admit(4).expect_err("shed");
        let large = controller.admit(40).expect_err("shed");
        // One excess request ≈ one service time; 37 excess ≈ 37 of them.
        assert!(small >= Duration::from_millis(5), "{small:?}");
        assert!(large > small * 10, "{large:?} vs {small:?}");
    }

    #[test]
    fn retry_after_is_clamped_to_the_configured_window() {
        let config = AdmissionConfig {
            max_pending: 1,
            min_retry: Duration::from_millis(2),
            max_retry: Duration::from_millis(50),
        };
        let controller = AdmissionController::new(config);
        // No observations yet: the floor.
        assert_eq!(
            controller.admit(1).expect_err("shed"),
            Duration::from_millis(2)
        );
        controller.observe(Duration::from_secs(10));
        // A huge backlog times a huge EWMA still respects the ceiling.
        assert_eq!(
            controller.admit(1000).expect_err("shed"),
            Duration::from_millis(50)
        );
    }
}
