//! The network front end: a std-TCP, length-prefixed JSON protocol over the
//! [`BatchScheduler`], with API-key auth, quota enforcement, queue-depth
//! admission control, and graceful drain.
//!
//! No async runtime — matching the workspace's std-threads stance, the
//! server is one accept thread plus one plain thread per connection, and
//! every blocking wait is bounded (read polls observe the drain flag, ticket
//! waits carry [`ServerConfig::request_timeout`]). A connection costs a
//! thread, which is the right trade here: the expensive resource is the
//! fix-point, not the socket, and admission control bounds how much work
//! connections can enqueue no matter how many there are.
//!
//! # Protocol
//!
//! Every message — both directions — is one *frame*: a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 JSON. Frames above
//! [`ServerConfig::max_frame_bytes`] are rejected without being read.
//! Requests are objects with an `"op"`:
//!
//! ```json
//! {"op": "run", "key": "...", "facts": [
//!     {"rel": "edge", "values": [{"u32": 0}, {"u32": 1}], "prob": 0.9}]}
//! {"op": "metrics", "key": "..."}
//! {"op": "ping"}
//! ```
//!
//! Values are tagged objects — `{"u32": n}`, `{"i64": n}` (as a string when
//! outside ±2^53), `{"f64": x}`, `{"bool": b}`, `{"sym": "text"}` (interned
//! into the process-wide symbol table on receipt), `{"sym_id": n}` (a raw
//! already-interned id) — and responses resolve interned symbols back to
//! `{"sym": "text"}` where possible. Because compilation and the wire layer
//! share one interner, ids in request facts agree with the ids symbol
//! constants compiled to, across every pooled session on the server. A successful `run` answers
//!
//! ```json
//! {"ok": true, "relations": {"path": [
//!     {"tuple": [{"u32": 0}, {"u32": 1}], "prob": 0.9, "grad": [[0, 1.0]]}]},
//!  "iterations": 3}
//! ```
//!
//! and every rejection is structured:
//!
//! ```json
//! {"ok": false, "code": "shed", "error": "...", "retry_after_ms": 12}
//! ```
//!
//! Codes: `unauthorized`, `quota` (carries `retry_after_ms`), `shed`
//! (carries `retry_after_ms`), `bad-request`, `execution`, `timeout`,
//! `shutdown`, `disconnected`. The request pipeline is strictly
//! frame → auth ([`KeyStore`]) → admission ([`AdmissionController`], capped
//! against the scheduler's live pending depth) → scheduler — a request
//! pays nothing downstream of the first stage that rejects it, so abusive
//! or over-quota traffic cannot displace admitted work.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] flips the drain flag, wakes the accept loop, and
//! joins: new connections are refused, idle connections are told
//! `"shutdown"` and closed, and connections with a request in flight write
//! that response first — in-flight tickets resolve, because dropping the
//! scheduler drains its queue before the workers exit.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats};
use crate::auth::{AuthError, AuthStats, KeyStore};
use crate::cache::{CacheStats, ProgramCache};
use crate::error::ServeError;
use crate::json::{obj, parse, Json};
use crate::scheduler::{BatchScheduler, SchedulerConfig};
use lobster::{DynProgram, FactSet, LobsterError, RunResult, SymbolTable, Value};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Scheduler knobs (batching, workers, shards).
    pub scheduler: SchedulerConfig,
    /// Admission-control knobs (pending cap, retry-after window).
    pub admission: AdmissionConfig,
    /// Largest accepted frame payload. Oversized frames are rejected before
    /// allocation.
    pub max_frame_bytes: usize,
    /// How long a connection waits for its request's batch before answering
    /// `timeout`. The request still runs; only the wait is abandoned.
    pub request_timeout: Duration,
    /// The program cache whose stats the metrics endpoint reports (the
    /// cache the server's program was compiled through, typically).
    pub cache: Option<Arc<ProgramCache>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            scheduler: SchedulerConfig::default(),
            admission: AdmissionConfig::default(),
            max_frame_bytes: 4 << 20,
            request_timeout: Duration::from_secs(30),
            cache: None,
        }
    }
}

/// Counters describing a [`Server`]'s connections and requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections refused because the server was draining.
    pub connections_refused: u64,
    /// Connections currently open.
    pub open_connections: usize,
    /// `run` requests answered successfully.
    pub requests_served: u64,
    /// Requests rejected at any stage (auth, quota, admission, parse).
    pub requests_rejected: u64,
}

struct ServerShared {
    scheduler: BatchScheduler,
    keys: KeyStore,
    admission: AdmissionController,
    config: ServerConfig,
    addr: SocketAddr,
    started: Instant,
    draining: AtomicBool,
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    open_connections: AtomicUsize,
    requests_served: AtomicU64,
    requests_rejected: AtomicU64,
}

/// The TCP front end: accept loop, per-connection threads, and the
/// frame → auth → admission → scheduler pipeline.
///
/// Construct with [`Server::bind`]; stop with [`Server::shutdown`] (graceful
/// drain) or by dropping (which shuts down the same way).
pub struct Server {
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `program` behind a [`BatchScheduler`] built from
    /// `config.scheduler`. `keys` is the admission list — an empty store
    /// rejects every request until keys are added via [`Server::keys`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        program: Arc<DynProgram>,
        keys: KeyStore,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            scheduler: BatchScheduler::new(program, config.scheduler.clone()),
            keys,
            admission: AdmissionController::new(config.admission.clone()),
            config,
            addr: local_addr,
            started: Instant::now(),
            draining: AtomicBool::new(false),
            connections_accepted: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            open_connections: AtomicUsize::new(0),
            requests_served: AtomicU64::new(0),
            requests_rejected: AtomicU64::new(0),
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("lobster-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &connections))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The key store — add or revoke API keys at runtime.
    pub fn keys(&self) -> &KeyStore {
        &self.shared.keys
    }

    /// The scheduler behind the wire (for tests and in-process callers).
    pub fn scheduler(&self) -> &BatchScheduler {
        &self.shared.scheduler
    }

    /// A snapshot of the connection/request counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.shared.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.shared.connections_refused.load(Ordering::Relaxed),
            open_connections: self.shared.open_connections.load(Ordering::Relaxed),
            requests_served: self.shared.requests_served.load(Ordering::Relaxed),
            requests_rejected: self.shared.requests_rejected.load(Ordering::Relaxed),
        }
    }

    /// A snapshot of the admission-control counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.shared.admission.stats()
    }

    /// A snapshot of the auth counters.
    pub fn auth_stats(&self) -> AuthStats {
        self.shared.keys.stats()
    }

    /// The metrics document served by the `metrics` op, as JSON (what an
    /// in-process caller scrapes instead of opening a socket).
    pub fn metrics_json(&self) -> Json {
        metrics_json(&self.shared)
    }

    /// Graceful drain: refuse new connections, let every connection finish
    /// (an in-flight request writes its response; idle connections are told
    /// `shutdown`), join all threads, then tear down the scheduler —
    /// whose own drop drains its queue, so every accepted ticket resolves.
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // The accept thread has exited: nobody pushes new handles anymore.
        let handles = std::mem::take(
            &mut *self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for handle in handles {
            let _ = handle.join();
        }
        // The scheduler (and its drain) runs when `self.shared` drops; all
        // connection threads are gone, so no ticket is left unresolved.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.drain_and_join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            // The wake-up connection (and any racer) is refused by closing
            // without a frame; clients see EOF.
            if stream.is_ok() {
                shared.connections_refused.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        let Ok(stream) = stream else { continue };
        shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
        shared.open_connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("lobster-conn".to_string())
            .spawn(move || {
                connection_loop(stream, &shared);
                shared.open_connections.fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread");
        let mut handles = connections.lock().unwrap_or_else(PoisonError::into_inner);
        handles.retain(|h| !h.is_finished());
        handles.push(handle);
    }
}

/// How often a blocked read re-checks the drain flag.
const READ_POLL: Duration = Duration::from_millis(100);
/// How long a drain waits for a half-read frame to finish arriving before
/// dropping the connection.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// One frame read with drain awareness. `Ok(Some(payload))` is a complete
/// frame; `Ok(None)` means the connection should close (clean EOF, or the
/// server is draining and no frame was in progress).
fn read_frame(
    stream: &mut TcpStream,
    max_bytes: usize,
    draining: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut buf: Option<(Vec<u8>, usize)> = None; // (payload, filled)
    let mut header_filled = 0usize;
    let mut drain_seen: Option<Instant> = None;
    loop {
        let mid_frame = header_filled > 0 || buf.is_some();
        if draining.load(Ordering::SeqCst) {
            if !mid_frame {
                return Ok(None);
            }
            // Give a half-sent frame a grace period, then cut the cord —
            // a stalled client must not hold the drain hostage.
            let since = *drain_seen.get_or_insert_with(Instant::now);
            if since.elapsed() > DRAIN_GRACE {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "drain grace expired mid-frame",
                ));
            }
        }
        let read = if let Some((payload, filled)) = &mut buf {
            match stream.read(&mut payload[*filled..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    ))
                }
                Ok(n) => {
                    *filled += n;
                    if *filled == payload.len() {
                        let (payload, _) = buf.take().expect("frame in progress");
                        return Ok(Some(payload));
                    }
                    continue;
                }
                Err(e) => Err(e),
            }
        } else {
            match stream.read(&mut header[header_filled..]) {
                Ok(0) => {
                    if header_filled == 0 {
                        return Ok(None);
                    }
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "eof mid-header",
                    ));
                }
                Ok(n) => {
                    header_filled += n;
                    if header_filled == 4 {
                        let len = u32::from_be_bytes(header) as usize;
                        if len > max_bytes {
                            return Err(std::io::Error::new(
                                ErrorKind::InvalidData,
                                format!("frame of {len} bytes exceeds the {max_bytes} limit"),
                            ));
                        }
                        header_filled = 0;
                        if len == 0 {
                            return Ok(Some(Vec::new()));
                        }
                        buf = Some((vec![0u8; len], 0));
                    }
                    continue;
                }
                Err(e) => Err(e),
            }
        };
        match read {
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
            Ok(()) => unreachable!(),
        }
    }
}

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(ErrorKind::InvalidData, "frame payload exceeds u32 length")
    })?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn send(stream: &mut TcpStream, response: &Json) -> std::io::Result<()> {
    write_frame(stream, response.to_compact().as_bytes())
}

fn reject(code: &str, message: &str, retry_after: Option<Duration>) -> Json {
    let mut response = obj([
        ("ok", Json::Bool(false)),
        ("code", Json::from(code)),
        ("error", Json::from(message)),
    ]);
    if let Some(retry) = retry_after {
        // Ceil to a millisecond so a non-zero hint never rounds to "now".
        let ms = retry.as_millis().max(1) as u64;
        response.set("retry_after_ms", Json::from(ms));
    }
    response
}

fn connection_loop(mut stream: TcpStream, shared: &ServerShared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    loop {
        let payload = match read_frame(&mut stream, shared.config.max_frame_bytes, &shared.draining)
        {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                // Clean close — or a drain with no frame in progress, which
                // deserves a parting `shutdown` so the client knows to go
                // elsewhere rather than retry here.
                if shared.draining.load(Ordering::SeqCst) {
                    let _ = send(
                        &mut stream,
                        &reject("shutdown", "server is draining; connection closed", None),
                    );
                }
                return;
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                let _ = send(&mut stream, &reject("bad-frame", &e.to_string(), None));
                return;
            }
            Err(_) => return,
        };
        let response = handle_request(&payload, shared);
        if send(&mut stream, &response).is_err() {
            // The client went away mid-response; the request (if any) has
            // already run — nothing to unwind.
            return;
        }
    }
}

fn handle_request(payload: &[u8], shared: &ServerShared) -> Json {
    let rejected = |response: Json| {
        shared.requests_rejected.fetch_add(1, Ordering::Relaxed);
        response
    };
    let Ok(text) = std::str::from_utf8(payload) else {
        return rejected(reject("bad-request", "payload is not UTF-8", None));
    };
    let request = match parse(text) {
        Ok(request) => request,
        Err(e) => return rejected(reject("bad-request", &e.to_string(), None)),
    };
    let op = request.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "ping" => obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
        "metrics" | "run" => {
            // Stage 1: auth. The key is checked (and, for `run`, a quota
            // token spent) before anything else happens.
            let key = request.get("key").and_then(Json::as_str).unwrap_or("");
            if let Err(e) = shared.keys.check(key) {
                return rejected(match e {
                    AuthError::Unauthorized => {
                        reject("unauthorized", "unknown or missing API key", None)
                    }
                    AuthError::QuotaExceeded { retry_after } => {
                        reject("quota", "per-key quota exhausted", Some(retry_after))
                    }
                });
            }
            if op == "metrics" {
                return metrics_json(shared);
            }
            // Stage 2: admission. The scheduler's live depth decides;
            // shedding here is what keeps the queue — and the p99 of
            // everything already admitted — bounded.
            if let Err(retry_after) = shared.admission.admit(shared.scheduler.pending()) {
                return rejected(reject(
                    "shed",
                    "server at capacity; retry after the hinted delay",
                    Some(retry_after),
                ));
            }
            // Stage 3: the scheduler.
            let facts = match facts_from_json(request.get("facts")) {
                Ok(facts) => facts,
                Err(message) => return rejected(reject("bad-request", &message, None)),
            };
            let submitted = Instant::now();
            let ticket = shared.scheduler.submit(facts);
            match ticket.wait_timeout(shared.config.request_timeout) {
                Ok(result) => {
                    shared.admission.observe(submitted.elapsed());
                    shared.requests_served.fetch_add(1, Ordering::Relaxed);
                    result_to_json(&result)
                }
                Err(ServeError::Lobster(LobsterError::BadFact { message })) => {
                    rejected(reject("bad-request", &message, None))
                }
                Err(ServeError::Lobster(e)) => rejected(reject("execution", &e.to_string(), None)),
                Err(ServeError::TimedOut) => rejected(reject(
                    "timeout",
                    "request did not complete within the server's deadline",
                    None,
                )),
                Err(ServeError::ShutDown) => {
                    rejected(reject("shutdown", "server shut down mid-request", None))
                }
                Err(ServeError::Disconnected) => rejected(reject(
                    "disconnected",
                    "scheduler worker died without responding",
                    None,
                )),
            }
        }
        other => rejected(reject(
            "bad-request",
            &format!("unknown op `{other}` (expected run, metrics, or ping)"),
            None,
        )),
    }
}

// ---------------------------------------------------------------------------
// Wire encoding of facts and results.

fn value_to_json(value: &Value, result: Option<&RunResult>) -> Json {
    match value {
        Value::U32(n) => obj([("u32", Json::from(u64::from(*n)))]),
        Value::I64(n) => {
            if n.unsigned_abs() <= 1 << 53 {
                obj([("i64", Json::Num(*n as f64))])
            } else {
                obj([("i64", Json::from(n.to_string().as_str()))])
            }
        }
        Value::F64(x) => obj([("f64", Json::Num(*x))]),
        Value::Bool(b) => obj([("bool", Json::Bool(*b))]),
        Value::Symbol(id) => match result.and_then(|r| r.resolve_symbol(value)) {
            Some(text) => obj([("sym", Json::from(&*text))]),
            None => obj([("sym_id", Json::from(u64::from(*id)))]),
        },
    }
}

fn value_from_json(json: &Json) -> Result<Value, String> {
    let Json::Obj(pairs) = json else {
        return Err(format!(
            "value must be a tagged object, got {}",
            json.to_compact()
        ));
    };
    let [(tag, inner)] = pairs.as_slice() else {
        return Err("value object must have exactly one tag".to_string());
    };
    match tag.as_str() {
        "u32" => inner
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .map(Value::U32)
            .ok_or_else(|| format!("bad u32: {}", inner.to_compact())),
        "i64" => match inner {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => {
                Ok(Value::I64(*n as i64))
            }
            Json::Str(s) => s
                .parse()
                .map(Value::I64)
                .map_err(|_| format!("bad i64 string: {s:?}")),
            _ => Err(format!("bad i64: {}", inner.to_compact())),
        },
        "f64" => inner
            .as_f64()
            .map(Value::F64)
            .ok_or_else(|| format!("bad f64: {}", inner.to_compact())),
        "bool" => inner
            .as_bool()
            .map(Value::Bool)
            .ok_or_else(|| format!("bad bool: {}", inner.to_compact())),
        "sym" => inner
            .as_str()
            .map(|text| Value::Symbol(SymbolTable::global().intern(text)))
            .ok_or_else(|| format!("bad sym: {}", inner.to_compact())),
        "sym_id" => inner
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .map(Value::Symbol)
            .ok_or_else(|| format!("bad sym_id: {}", inner.to_compact())),
        other => Err(format!("unknown value tag `{other}`")),
    }
}

/// Builds the wire form of one fact for a `run` request (the [`Client`]
/// uses this; servers parse the inverse).
fn fact_to_json(
    relation: &str,
    values: &[Value],
    prob: Option<f64>,
    exclusion: Option<u32>,
) -> Json {
    let mut fact = obj([
        ("rel", Json::from(relation)),
        (
            "values",
            Json::Arr(values.iter().map(|v| value_to_json(v, None)).collect()),
        ),
    ]);
    if let Some(p) = prob {
        fact.set("prob", Json::Num(p));
    }
    if let Some(x) = exclusion {
        fact.set("exclusion", Json::from(u64::from(x)));
    }
    fact
}

fn facts_from_json(json: Option<&Json>) -> Result<FactSet, String> {
    let Some(items) = json.and_then(Json::as_arr) else {
        return Err("`facts` must be an array".to_string());
    };
    let mut facts = FactSet::new();
    for item in items {
        let relation = item
            .get("rel")
            .and_then(Json::as_str)
            .ok_or("fact is missing `rel`")?;
        let values = item
            .get("values")
            .and_then(Json::as_arr)
            .ok_or("fact is missing `values`")?
            .iter()
            .map(value_from_json)
            .collect::<Result<Vec<Value>, String>>()?;
        let prob = item.get("prob").and_then(Json::as_f64);
        if let Some(p) = prob {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} outside [0, 1]"));
            }
        }
        let exclusion = item
            .get("exclusion")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok());
        match exclusion {
            Some(group) => facts.add_with_exclusion(relation, &values, prob, group),
            None => facts.add(relation, &values, prob),
        }
    }
    Ok(facts)
}

fn result_to_json(result: &RunResult) -> Json {
    let relations = result
        .relations()
        .into_iter()
        .map(|name| {
            let rows = result
                .relation(name)
                .iter()
                .map(|(tuple, output)| {
                    let mut row = obj([
                        (
                            "tuple",
                            Json::Arr(
                                tuple
                                    .iter()
                                    .map(|v| value_to_json(v, Some(result)))
                                    .collect(),
                            ),
                        ),
                        ("prob", Json::Num(output.probability)),
                    ]);
                    if !output.gradient.is_empty() {
                        row.set(
                            "grad",
                            Json::Arr(
                                output
                                    .gradient
                                    .iter()
                                    .map(|(id, g)| {
                                        Json::Arr(vec![Json::from(u64::from(id.0)), Json::Num(*g)])
                                    })
                                    .collect(),
                            ),
                        );
                    }
                    row
                })
                .collect();
            (name.to_string(), Json::Arr(rows))
        })
        .collect();
    obj([
        ("ok", Json::Bool(true)),
        ("relations", Json::Obj(relations)),
        ("iterations", Json::from(result.stats.iterations)),
    ])
}

fn kernel_time_json(time: &lobster::KernelTime) -> Json {
    obj([
        ("sort_ms", Json::Num(time.sort_ns as f64 / 1e6)),
        ("join_ms", Json::Num(time.join_ns as f64 / 1e6)),
        ("unique_ms", Json::Num(time.unique_ns as f64 / 1e6)),
        ("other_ms", Json::Num(time.other_ns as f64 / 1e6)),
    ])
}

fn cache_stats_json(stats: &CacheStats) -> Json {
    obj([
        ("hits", Json::from(stats.hits)),
        ("misses", Json::from(stats.misses)),
        ("coalesced", Json::from(stats.coalesced)),
        ("compiles", Json::from(stats.compiles)),
        ("evictions", Json::from(stats.evictions)),
        ("collisions", Json::from(stats.collisions)),
        ("resident_bytes", Json::from(stats.resident_bytes)),
        ("resident_programs", Json::from(stats.resident_programs)),
    ])
}

/// The `metrics` document: every stats surface the serving stack already
/// collects, serialized in one place — scheduler, admission, auth,
/// sessions, device (kernel-time buckets and arena), connections, and the
/// program cache when the server was given one.
fn metrics_json(shared: &ServerShared) -> Json {
    let scheduler = shared.scheduler.stats();
    let admission = shared.admission.stats();
    let auth = shared.keys.stats();
    let sessions = shared.scheduler.session_pool_stats();
    let device = shared.scheduler.program().device().stats();
    let arena = shared.scheduler.program().device().arena().stats();
    let mut metrics = obj([
        ("ok", Json::Bool(true)),
        (
            "uptime_s",
            Json::Num(shared.started.elapsed().as_secs_f64()),
        ),
        (
            "scheduler",
            obj([
                ("batches", Json::from(scheduler.batches)),
                ("sharded_chunks", Json::from(scheduler.sharded_chunks)),
                ("samples", Json::from(scheduler.samples)),
                ("full_flushes", Json::from(scheduler.full_flushes)),
                ("timer_flushes", Json::from(scheduler.timer_flushes)),
                ("largest_batch", Json::from(scheduler.largest_batch)),
                ("queued", Json::from(shared.scheduler.queued())),
                ("executing", Json::from(shared.scheduler.executing())),
            ]),
        ),
        (
            "admission",
            obj([
                ("admitted", Json::from(admission.admitted)),
                ("shed", Json::from(admission.shed)),
                (
                    "max_pending",
                    Json::from(shared.config.admission.max_pending),
                ),
            ]),
        ),
        (
            "auth",
            obj([
                ("admitted", Json::from(auth.admitted)),
                ("unauthorized", Json::from(auth.unauthorized)),
                ("quota_rejected", Json::from(auth.quota_rejected)),
                ("keys", Json::from(shared.keys.len())),
            ]),
        ),
        (
            "sessions",
            obj([
                ("created", Json::from(sessions.created)),
                ("reused", Json::from(sessions.reused)),
            ]),
        ),
        (
            "connections",
            obj([
                (
                    "accepted",
                    Json::from(shared.connections_accepted.load(Ordering::Relaxed)),
                ),
                (
                    "refused",
                    Json::from(shared.connections_refused.load(Ordering::Relaxed)),
                ),
                (
                    "open",
                    Json::from(shared.open_connections.load(Ordering::Relaxed)),
                ),
                (
                    "served",
                    Json::from(shared.requests_served.load(Ordering::Relaxed)),
                ),
                (
                    "rejected",
                    Json::from(shared.requests_rejected.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "device",
            obj([
                ("kernel_launches", Json::from(device.kernel_launches)),
                ("kernel_time", kernel_time_json(&device.kernel_time)),
                ("kernel_wall", kernel_time_json(&device.kernel_wall)),
                ("allocations", Json::from(device.allocations)),
                ("live_bytes", Json::from(device.live_bytes)),
                ("peak_bytes", Json::from(device.peak_bytes)),
                (
                    "arena",
                    obj([
                        ("fresh_columns", Json::from(arena.fresh_columns)),
                        ("reused_columns", Json::from(arena.reused_columns)),
                        ("recycled_columns", Json::from(arena.recycled_columns)),
                        ("pooled_buffers", Json::from(arena.pooled_buffers)),
                        ("pooled_bytes", Json::from(arena.pooled_bytes)),
                    ]),
                ),
            ]),
        ),
    ]);
    if let Some(cache) = &shared.config.cache {
        metrics.set("cache", cache_stats_json(&cache.stats()));
    }
    metrics
}

// ---------------------------------------------------------------------------
// Client.

/// Why a [`Client`] call failed *at the transport layer* (protocol-level
/// rejections arrive as a normal [`Reply`] instead).
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure (includes the read deadline expiring).
    Io(std::io::Error),
    /// The server's frame did not contain valid JSON.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failure: {e}"),
            ClientError::Protocol(message) => write!(f, "protocol violation: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A server response, thinly wrapped for the fields every caller reads.
#[derive(Debug, Clone)]
pub struct Reply {
    json: Json,
}

impl Reply {
    /// Whether the request succeeded.
    pub fn ok(&self) -> bool {
        self.json.get("ok").and_then(Json::as_bool).unwrap_or(false)
    }

    /// The rejection code (`shed`, `quota`, …) of a failed request.
    pub fn code(&self) -> Option<&str> {
        self.json.get("code").and_then(Json::as_str)
    }

    /// The structured backoff hint of a `shed`/`quota` rejection.
    pub fn retry_after(&self) -> Option<Duration> {
        self.json
            .get("retry_after_ms")
            .and_then(Json::as_u64)
            .map(Duration::from_millis)
    }

    /// The probability of a derived tuple in a successful `run` reply
    /// (`0.0` when not derived).
    pub fn probability(&self, relation: &str, tuple: &[Value]) -> f64 {
        let want: Vec<Json> = tuple.iter().map(|v| value_to_json(v, None)).collect();
        self.json
            .get("relations")
            .and_then(|r| r.get(relation))
            .and_then(Json::as_arr)
            .and_then(|rows| {
                rows.iter()
                    .find(|row| row.get("tuple").and_then(Json::as_arr) == Some(want.as_slice()))
            })
            .and_then(|row| row.get("prob"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    }

    /// Number of derived tuples in a relation of a successful `run` reply.
    pub fn len(&self, relation: &str) -> usize {
        self.json
            .get("relations")
            .and_then(|r| r.get(relation))
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len)
    }

    /// `true` when the relation derived no tuples (or is absent).
    pub fn is_empty(&self, relation: &str) -> bool {
        self.len(relation) == 0
    }

    /// The raw response document.
    pub fn json(&self) -> &Json {
        &self.json
    }
}

/// A blocking protocol client: one TCP connection, requests answered in
/// order. Used by the load generator, the integration tests, and as the
/// reference implementation of the wire format.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    key: String,
}

impl Client {
    /// Connects and remembers `key` for every subsequent request.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs, key: impl Into<String>) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // A deadline on every read: a client of a draining or wedged server
        // reports an error instead of hanging forever (the load generator's
        // "zero hung connections" assertion counts on this).
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        Ok(Client {
            stream,
            key: key.into(),
        })
    }

    fn request(&mut self, request: &Json) -> Result<Reply, ClientError> {
        write_frame(&mut self.stream, request.to_compact().as_bytes())?;
        // The client never drains; a dummy flag keeps `read_frame` shared.
        static NEVER: AtomicBool = AtomicBool::new(false);
        let payload =
            read_frame(&mut self.stream, u32::MAX as usize, &NEVER)?.ok_or_else(|| {
                ClientError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            })?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))?;
        let json = parse(text).map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(Reply { json })
    }

    /// Health check.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn ping(&mut self) -> Result<Reply, ClientError> {
        self.request(&obj([("op", Json::from("ping"))]))
    }

    /// Submits one `run` request and blocks for the reply (success or
    /// structured rejection).
    ///
    /// # Errors
    ///
    /// Transport failures only; rejections are `Ok` replies with
    /// [`Reply::ok`] false.
    pub fn run(&mut self, facts: &FactSet) -> Result<Reply, ClientError> {
        let wire_facts: Vec<Json> = facts
            .facts()
            .map(|(relation, values, prob, exclusion)| {
                fact_to_json(relation, values, prob, exclusion)
            })
            .collect();
        self.request(&obj([
            ("op", Json::from("run")),
            ("key", Json::from(self.key.as_str())),
            ("facts", Json::Arr(wire_facts)),
        ]))
    }

    /// Fetches the server's metrics document.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn metrics(&mut self) -> Result<Reply, ClientError> {
        self.request(&obj([
            ("op", Json::from("metrics")),
            ("key", Json::from(self.key.as_str())),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::Quota;
    use lobster::ProvenanceKind;

    const TC: &str = "type edge(x: u32, y: u32)
        rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
        query path";

    fn test_server(configure: impl FnOnce(ServerConfig) -> ServerConfig) -> Server {
        let program =
            Arc::new(DynProgram::compile(TC, ProvenanceKind::AddMultProb).expect("compiles"));
        let keys = KeyStore::new();
        keys.add_key("test-key", Quota::unlimited());
        Server::bind(
            ("127.0.0.1", 0),
            program,
            keys,
            configure(ServerConfig::default()),
        )
        .expect("bind")
    }

    fn edge_request(a: u32, b: u32, p: f64) -> FactSet {
        let mut facts = FactSet::new();
        facts.add("edge", &[Value::U32(a), Value::U32(b)], Some(p));
        facts
    }

    #[test]
    fn run_round_trips_over_tcp() {
        let server = test_server(|c| c);
        let mut client = Client::connect(server.local_addr(), "test-key").unwrap();
        assert!(client.ping().unwrap().ok());
        let reply = client.run(&edge_request(0, 1, 0.75)).unwrap();
        assert!(reply.ok(), "reply: {:?}", reply.json().to_compact());
        assert_eq!(reply.len("path"), 1);
        let p = reply.probability("path", &[Value::U32(0), Value::U32(1)]);
        assert!((p - 0.75).abs() < 1e-9);
        server.shutdown();
    }

    #[test]
    fn gradients_and_multi_hop_tuples_cross_the_wire() {
        let program =
            Arc::new(DynProgram::compile(TC, ProvenanceKind::DiffTop1Proof).expect("compiles"));
        let keys = KeyStore::new();
        keys.add_key("k", Quota::unlimited());
        let server =
            Server::bind(("127.0.0.1", 0), program, keys, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr(), "k").unwrap();
        let mut facts = FactSet::new();
        facts.add("edge", &[Value::U32(0), Value::U32(1)], Some(0.9));
        facts.add("edge", &[Value::U32(1), Value::U32(2)], Some(0.5));
        let reply = client.run(&facts).unwrap();
        assert!(reply.ok());
        assert_eq!(reply.len("path"), 3);
        let p = reply.probability("path", &[Value::U32(0), Value::U32(2)]);
        assert!((p - 0.45).abs() < 1e-9, "p = {p}");
        // The 2-hop tuple's gradient names both request-local fact ids.
        let rows = reply
            .json()
            .get("relations")
            .and_then(|r| r.get("path"))
            .and_then(Json::as_arr)
            .unwrap();
        let grads: Vec<&Json> = rows.iter().filter_map(|row| row.get("grad")).collect();
        assert!(!grads.is_empty(), "no gradients in {rows:?}");
        server.shutdown();
    }

    #[test]
    fn unknown_keys_and_unknown_ops_are_rejected() {
        let server = test_server(|c| c);
        let mut client = Client::connect(server.local_addr(), "wrong-key").unwrap();
        let reply = client.run(&edge_request(0, 1, 0.5)).unwrap();
        assert!(!reply.ok());
        assert_eq!(reply.code(), Some("unauthorized"));
        let reply = client
            .request(&obj([("op", Json::from("explode"))]))
            .unwrap();
        assert_eq!(reply.code(), Some("bad-request"));
        assert_eq!(server.stats().requests_rejected, 2);
        server.shutdown();
    }

    #[test]
    fn malformed_facts_are_rejected_as_bad_request() {
        let server = test_server(|c| c);
        let mut client = Client::connect(server.local_addr(), "test-key").unwrap();
        // Unknown relation — rejected by the scheduler's validation.
        let mut ghost = FactSet::new();
        ghost.add("ghost", &[Value::U32(0)], None);
        let reply = client.run(&ghost).unwrap();
        assert_eq!(reply.code(), Some("bad-request"));
        // Unparseable value tag — rejected by the wire decoder.
        let reply = client
            .request(&obj([
                ("op", Json::from("run")),
                ("key", Json::from("test-key")),
                (
                    "facts",
                    Json::Arr(vec![obj([
                        ("rel", Json::from("edge")),
                        ("values", Json::Arr(vec![obj([("blob", Json::Null)])])),
                    ])]),
                ),
            ]))
            .unwrap();
        assert_eq!(reply.code(), Some("bad-request"));
        // The connection survives rejections.
        assert!(client.run(&edge_request(0, 1, 0.5)).unwrap().ok());
        server.shutdown();
    }

    #[test]
    fn metrics_reports_every_stats_surface() {
        let cache = Arc::new(ProgramCache::new());
        let program = cache
            .get_or_compile(TC, ProvenanceKind::AddMultProb)
            .unwrap();
        let keys = KeyStore::new();
        keys.add_key("k", Quota::unlimited());
        let server = Server::bind(
            ("127.0.0.1", 0),
            program,
            keys,
            ServerConfig {
                cache: Some(Arc::clone(&cache)),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr(), "k").unwrap();
        assert!(client.run(&edge_request(0, 1, 0.5)).unwrap().ok());
        let metrics = client.metrics().unwrap();
        assert!(metrics.ok());
        let doc = metrics.json();
        let samples = doc
            .get("scheduler")
            .and_then(|s| s.get("samples"))
            .and_then(Json::as_u64);
        assert_eq!(samples, Some(1));
        assert_eq!(
            doc.get("admission")
                .and_then(|a| a.get("admitted"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            doc.get("cache")
                .and_then(|c| c.get("compiles"))
                .and_then(Json::as_u64),
            Some(1)
        );
        for surface in ["auth", "sessions", "connections", "device"] {
            assert!(doc.get(surface).is_some(), "metrics missing {surface}");
        }
        assert!(
            doc.get("device")
                .and_then(|d| d.get("kernel_time"))
                .and_then(|t| t.get("join_ms"))
                .and_then(Json::as_f64)
                .is_some(),
            "kernel-time buckets missing"
        );
        server.shutdown();
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let server = test_server(|mut c| {
            c.max_frame_bytes = 64;
            c
        });
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&(1_000_000u32).to_be_bytes()).unwrap();
        stream.flush().unwrap();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        static NEVER: AtomicBool = AtomicBool::new(false);
        let reply = read_frame(&mut stream, u32::MAX as usize, &NEVER)
            .unwrap()
            .expect("a bad-frame reply");
        let json = parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        assert_eq!(json.get("code").and_then(Json::as_str), Some("bad-frame"));
        server.shutdown();
    }

    #[test]
    fn value_encoding_round_trips_every_type() {
        for value in [
            Value::U32(0),
            Value::U32(u32::MAX),
            Value::I64(-5),
            Value::I64(i64::MAX),
            Value::F64(2.5),
            Value::Bool(true),
            Value::Symbol(7),
        ] {
            let encoded = value_to_json(&value, None);
            let decoded = value_from_json(&encoded).expect("decodes");
            assert_eq!(value, decoded, "via {}", encoded.to_compact());
        }
    }

    #[test]
    fn sym_text_values_intern_through_the_shared_table() {
        let json = obj([("sym", Json::from("net-shared-intern"))]);
        let decoded = value_from_json(&json).expect("decodes");
        let expected = SymbolTable::global().intern("net-shared-intern");
        assert_eq!(decoded, Value::Symbol(expected));
        // A second decode agrees with the first: the id is stable.
        assert_eq!(value_from_json(&json).unwrap(), Value::Symbol(expected));
        // Non-string payloads are rejected, not silently coerced.
        let bad = obj([("sym", Json::from(3u64))]);
        assert!(value_from_json(&bad).is_err());
    }
}
