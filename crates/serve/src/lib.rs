//! Serving layer for Lobster: an Arc-shared compiled-program cache and a
//! batching request scheduler.
//!
//! The paper's headline win is amortizing one fix-point over many batched
//! samples (Section 4.3); the PR 1 API split made the compiled [`Program`]
//! an immutable, `Arc`-shareable artifact. This crate turns those two
//! properties into a server runtime:
//!
//! * [`ProgramCache`] — a keyed cache `(source hash, provenance kind,
//!   options fingerprint) → Arc<DynProgram>` so each distinct program
//!   compiles **once per process** and every request/thread shares the
//!   artifact. Eviction is LRU over the compiled artifact's estimated
//!   resident size ([`DynProgram::compiled_size_bytes`]), bounded by a
//!   configurable byte budget. Concurrent requests for the same key are
//!   coalesced: exactly one thread compiles, the rest block on the result.
//! * [`BatchScheduler`] — accumulates per-request [`FactSet`]s into
//!   mini-batches and drives [`DynProgram::run_batch`], paying one fix-point
//!   per batch instead of one per request. Latency/throughput trade-off is
//!   controlled by [`SchedulerConfig::max_batch_size`] and
//!   [`SchedulerConfig::max_queue_delay`]; results are routed back to each
//!   caller over a per-request channel. Plain `std` threads and `mpsc` —
//!   no async runtime dependency. With [`SchedulerConfig::num_shards`]
//!   above 1, every pooled batch additionally fans out across shard
//!   devices (`DynProgram::run_batch_sharded`) with identical results —
//!   see the "Multi-device sharding" section of the `lobster` crate docs.
//!
//! # Example
//!
//! ```
//! use lobster::{FactSet, ProvenanceKind, Value};
//! use lobster_serve::{BatchScheduler, ProgramCache, SchedulerConfig};
//! use std::time::Duration;
//!
//! const SRC: &str = "type edge(x: u32, y: u32)
//!     rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
//!     query path";
//!
//! // Compile once per process, share everywhere.
//! let cache = ProgramCache::new();
//! let program = cache.get_or_compile(SRC, ProvenanceKind::AddMultProb).unwrap();
//! assert_eq!(cache.stats().compiles, 1);
//! // A second request for the same program is a cache hit.
//! let again = cache.get_or_compile(SRC, ProvenanceKind::AddMultProb).unwrap();
//! assert_eq!(cache.stats().hits, 1);
//!
//! // Serve requests through a batching scheduler: one fix-point per batch.
//! let scheduler = BatchScheduler::new(
//!     program,
//!     SchedulerConfig::default()
//!         .with_max_batch_size(8)
//!         .with_max_queue_delay(Duration::from_millis(1)),
//! );
//! let mut request = FactSet::new();
//! request.add("edge", &[Value::U32(0), Value::U32(1)], Some(0.9));
//! let result = scheduler.submit(request).wait().unwrap();
//! assert!((result.probability("path", &[Value::U32(0), Value::U32(1)]) - 0.9).abs() < 1e-9);
//! # drop(again);
//! ```
//!
//! [`Program`]: lobster::Program
//! [`DynProgram::run_batch`]: lobster::DynProgram::run_batch
//! [`DynProgram::compiled_size_bytes`]: lobster::DynProgram::compiled_size_bytes
//! [`FactSet`]: lobster::FactSet

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
mod scheduler;

pub use cache::{CacheKey, CacheStats, ProgramCache};
pub use error::ServeError;
pub use scheduler::{BatchScheduler, SchedulerConfig, SchedulerStats, Ticket};
