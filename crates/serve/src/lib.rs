//! Serving layer for Lobster: an Arc-shared compiled-program cache and a
//! batching request scheduler on a persistent execution runtime.
//!
//! The paper's headline win is amortizing one fix-point over many batched
//! samples (Section 4.3); the PR 1 API split made the compiled [`Program`]
//! an immutable, `Arc`-shareable artifact. This crate turns those two
//! properties into a server runtime in which everything structural is built
//! once and recycled — compiled programs, scheduler threads, shard worker
//! threads, sessions — so a warm request pays only validation, queueing,
//! and its share of a fix-point:
//!
//! * [`ProgramCache`] — a keyed cache `(source hash, provenance kind,
//!   options fingerprint) → Arc<DynProgram>` so each distinct program
//!   compiles **once per process** and every request/thread shares the
//!   artifact. Eviction is LRU over the compiled artifact's estimated
//!   resident size ([`DynProgram::compiled_size_bytes`]), bounded by a
//!   configurable byte budget. Concurrent requests for the same key are
//!   coalesced: exactly one thread compiles, the rest block on the result.
//! * [`BatchScheduler`] — accumulates per-request [`FactSet`]s into
//!   mini-batches, paying one fix-point per batch instead of one per
//!   request. Latency/throughput trade-off is controlled by
//!   [`SchedulerConfig::max_batch_size`] and
//!   [`SchedulerConfig::max_queue_delay`]; results are routed back to each
//!   caller over a per-request channel. Plain `std` threads and `mpsc` —
//!   no async runtime dependency. Single-device batches run on sessions
//!   recycled through a [`DynSessionPool`] (registry and inline facts
//!   built once, reset between batches); with
//!   [`SchedulerConfig::num_shards`] above 1 the scheduler holds **one**
//!   persistent [`DynShardedExecutor`] — shard workers spawned at
//!   construction, fed every pooled batch over a work queue, joined on
//!   drop — and every batch fans out across its shard devices with
//!   identical results. See the "Multi-device sharding" section of the
//!   `lobster` crate docs and `docs/ARCHITECTURE.md` for the full request
//!   lifecycle, knob reference, and shard-vs-batch guidance.
//! * [`Server`] — the network front end: a std-TCP, length-prefixed JSON
//!   protocol over the scheduler, with per-key token-bucket quotas
//!   ([`KeyStore`]), queue-depth admission control that sheds overload
//!   with a structured retry-after ([`AdmissionController`]), a `metrics`
//!   op serializing every stats surface above, and graceful drain —
//!   in-flight requests resolve, new connections are refused. Plain
//!   `std::net` and threads, matching the scheduler's no-async stance.
//!   [`Client`] is the reference protocol implementation.
//!
//! # Example
//!
//! The whole serving path — cache, persistent sharded scheduler, session
//! pool — in one place (`examples/serve.rs` is the narrated version):
//!
//! ```
//! use lobster::{FactSet, ProvenanceKind, Value};
//! use lobster_serve::{BatchScheduler, ProgramCache, SchedulerConfig};
//! use std::time::Duration;
//!
//! const SRC: &str = "type edge(x: u32, y: u32)
//!     rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
//!     query path";
//!
//! // Compile once per process, share everywhere.
//! let cache = ProgramCache::new();
//! let program = cache.get_or_compile(SRC, ProvenanceKind::AddMultProb).unwrap();
//! assert_eq!(cache.stats().compiles, 1);
//! // A second request for the same program is a cache hit.
//! let again = cache.get_or_compile(SRC, ProvenanceKind::AddMultProb).unwrap();
//! assert_eq!(cache.stats().hits, 1);
//!
//! // Serve requests through a batching scheduler: one fix-point per batch,
//! // fanned out across 2 shard devices by the scheduler's persistent
//! // executor (its two shard workers are spawned HERE, once — not per
//! // batch).
//! let scheduler = BatchScheduler::new(
//!     program,
//!     SchedulerConfig::default()
//!         .with_max_batch_size(8)
//!         .with_max_queue_delay(Duration::from_millis(1))
//!         .with_num_shards(2),
//! );
//! for round in 0..4u32 {
//!     let mut request = FactSet::new();
//!     request.add("edge", &[Value::U32(round), Value::U32(round + 1)], Some(0.9));
//!     let result = scheduler.submit(request).wait().unwrap();
//!     let p = result.probability("path", &[Value::U32(round), Value::U32(round + 1)]);
//!     assert!((p - 0.9).abs() < 1e-9);
//! }
//!
//! // One-off (unbatched) requests borrow recycled sessions from a pool;
//! // the pool resets each session on return, so no facts leak between
//! // requests.
//! let pool = scheduler.program().session_pool();
//! for i in 0..3u32 {
//!     let mut session = pool.acquire();
//!     session.add_fact("edge", &[Value::U32(i), Value::U32(i + 1)], Some(0.5)).unwrap();
//!     assert_eq!(session.run().unwrap().len("path"), 1); // clean every time
//! }
//! assert_eq!(pool.stats().created, 1);
//! # drop(again);
//! ```
//!
//! [`Program`]: lobster::Program
//! [`DynProgram::compiled_size_bytes`]: lobster::DynProgram::compiled_size_bytes
//! [`DynSessionPool`]: lobster::DynSessionPool
//! [`DynShardedExecutor`]: lobster::DynShardedExecutor
//! [`FactSet`]: lobster::FactSet

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod auth;
mod cache;
mod error;
pub mod json;
mod net;
mod scheduler;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats};
pub use auth::{AuthError, AuthStats, KeyStore, Quota};
pub use cache::{CacheKey, CacheStats, ProgramCache};
pub use error::ServeError;
pub use net::{Client, ClientError, Reply, Server, ServerConfig, ServerStats};
pub use scheduler::{BatchScheduler, SchedulerConfig, SchedulerStats, Ticket};
