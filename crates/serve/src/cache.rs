//! The Arc-shared compiled-program cache.

use lobster::{DynProgram, Lobster, LobsterError, ProvenanceKind, RuntimeOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The identity of a compiled program: what it was compiled from (source
/// hash), which semiring it reasons in, and which runtime options shape its
/// execution. Two requests with equal keys are served by the same artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stable hash of the Datalog source ([`Lobster::source_hash`]).
    pub source_hash: u64,
    /// The provenance semiring the program reasons in.
    pub kind: ProvenanceKind,
    /// Stable fingerprint of the runtime options
    /// ([`RuntimeOptions::fingerprint`]).
    pub options_fingerprint: u64,
}

impl CacheKey {
    /// The key identifying `source` compiled for `kind` under `options`.
    pub fn new(source: &str, kind: ProvenanceKind, options: &RuntimeOptions) -> Self {
        CacheKey {
            source_hash: Lobster::source_hash(source),
            kind,
            options_fingerprint: options.fingerprint(),
        }
    }
}

/// One cache slot. The `OnceLock` gives single-flight compilation for free:
/// the first thread to reach `get_or_init` runs the compile, every
/// concurrent thread for the same key blocks until it finishes, and nobody
/// compiles twice.
#[derive(Debug, Default)]
struct Slot {
    cell: OnceLock<Result<Arc<DynProgram>, LobsterError>>,
}

#[derive(Debug)]
struct Entry {
    slot: Arc<Slot>,
    /// The exact source and options this entry was compiled from. The map
    /// key carries only 64-bit hashes of both, so hits verify against these
    /// before serving the artifact — a hash collision must never silently
    /// hand a caller somebody else's compiled program.
    source: String,
    options: RuntimeOptions,
    /// Logical timestamp of the last request for this key (LRU order).
    last_used: u64,
    /// Estimated resident bytes of the compiled artifact; `0` while the
    /// compile is still in flight (in-flight entries are never evicted).
    cost: usize,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<CacheKey, Entry>,
    /// Monotone logical clock advanced on every request.
    tick: u64,
    /// Total `cost` of all compiled entries.
    resident_bytes: usize,
}

/// Counters describing the cache's behaviour since construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served by an already-compiled entry.
    pub hits: u64,
    /// Requests that created a new entry (and triggered a compile).
    pub misses: u64,
    /// Requests that found an entry still compiling and blocked on it
    /// instead of compiling again.
    pub coalesced: u64,
    /// Number of compilations actually performed.
    pub compiles: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Requests whose key collided with a different source (served by an
    /// uncached compile instead of the wrong artifact).
    pub collisions: u64,
    /// Estimated resident bytes of all cached artifacts.
    pub resident_bytes: usize,
    /// Number of cached (compiled) programs.
    pub resident_programs: usize,
}

/// A process-wide cache of compiled programs keyed by [`CacheKey`].
///
/// Each distinct `(source, provenance kind, runtime options)` combination is
/// compiled exactly once per process, no matter how many threads request it
/// concurrently; every caller shares the resulting [`Arc<DynProgram>`].
/// When a byte budget is set ([`ProgramCache::with_budget`]), least-recently
/// used entries are evicted until the estimated resident size of the cached
/// artifacts fits the budget. Evicted programs stay alive for as long as any
/// caller still holds the `Arc` — eviction only drops the cache's reference.
///
/// All methods take `&self`; the cache is `Sync` and meant to be shared
/// (e.g. in an `Arc`) across request-handling threads.
#[derive(Debug, Default)]
pub struct ProgramCache {
    state: Mutex<CacheState>,
    /// Byte budget for resident artifacts; `None` is unbounded.
    budget: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
}

impl ProgramCache {
    /// An unbounded cache: nothing is ever evicted.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that evicts least-recently-used entries once the estimated
    /// resident size of compiled artifacts exceeds `budget_bytes`. The most
    /// recently requested entry is never evicted, so a single program larger
    /// than the budget still caches (and is replaced as soon as a different
    /// program is requested).
    pub fn with_budget(budget_bytes: usize) -> Self {
        ProgramCache {
            budget: Some(budget_bytes),
            ..Self::default()
        }
    }

    /// Returns the cached program for `(source, kind)` under default
    /// [`RuntimeOptions`], compiling it first if needed.
    ///
    /// # Errors
    ///
    /// Returns the compile error when the source does not compile; failed
    /// compiles are not cached, so a later call retries.
    pub fn get_or_compile(
        &self,
        source: &str,
        kind: ProvenanceKind,
    ) -> Result<Arc<DynProgram>, LobsterError> {
        self.get_or_compile_with(source, kind, RuntimeOptions::default())
    }

    /// Returns the cached program for `(source, kind, options)`, compiling
    /// it first if needed. Concurrent calls with the same key coalesce onto
    /// one compilation.
    ///
    /// # Errors
    ///
    /// Returns the compile error when the source does not compile; failed
    /// compiles are not cached, so a later call retries.
    pub fn get_or_compile_with(
        &self,
        source: &str,
        kind: ProvenanceKind,
        options: RuntimeOptions,
    ) -> Result<Arc<DynProgram>, LobsterError> {
        let key = CacheKey::new(source, kind, &options);
        self.get_or_compile_keyed(key, source, kind, options)
    }

    /// The keyed lookup behind [`ProgramCache::get_or_compile_with`]. Taking
    /// the key explicitly keeps the collision branch honestly testable: a
    /// 64-bit FNV-1a collision cannot be manufactured from real sources, but
    /// a test can pass a key that belongs to a *different* source and must
    /// observe exactly what a genuine collision would produce.
    fn get_or_compile_keyed(
        &self,
        key: CacheKey,
        source: &str,
        kind: ProvenanceKind,
        options: RuntimeOptions,
    ) -> Result<Arc<DynProgram>, LobsterError> {
        let slot = {
            let mut state = self.state.lock().expect("cache lock poisoned");
            state.tick += 1;
            let tick = state.tick;
            match state.entries.get_mut(&key) {
                Some(entry) if entry.source == source && entry.options == options => {
                    entry.last_used = tick;
                    if entry.slot.cell.get().is_some() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    Arc::clone(&entry.slot)
                }
                Some(_) => {
                    // 64-bit hash collision with a different source or
                    // option set. Serve this request with an uncached
                    // compile — correct, if slower — rather than evicting
                    // the resident program or returning the wrong artifact.
                    drop(state);
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                    self.compiles.fetch_add(1, Ordering::Relaxed);
                    return Lobster::builder(source)
                        .options(options)
                        .provenance(kind)
                        .compile()
                        .map(Arc::new);
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let slot = Arc::new(Slot::default());
                    state.entries.insert(
                        key,
                        Entry {
                            slot: Arc::clone(&slot),
                            source: source.to_string(),
                            options: options.clone(),
                            last_used: tick,
                            cost: 0,
                        },
                    );
                    slot
                }
            }
        };

        // Outside the map lock: at most one thread runs the closure, all
        // other requesters of this key block inside `get_or_init` until the
        // artifact (or the error) is ready. Holding no lock here means a
        // slow compile never stalls requests for *other* keys.
        let mut compiled_here = false;
        let outcome = slot.cell.get_or_init(|| {
            compiled_here = true;
            self.compiles.fetch_add(1, Ordering::Relaxed);
            Lobster::builder(source)
                .options(options.clone())
                .provenance(kind)
                .compile()
                .map(Arc::new)
        });

        // Post-compile bookkeeping only touches the entry *this* request
        // created (`Arc::ptr_eq` on the slot): a `clear()` racing the
        // compile may have replaced the map entry with a fresh in-flight one
        // for the same key, and charging our cost to it — or removing it on
        // our error — would corrupt the accounting of a different request.
        match outcome {
            Ok(program) => {
                if compiled_here {
                    let cost = program.compiled_size_bytes().max(1);
                    let mut state = self.state.lock().expect("cache lock poisoned");
                    if let Some(entry) = state.entries.get_mut(&key) {
                        if Arc::ptr_eq(&entry.slot, &slot) {
                            entry.cost = cost;
                            state.resident_bytes += cost;
                            self.evict_to_budget(&mut state, key);
                        }
                    }
                }
                Ok(Arc::clone(program))
            }
            Err(e) => {
                if compiled_here {
                    let mut state = self.state.lock().expect("cache lock poisoned");
                    if state
                        .entries
                        .get(&key)
                        .is_some_and(|entry| Arc::ptr_eq(&entry.slot, &slot))
                    {
                        state.entries.remove(&key);
                    }
                }
                Err(e.clone())
            }
        }
    }

    /// Evicts least-recently-used compiled entries until the resident bytes
    /// fit the budget. `protect` (the key just requested) and in-flight
    /// entries (`cost == 0`) are exempt.
    fn evict_to_budget(&self, state: &mut CacheState, protect: CacheKey) {
        let Some(budget) = self.budget else { return };
        while state.resident_bytes > budget {
            let victim = state
                .entries
                .iter()
                .filter(|(k, e)| **k != protect && e.cost > 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(entry) = state.entries.remove(&victim) {
                state.resident_bytes -= entry.cost;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Whether the artifact for `(source, kind, options)` is currently
    /// resident (compiled and not evicted).
    pub fn contains(&self, source: &str, kind: ProvenanceKind, options: &RuntimeOptions) -> bool {
        let key = CacheKey::new(source, kind, options);
        let state = self.state.lock().expect("cache lock poisoned");
        state.entries.get(&key).is_some_and(|e| {
            e.source == source && e.options == *options && e.slot.cell.get().is_some()
        })
    }

    /// Number of cached (compiled or in-flight) programs.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("cache lock poisoned")
            .entries
            .len()
    }

    /// `true` when the cache holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact (outstanding `Arc`s stay alive).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock poisoned");
        state.entries.clear();
        state.resident_bytes = 0;
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache lock poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            resident_bytes: state.resident_bytes,
            resident_programs: state.entries.values().filter(|e| e.cost > 0).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "type edge(x: u32, y: u32)
        rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
        query path";

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = ProgramCache::new();
        let a = cache.get_or_compile(TC, ProvenanceKind::Unit).unwrap();
        let b = cache.get_or_compile(TC, ProvenanceKind::Unit).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.compiles, stats.misses, stats.hits), (1, 1, 1));
    }

    #[test]
    fn distinct_kinds_and_options_are_distinct_entries() {
        let cache = ProgramCache::new();
        cache.get_or_compile(TC, ProvenanceKind::Unit).unwrap();
        cache
            .get_or_compile(TC, ProvenanceKind::AddMultProb)
            .unwrap();
        cache
            .get_or_compile_with(TC, ProvenanceKind::Unit, RuntimeOptions::unoptimized())
            .unwrap();
        assert_eq!(cache.stats().compiles, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn diagnostics_are_cached_with_the_program() {
        // A program with a never-read relation carries a lint warning in its
        // compiled artifact; a cache hit serves the identical diagnostics
        // without re-running the analysis passes.
        const NOISY: &str = "type edge(x: u32, y: u32)
            type orphan(x: u32)
            rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
            query path";
        let cache = ProgramCache::new();
        let first = cache.get_or_compile(NOISY, ProvenanceKind::Unit).unwrap();
        assert!(first
            .diagnostics()
            .iter()
            .any(|d| d.code == "unused-relation"));
        let second = cache.get_or_compile(NOISY, ProvenanceKind::Unit).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.diagnostics().len(), second.diagnostics().len());
        assert_eq!(cache.stats().compiles, 1);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = ProgramCache::new();
        assert!(cache
            .get_or_compile("rel x(", ProvenanceKind::Unit)
            .is_err());
        assert!(cache.is_empty());
        // A retry compiles again (and still fails) rather than observing a
        // poisoned entry.
        assert!(cache
            .get_or_compile("rel x(", ProvenanceKind::Unit)
            .is_err());
        assert_eq!(cache.stats().compiles, 2);
    }

    #[test]
    fn forced_key_collision_compiles_uncached_and_preserves_the_original() {
        // A disconnected-edge program: `path` derives exactly one tuple per
        // edge fact, distinguishing it from TC's three-tuple closure below.
        const OTHER: &str = "type edge(x: u32, y: u32)
            rel path(x, y) = edge(x, y)
            query path";

        let cache = ProgramCache::new();
        let original = cache.get_or_compile(TC, ProvenanceKind::Unit).unwrap();

        // Deterministic forced collision: request OTHER under TC's key, as
        // if both sources hashed to the same 64 bits.
        let options = RuntimeOptions::default();
        let colliding_key = CacheKey::new(TC, ProvenanceKind::Unit, &options);
        let collided = cache
            .get_or_compile_keyed(colliding_key, OTHER, ProvenanceKind::Unit, options.clone())
            .unwrap();

        // The mismatch was detected and served by an uncached compile: the
        // collision stat ticks, a second compile happened, and the caller
        // got OTHER's semantics, not the resident artifact.
        let stats = cache.stats();
        assert_eq!(stats.collisions, 1, "stats: {stats:?}");
        assert_eq!(stats.compiles, 2);
        assert!(!Arc::ptr_eq(&original, &collided));
        let mut chain = lobster::FactSet::new();
        chain.add(
            "edge",
            &[lobster::Value::U32(0), lobster::Value::U32(1)],
            None,
        );
        chain.add(
            "edge",
            &[lobster::Value::U32(1), lobster::Value::U32(2)],
            None,
        );
        assert_eq!(
            collided.run_batch(std::slice::from_ref(&chain)).unwrap()[0].len("path"),
            2
        );

        // The colliding request neither evicted nor corrupted the resident
        // entry: the original key still hits and still serves TC (closure of
        // the 2-chain has 3 tuples).
        let again = cache.get_or_compile(TC, ProvenanceKind::Unit).unwrap();
        assert!(Arc::ptr_eq(&original, &again));
        assert_eq!(
            again.run_batch(std::slice::from_ref(&chain)).unwrap()[0].len("path"),
            3
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 1, "stats: {stats:?}");
        assert_eq!(stats.compiles, 2, "the hit must not recompile");
        assert_eq!(stats.resident_programs, 1);
    }

    #[test]
    fn contains_reflects_residency() {
        let cache = ProgramCache::new();
        let options = RuntimeOptions::default();
        assert!(!cache.contains(TC, ProvenanceKind::Unit, &options));
        cache.get_or_compile(TC, ProvenanceKind::Unit).unwrap();
        assert!(cache.contains(TC, ProvenanceKind::Unit, &options));
        cache.clear();
        assert!(!cache.contains(TC, ProvenanceKind::Unit, &options));
    }
}
