//! Seeded property suite: every kernel must produce bit-identical output on
//! a parallel device and on the sequential device, across row counts that
//! exercise the empty, singleton, odd-sized, and chunk-spanning regimes, and
//! across table shapes that hit both sorting algorithms (narrow rows → LSD
//! radix sort, wide rows → parallel merge sort).
//!
//! This is the contract the executor's differential suites
//! (`batch_agreement`, `sharded_agreement`, cross-provenance) lean on: if
//! each kernel is chunk-invariant, whole fix-points are.

use lobster_gpu::kernels::PackLane;
use lobster_gpu::{kernels, Device, DeviceConfig, HashIndex, ProbePartition};

/// Parallelism degrees exercised against the sequential baseline.
const PARALLELISMS: [usize; 3] = [1, 3, 8];

/// Row-count regimes: empty, singleton, small odd, large odd (does not
/// divide evenly into chunks), large.
const ROW_COUNTS: [usize; 5] = [0, 1, 37, 4099, 6000];

/// A tiny deterministic xorshift generator so the suite needs no rand crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A value in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn parallel_device(parallelism: usize) -> Device {
    Device::new(DeviceConfig {
        parallelism,
        // Tiny threshold so even the small regimes actually chunk.
        min_parallel_rows: 8,
        ..DeviceConfig::default()
    })
}

/// Random table: `arity` columns of `rows` values drawn from `0..key_space`
/// (small key spaces create the duplicate rows `unique`/`difference` need),
/// plus f64 tags with distinct bit patterns.
fn random_table(
    rng: &mut Rng,
    rows: usize,
    arity: usize,
    key_space: u64,
) -> (Vec<Vec<u64>>, Vec<f64>) {
    let cols = (0..arity)
        .map(|_| (0..rows).map(|_| rng.below(key_space)).collect())
        .collect();
    let tags = (0..rows).map(|_| rng.below(1 << 20) as f64 * 0.5).collect();
    (cols, tags)
}

fn refs(cols: &[Vec<u64>]) -> Vec<&[u64]> {
    cols.iter().map(|c| c.as_slice()).collect()
}

/// Sorts a table into the canonical (sorted rows, permuted tags) form on the
/// given device.
fn sorted_on(device: &Device, cols: &[Vec<u64>], tags: &[f64]) -> (Vec<Vec<u64>>, Vec<f64>) {
    let perm = kernels::sort_permutation(device, &refs(cols));
    kernels::apply_permutation(device, &perm, &refs(cols), tags)
}

/// Table shapes: (arity, key space). Small key spaces force heavy
/// duplication and few significant radix bytes; the huge key space forces
/// full-width radix passes; arity 9 blows the radix pass budget and lands on
/// the parallel merge sort.
const SHAPES: [(usize, u64); 4] = [(1, 11), (2, 97), (2, u64::MAX - 1), (9, 5)];

#[test]
fn sort_unique_merge_difference_agree_with_sequential() {
    let seq = Device::sequential();
    for (arity, key_space) in SHAPES {
        for rows in ROW_COUNTS {
            let mut rng = Rng::new(rows as u64 * 31 + arity as u64);
            let (cols, tags) = random_table(&mut rng, rows, arity, key_space);
            let (other_cols, other_tags) = random_table(&mut rng, rows / 2 + 1, arity, key_space);

            let seq_perm = kernels::sort_permutation(&seq, &refs(&cols));
            let (seq_sorted, seq_stags) = sorted_on(&seq, &cols, &tags);
            let (seq_uniq, seq_utags) =
                kernels::unique(&seq, &refs(&seq_sorted), &seq_stags, |a, b| a + b);
            let (seq_other, seq_otags) = sorted_on(&seq, &other_cols, &other_tags);
            let (seq_merged, seq_mtags) = kernels::merge(
                &seq,
                &refs(&seq_sorted),
                &seq_stags,
                &refs(&seq_other),
                &seq_otags,
            );
            let (seq_diff, seq_dtags) = kernels::difference(
                &seq,
                &refs(&seq_uniq),
                &seq_utags,
                &refs(&seq_other),
                seq_otags.len(),
            );

            for parallelism in PARALLELISMS {
                let par = parallel_device(parallelism);
                let ctx = format!("arity {arity}, keys {key_space}, rows {rows}, p {parallelism}");
                assert_eq!(
                    kernels::sort_permutation(&par, &refs(&cols)),
                    seq_perm,
                    "sort: {ctx}"
                );
                let (sorted, stags) = sorted_on(&par, &cols, &tags);
                assert_eq!(sorted, seq_sorted, "apply_permutation cols: {ctx}");
                assert_bits(
                    &stags,
                    &seq_stags,
                    &format!("apply_permutation tags: {ctx}"),
                );
                let (uniq, utags) = kernels::unique(&par, &refs(&sorted), &stags, |a, b| a + b);
                assert_eq!(uniq, seq_uniq, "unique cols: {ctx}");
                assert_bits(&utags, &seq_utags, &format!("unique tags: {ctx}"));
                let (merged, mtags) =
                    kernels::merge(&par, &refs(&sorted), &stags, &refs(&seq_other), &seq_otags);
                assert_eq!(merged, seq_merged, "merge cols: {ctx}");
                assert_bits(&mtags, &seq_mtags, &format!("merge tags: {ctx}"));
                let (diff, dtags) = kernels::difference(
                    &par,
                    &refs(&uniq),
                    &utags,
                    &refs(&seq_other),
                    seq_otags.len(),
                );
                assert_eq!(diff, seq_diff, "difference cols: {ctx}");
                assert_bits(&dtags, &seq_dtags, &format!("difference tags: {ctx}"));
            }
        }
    }
}

/// f64 comparisons must be *bit*-identical (the provenance contract), not
/// merely approximately equal.
fn assert_bits(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: tag {i}");
    }
}

#[test]
fn scan_eval_gathers_agree_with_sequential() {
    let seq = Device::sequential();
    for rows in ROW_COUNTS {
        let mut rng = Rng::new(rows as u64 + 7);
        let counts: Vec<u64> = (0..rows).map(|_| rng.below(5)).collect();
        let data: Vec<u64> = (0..rows).map(|_| rng.below(1 << 40)).collect();
        let indices: Vec<u64> = (0..rows).map(|_| rng.below(rows.max(1) as u64)).collect();
        let tags: Vec<f64> = (0..rows)
            .map(|_| rng.below(1 << 20) as f64 * 0.25)
            .collect();

        let (seq_offsets, seq_total) = kernels::scan(&seq, &counts);
        let eval_fn = |range: std::ops::Range<usize>, sink: &mut kernels::EvalSink| {
            let mut out = [0u64; 2];
            for i in range {
                if data[i] % 3 != 0 {
                    out[0] = data[i] / 3;
                    out[1] = data[i].rotate_left(5);
                    sink.emit(i, &out);
                }
            }
        };
        let (seq_eval_cols, seq_eval_src) = kernels::eval(&seq, rows, 2, eval_fn);
        let seq_gather = kernels::gather(&seq, &indices, &data);
        let seq_gtags = kernels::gather_tags(&seq, &indices, &tags);
        let seq_mul = kernels::gather_mul_tags(&seq, &indices, &indices, &tags, &tags, |a, b| {
            a.mul_add(*b, 1.0)
        });

        for parallelism in PARALLELISMS {
            let par = parallel_device(parallelism);
            let ctx = format!("rows {rows}, p {parallelism}");
            let (offsets, total) = kernels::scan(&par, &counts);
            assert_eq!(offsets, seq_offsets, "scan offsets: {ctx}");
            assert_eq!(total, seq_total, "scan total: {ctx}");
            let (eval_cols, eval_src) = kernels::eval(&par, rows, 2, eval_fn);
            assert_eq!(eval_cols, seq_eval_cols, "eval cols: {ctx}");
            assert_eq!(eval_src, seq_eval_src, "eval sources: {ctx}");
            assert_eq!(
                kernels::gather(&par, &indices, &data),
                seq_gather,
                "gather: {ctx}"
            );
            assert_bits(
                &kernels::gather_tags(&par, &indices, &tags),
                &seq_gtags,
                &format!("gather_tags: {ctx}"),
            );
            assert_bits(
                &kernels::gather_mul_tags(&par, &indices, &indices, &tags, &tags, |a, b| {
                    a.mul_add(*b, 1.0)
                }),
                &seq_mul,
                &format!("gather_mul_tags: {ctx}"),
            );
        }
    }
}

#[test]
fn joins_and_append_agree_with_sequential() {
    let seq = Device::sequential();
    for rows in ROW_COUNTS {
        for key_width in [1usize, 2] {
            let mut rng = Rng::new(rows as u64 * 13 + key_width as u64);
            let key_space = (rows as u64 / 7).max(3);
            let (build_cols, _) = random_table(&mut rng, rows, key_width, key_space);
            let (probe_cols, _) = random_table(&mut rng, rows.div_ceil(2), key_width, key_space);

            let seq_index = HashIndex::build(&seq, &refs(&build_cols), 2);
            let seq_counts = kernels::count_matches(&seq, &seq_index, &refs(&probe_cols));
            let (seq_offsets, seq_total) = kernels::scan(&seq, &seq_counts);
            let (seq_bi, seq_pi) = kernels::hash_join(
                &seq,
                &seq_index,
                &refs(&probe_cols),
                &seq_counts,
                &seq_offsets,
                seq_total,
            );
            let seq_append = kernels::append(&seq, &[&refs(&build_cols), &refs(&probe_cols)]);

            for parallelism in PARALLELISMS {
                let par = parallel_device(parallelism);
                let ctx = format!("rows {rows}, width {key_width}, p {parallelism}");
                let index = HashIndex::build(&par, &refs(&build_cols), 2);
                let counts = kernels::count_matches(&par, &index, &refs(&probe_cols));
                assert_eq!(counts, seq_counts, "count_matches: {ctx}");
                let (offsets, total) = kernels::scan(&par, &counts);
                let (bi, pi) =
                    kernels::hash_join(&par, &index, &refs(&probe_cols), &counts, &offsets, total);
                assert_eq!(bi, seq_bi, "hash_join build indices: {ctx}");
                assert_eq!(pi, seq_pi, "hash_join probe indices: {ctx}");
                assert_eq!(
                    kernels::append(&par, &[&refs(&build_cols), &refs(&probe_cols)]),
                    seq_append,
                    "append: {ctx}"
                );
            }
        }
    }
}

/// The merge-path join must be indistinguishable from the hash join — not
/// just the same match *set* but the same bytes in the same positions:
/// identical per-probe counts, and identical `(build, probe)` index columns.
/// The executor switches between the two paths on a static sort-order fact,
/// so any divergence here would make results depend on a compile-time
/// heuristic.
#[test]
fn merge_join_is_bit_identical_to_hash_join() {
    let seq = Device::sequential();
    for rows in ROW_COUNTS {
        for key_width in [1usize, 2] {
            let mut rng = Rng::new(rows as u64 * 17 + key_width as u64);
            let key_space = (rows as u64 / 7).max(3);
            let (build_raw, build_tags) = random_table(&mut rng, rows, key_width, key_space);
            let (probe_cols, _) = random_table(&mut rng, rows.div_ceil(2), key_width, key_space);
            // The merge path requires a sorted build side; the hash path
            // accepts one. Sort once and feed the same table to both.
            let (build_cols, _) = sorted_on(&seq, &build_raw, &build_tags);

            let index = HashIndex::build(&seq, &refs(&build_cols), 2);
            let hash_counts = kernels::count_matches(&seq, &index, &refs(&probe_cols));
            let (hash_offsets, hash_total) = kernels::scan(&seq, &hash_counts);
            let (hash_bi, hash_pi) = kernels::hash_join(
                &seq,
                &index,
                &refs(&probe_cols),
                &hash_counts,
                &hash_offsets,
                hash_total,
            );

            for parallelism in PARALLELISMS {
                let par = parallel_device(parallelism);
                let ctx = format!("rows {rows}, width {key_width}, p {parallelism}");
                let counts = kernels::merge_count(&par, &refs(&build_cols), &refs(&probe_cols));
                assert_eq!(counts, hash_counts, "merge_count vs count_matches: {ctx}");
                let (offsets, total) = kernels::scan(&par, &counts);
                let (bi, pi) = kernels::merge_join(
                    &par,
                    &refs(&build_cols),
                    &refs(&probe_cols),
                    &counts,
                    &offsets,
                    total,
                );
                assert_eq!(bi, hash_bi, "merge_join build indices: {ctx}");
                assert_eq!(pi, hash_pi, "merge_join probe indices: {ctx}");
            }
        }
    }
}

/// Partitioning the hash index must be invisible: whatever the partition
/// count and whatever the device parallelism (pooled workers vs sequential),
/// `count_matches` and `hash_join` must return the same bytes as the
/// monolithic single-partition index on the sequential device. Exercises
/// both the direct probe path and the radix-grouped [`ProbePartition`] path
/// explicitly, so the executor's choice between them can never show up in
/// results.
#[test]
fn partitioned_hash_join_is_bit_identical_to_monolithic() {
    let seq = Device::sequential();
    // 20_000 rows crosses both the auto-partition threshold (16_384) and the
    // grouped-probe minimum (4_096); the smaller regimes only partition when
    // we force an explicit partition count.
    for rows in [0usize, 37, 4099, 20_000] {
        for key_width in [1usize, 2] {
            let mut rng = Rng::new(rows as u64 * 29 + key_width as u64);
            let key_space = (rows as u64 / 7).max(3);
            let (build_cols, _) = random_table(&mut rng, rows, key_width, key_space);
            let (probe_cols, _) = random_table(&mut rng, rows.div_ceil(2), key_width, key_space);

            let mono = HashIndex::build_partitioned(&seq, &refs(&build_cols), 2, 1);
            let seq_counts = kernels::count_matches(&seq, &mono, &refs(&probe_cols));
            let (seq_offsets, seq_total) = kernels::scan(&seq, &seq_counts);
            let (seq_bi, seq_pi) = kernels::hash_join(
                &seq,
                &mono,
                &refs(&probe_cols),
                &seq_counts,
                &seq_offsets,
                seq_total,
            );

            for parallelism in PARALLELISMS {
                let par = parallel_device(parallelism);
                for partitions in [1usize, 4, 32] {
                    let ctx =
                        format!("rows {rows}, width {key_width}, p {parallelism}, P {partitions}");
                    let index =
                        HashIndex::build_partitioned(&par, &refs(&build_cols), 2, partitions);
                    // Auto path: picks grouped probing on its own when it
                    // applies.
                    let counts = kernels::count_matches(&par, &index, &refs(&probe_cols));
                    assert_eq!(counts, seq_counts, "count_matches auto: {ctx}");
                    let (offsets, total) = kernels::scan(&par, &counts);
                    let (bi, pi) = kernels::hash_join(
                        &par,
                        &index,
                        &refs(&probe_cols),
                        &counts,
                        &offsets,
                        total,
                    );
                    assert_eq!(bi, seq_bi, "hash_join auto build indices: {ctx}");
                    assert_eq!(pi, seq_pi, "hash_join auto probe indices: {ctx}");

                    // Explicit grouped path (the executor's memoized route),
                    // and explicit direct path, must both match.
                    let part = ProbePartition::build(&par, &index, &refs(&probe_cols));
                    let grouped = kernels::count_matches_with(
                        &par,
                        &index,
                        &refs(&probe_cols),
                        part.as_ref(),
                    );
                    assert_eq!(grouped, seq_counts, "count_matches grouped: {ctx}");
                    let direct =
                        kernels::count_matches_with(&par, &index, &refs(&probe_cols), None);
                    assert_eq!(direct, seq_counts, "count_matches direct: {ctx}");
                    let (gbi, gpi) = kernels::hash_join_with(
                        &par,
                        &index,
                        &refs(&probe_cols),
                        part.as_ref(),
                        &counts,
                        &offsets,
                        total,
                    );
                    assert_eq!(gbi, seq_bi, "hash_join grouped build indices: {ctx}");
                    assert_eq!(gpi, seq_pi, "hash_join grouped probe indices: {ctx}");
                    if let Some(part) = part {
                        part.recycle(&par);
                    }
                    index.recycle(&par);
                }
            }
        }
    }
}

/// A pooled device is reused across many launches: repeating the same
/// sort → unique → join pipeline on one long-lived parallel device must keep
/// producing exactly the first run's bytes (no cross-launch state in the
/// persistent workers), and must agree with a fresh device every time.
#[test]
fn pooled_device_reuse_is_stable_across_repeated_launches() {
    let par = parallel_device(4);
    let mut rng = Rng::new(4242);
    let rows = 6000;
    let (cols, tags) = random_table(&mut rng, rows, 2, 401);
    let (probe_cols, _) = random_table(&mut rng, rows / 2, 2, 401);

    let mut baseline = None;
    for round in 0..10 {
        let (sorted, stags) = sorted_on(&par, &cols, &tags);
        let (uniq, utags) = kernels::unique(&par, &refs(&sorted), &stags, |a, b| a + b);
        let index = HashIndex::build(&par, &refs(&uniq), 2);
        let counts = kernels::count_matches(&par, &index, &refs(&probe_cols));
        let (offsets, total) = kernels::scan(&par, &counts);
        let (bi, pi) =
            kernels::hash_join(&par, &index, &refs(&probe_cols), &counts, &offsets, total);
        let run = (
            uniq,
            utags.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
            bi,
            pi,
        );
        match &baseline {
            None => baseline = Some(run),
            Some(first) => assert_eq!(&run, first, "round {round} diverged"),
        }
        index.recycle(&par);
    }
}

/// Narrow encoded rows: for every physical lane width the dictionary layer
/// can emit (1, 2, 4, 8 bytes), packing logical columns into group words and
/// unpacking them back must be the identity, must be chunk-invariant across
/// parallelism degrees, and — the property the encoded storage layer leans
/// on — sorting the packed words must order rows exactly like sorting the
/// full-width columns (first lane most significant ⇒ word order is
/// column-lexicographic order).
#[test]
fn packed_narrow_rows_sort_like_wide_rows() {
    let seq = Device::sequential();
    const ARITY: usize = 3;
    for width_bytes in [1usize, 2, 4, 8] {
        let bits = width_bytes as u32 * 8;
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        // Small key spaces force duplicate rows (sort-tie coverage); cap at
        // the lane's capacity so every value fits its mask.
        let key_space = mask.min(97) + 1;
        // Greedy grouping, matching the layout planner: as many lanes per
        // 8-byte word as fit, first logical column in the topmost lane.
        let per_group = 8 / width_bytes;
        let groups: Vec<Vec<PackLane>> = (0..ARITY)
            .collect::<Vec<_>>()
            .chunks(per_group)
            .map(|chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, &column)| PackLane {
                        column,
                        shift: (chunk.len() - 1 - i) as u32 * bits,
                        mask,
                    })
                    .collect()
            })
            .collect();

        for rows in ROW_COUNTS {
            let mut rng = Rng::new(rows as u64 * 43 + width_bytes as u64);
            let (cols, _) = random_table(&mut rng, rows, ARITY, key_space);
            let seq_packed = kernels::pack_columns(&seq, &refs(&cols), &groups);
            let unpacked = kernels::unpack_columns(&seq, &refs(&seq_packed), &groups, ARITY);
            assert_eq!(unpacked, cols, "w {width_bytes}, rows {rows}: round trip");
            let wide_perm = kernels::sort_permutation(&seq, &refs(&cols));
            let packed_perm = kernels::sort_permutation(&seq, &refs(&seq_packed));
            assert_eq!(
                packed_perm, wide_perm,
                "w {width_bytes}, rows {rows}: packed sort order"
            );

            for parallelism in PARALLELISMS {
                let par = parallel_device(parallelism);
                let ctx = format!("w {width_bytes}, rows {rows}, p {parallelism}");
                let packed = kernels::pack_columns(&par, &refs(&cols), &groups);
                assert_eq!(packed, seq_packed, "pack: {ctx}");
                assert_eq!(
                    kernels::unpack_columns(&par, &refs(&packed), &groups, ARITY),
                    cols,
                    "unpack: {ctx}"
                );
                assert_eq!(
                    kernels::sort_permutation(&par, &refs(&packed)),
                    wide_perm,
                    "packed sort: {ctx}"
                );
            }
        }
    }
}

/// The radix/merge algorithm switch must be invisible: a table sorted just
/// under the radix pass budget and one just over it (same data, one extra
/// wide column appended) order their shared prefix identically.
#[test]
fn algorithm_switch_is_invisible_on_shared_prefix() {
    let seq = Device::sequential();
    let par = parallel_device(4);
    let mut rng = Rng::new(99);
    let rows = 2048;
    let (mut cols, _) = random_table(&mut rng, rows, 2, 50);
    // Constant wide column: forces the merge-sort path without changing the
    // lexicographic order of the rows.
    cols.push(vec![u64::MAX - 3; rows]);
    for _ in 0..7 {
        cols.push(vec![u64::MAX - 3; rows]);
    }
    let narrow = &cols[..2];
    let wide = &cols[..];
    for device in [&seq, &par] {
        let narrow_perm = kernels::sort_permutation(device, &refs(narrow));
        let wide_perm = kernels::sort_permutation(device, &refs(wide));
        assert_eq!(
            narrow_perm, wide_perm,
            "constant wide columns change nothing"
        );
    }
}
