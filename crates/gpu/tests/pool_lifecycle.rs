//! Lifecycle tests for the persistent kernel worker pool: pool threads are
//! spawned at [`Device`] construction, survive for the device's whole life,
//! and are joined when the last handle drops — repeated create/drop cycles
//! must not leak OS threads, a panicking kernel must not kill the pool, and
//! shard devices must each get their own correctly sized pool.

use lobster_gpu::{kernels, Device, DeviceConfig};

/// Reads this process's live thread count from `/proc/self/status`.
/// Returns `None` off Linux (or in a sandbox that hides procfs), in which
/// case the leak test self-skips.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

fn device(parallelism: usize) -> Device {
    Device::new(DeviceConfig {
        parallelism,
        min_parallel_rows: 8,
        ..DeviceConfig::default()
    })
}

/// Runs one real kernel so the pool's workers have demonstrably executed
/// work on this device before it drops.
fn exercise(dev: &Device) {
    let data: Vec<u64> = (0..10_000).map(|i| (i * 2654435761) % 977).collect();
    let perm = kernels::sort_permutation(dev, &[&data]);
    assert_eq!(perm.len(), data.len());
}

#[test]
fn repeated_create_drop_does_not_leak_threads() {
    let Some(before) = os_thread_count() else {
        eprintln!("skipping: /proc/self/status not readable");
        return;
    };
    for _ in 0..50 {
        let dev = device(4);
        assert_eq!(dev.pool_workers(), 3);
        exercise(&dev);
        drop(dev); // joins the three `lobster-kernel-{i}` threads
    }
    // Drop joins the workers before returning, so the count must be back to
    // where it started — any growth is a leaked pool thread. A small slack
    // covers unrelated runtime threads the test harness may start or stop.
    let after = os_thread_count().expect("procfs was readable above");
    assert!(
        after <= before + 1,
        "thread leak: {before} threads before, {after} after 50 create/drop cycles"
    );
}

#[test]
fn sequential_device_owns_no_pool_threads() {
    let dev = Device::sequential();
    assert_eq!(dev.pool_workers(), 0);
    exercise(&dev); // still executes, inline on the launching thread
}

#[test]
fn clones_share_one_pool_and_drop_joins_only_the_last() {
    let Some(baseline) = os_thread_count() else {
        eprintln!("skipping: /proc/self/status not readable");
        return;
    };
    let dev = device(3);
    let clone = dev.clone();
    assert_eq!(dev.pool_workers(), 2);
    assert_eq!(clone.pool_workers(), 2);
    drop(dev);
    // The clone keeps the pool alive and working.
    exercise(&clone);
    drop(clone);
    let after = os_thread_count().expect("procfs was readable above");
    assert!(
        after <= baseline + 2,
        "pool threads outlived the last device handle: {baseline} -> {after}"
    );
}

#[test]
fn split_shards_gives_each_shard_its_own_pool() {
    let parent = device(8);
    let shards = parent.split_shards(3);
    // Parallelism 8 over 3 shards: 3 + 3 + 2 lanes; workers are lanes - 1.
    let workers: Vec<usize> = shards.iter().map(Device::pool_workers).collect();
    assert_eq!(workers, vec![2, 2, 1]);
    for shard in &shards {
        exercise(shard);
    }
    // Dropping the parent leaves the shard pools untouched.
    drop(parent);
    for shard in &shards {
        exercise(shard);
    }
}

#[test]
fn pool_survives_a_panicking_kernel() {
    let dev = device(4);
    let data: Vec<u64> = (0..4096).collect();
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // eval's closure runs on pool workers; the panic must propagate to
        // this thread, not kill the worker.
        kernels::eval(&dev, data.len(), 1, |range, _sink| {
            if range.contains(&2048) {
                panic!("kernel bug");
            }
        })
    }));
    assert!(boom.is_err(), "worker panic must reach the launcher");
    // The device (and its pool) must still be fully usable afterwards.
    exercise(&dev);
    assert_eq!(dev.pool_workers(), 3);
}
