//! The data-parallel kernel library backing the APM instruction set.
//!
//! Each function corresponds to one (or one family of) APM instruction from
//! Table 1 of the paper. Kernels operate on flat 64-bit columns plus a
//! generic tag slice, record a launch on the [`Device`], and are
//! deterministic regardless of the configured parallelism.

use crate::parallel::{par_collect_chunks, par_map_into};
use crate::{Column, Columns, Device, HashIndex};
use std::cmp::Ordering;

/// Compares row `i` of `a` with row `j` of `b` lexicographically by column.
pub fn cmp_rows(a: &[&[u64]], i: usize, b: &[&[u64]], j: usize) -> Ordering {
    for (ca, cb) in a.iter().zip(b.iter()) {
        match ca[i].cmp(&cb[j]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// `eval⟨α⟩(s̄)`: evaluates a projection/selection function on every row.
///
/// `f` receives the row index and returns the output row, or `None` when the
/// row is filtered out (selection). The result is the output columns plus,
/// for each output row, the index of the input row it came from — the latter
/// is what lets the caller copy (or gather) provenance tags, since projection
/// ties each output fact to exactly one input fact (Section 3.3).
pub fn eval<F>(device: &Device, len: usize, out_arity: usize, f: F) -> (Columns, Column)
where
    F: Fn(usize) -> Option<Vec<u64>> + Sync,
{
    device.record_kernel();
    let rows: Vec<(u64, Vec<u64>)> = par_collect_chunks(device, len, |range| {
        let mut out = Vec::new();
        for i in range {
            if let Some(row) = f(i) {
                debug_assert_eq!(row.len(), out_arity, "projection produced wrong arity");
                out.push((i as u64, row));
            }
        }
        out
    });
    let mut columns: Columns = vec![Vec::with_capacity(rows.len()); out_arity];
    let mut sources: Column = Vec::with_capacity(rows.len());
    for (src, row) in rows {
        sources.push(src);
        for (c, v) in row.into_iter().enumerate() {
            columns[c].push(v);
        }
    }
    (columns, sources)
}

/// `gather(i, s)`: `out[k] = column[indices[k]]`.
pub fn gather(device: &Device, indices: &[u64], column: &[u64]) -> Column {
    device.record_kernel();
    let mut out = vec![0u64; indices.len()];
    par_map_into(device, &mut out, |k| column[indices[k] as usize]);
    out
}

/// Tag variant of [`gather`].
pub fn gather_tags<T: Clone + Send + Sync>(device: &Device, indices: &[u64], tags: &[T]) -> Vec<T> {
    device.record_kernel();
    let mut out: Vec<Option<T>> = vec![None; indices.len()];
    par_map_into(device, &mut out, |k| {
        Some(tags[indices[k] as usize].clone())
    });
    out.into_iter()
        .map(|t| t.expect("gather_tags produced a hole"))
        .collect()
}

/// `gather⟨⊗⟩([i_l, i_r], [t_l, t_r])`: gathers a tag from each side of a
/// join and combines them with the semiring conjunction.
pub fn gather_mul_tags<T, F>(
    device: &Device,
    left_indices: &[u64],
    right_indices: &[u64],
    left_tags: &[T],
    right_tags: &[T],
    mul: F,
) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    device.record_kernel();
    debug_assert_eq!(left_indices.len(), right_indices.len());
    let mut out: Vec<Option<T>> = vec![None; left_indices.len()];
    par_map_into(device, &mut out, |k| {
        let l = &left_tags[left_indices[k] as usize];
        let r = &right_tags[right_indices[k] as usize];
        Some(mul(l, r))
    });
    out.into_iter()
        .map(|t| t.expect("gather_mul_tags produced a hole"))
        .collect()
}

/// `scan(s)`: exclusive prefix sum. Returns the offsets and the total.
pub fn scan(device: &Device, counts: &[u64]) -> (Column, u64) {
    device.record_kernel();
    let mut offsets = Vec::with_capacity(counts.len());
    let mut acc = 0u64;
    for &c in counts {
        offsets.push(acc);
        acc += c;
    }
    (offsets, acc)
}

/// `sort(s̄)`: returns the permutation that lexicographically sorts the rows
/// of the table formed by `columns`.
pub fn sort_permutation(device: &Device, columns: &[&[u64]]) -> Column {
    device.record_kernel();
    let len = columns.first().map(|c| c.len()).unwrap_or(0);
    let mut perm: Vec<u64> = (0..len as u64).collect();
    perm.sort_unstable_by(|&i, &j| cmp_rows(columns, i as usize, columns, j as usize));
    perm
}

/// Applies a sort permutation to a set of columns and their tags.
pub fn apply_permutation<T: Clone + Send + Sync>(
    device: &Device,
    perm: &[u64],
    columns: &[&[u64]],
    tags: &[T],
) -> (Columns, Vec<T>) {
    let cols = columns.iter().map(|c| gather(device, perm, c)).collect();
    let tags = gather_tags(device, perm, tags);
    (cols, tags)
}

/// `unique⟨⊕⟩(s̄)`: merges adjacent duplicate rows of a sorted table,
/// combining their tags with the semiring disjunction.
pub fn unique<T, F>(device: &Device, columns: &[&[u64]], tags: &[T], or: F) -> (Columns, Vec<T>)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T,
{
    device.record_kernel();
    let len = columns.first().map(|c| c.len()).unwrap_or(0);
    let arity = columns.len();
    let mut out_cols: Columns = vec![Vec::new(); arity];
    let mut out_tags: Vec<T> = Vec::new();
    let mut i = 0;
    while i < len {
        let mut tag = tags[i].clone();
        let mut j = i + 1;
        while j < len && cmp_rows(columns, i, columns, j) == Ordering::Equal {
            tag = or(&tag, &tags[j]);
            j += 1;
        }
        for (c, col) in columns.iter().enumerate() {
            out_cols[c].push(col[i]);
        }
        out_tags.push(tag);
        i = j;
    }
    (out_cols, out_tags)
}

/// `merge(ā, b̄)`: merges two lexicographically sorted tables into one sorted
/// table. Rows are kept from both inputs (no deduplication).
pub fn merge<T: Clone + Send + Sync>(
    device: &Device,
    a_cols: &[&[u64]],
    a_tags: &[T],
    b_cols: &[&[u64]],
    b_tags: &[T],
) -> (Columns, Vec<T>) {
    device.record_kernel();
    let arity = a_cols.len().max(b_cols.len());
    let (la, lb) = (a_tags.len(), b_tags.len());
    let mut out_cols: Columns = vec![Vec::with_capacity(la + lb); arity];
    let mut out_tags: Vec<T> = Vec::with_capacity(la + lb);
    let (mut i, mut j) = (0, 0);
    while i < la && j < lb {
        if cmp_rows(a_cols, i, b_cols, j) != Ordering::Greater {
            for (c, col) in a_cols.iter().enumerate() {
                out_cols[c].push(col[i]);
            }
            out_tags.push(a_tags[i].clone());
            i += 1;
        } else {
            for (c, col) in b_cols.iter().enumerate() {
                out_cols[c].push(col[j]);
            }
            out_tags.push(b_tags[j].clone());
            j += 1;
        }
    }
    while i < la {
        for (c, col) in a_cols.iter().enumerate() {
            out_cols[c].push(col[i]);
        }
        out_tags.push(a_tags[i].clone());
        i += 1;
    }
    while j < lb {
        for (c, col) in b_cols.iter().enumerate() {
            out_cols[c].push(col[j]);
        }
        out_tags.push(b_tags[j].clone());
        j += 1;
    }
    (out_cols, out_tags)
}

/// `diff(ā, b̄)`: rows of sorted table `a` that do not occur in sorted table
/// `b`, keeping `a`'s tags. This is the set difference required to keep
/// semi-naive evaluation terminating (new delta facts must not already be
/// known).
pub fn difference<T: Clone + Send + Sync>(
    device: &Device,
    a_cols: &[&[u64]],
    a_tags: &[T],
    b_cols: &[&[u64]],
    b_len: usize,
) -> (Columns, Vec<T>) {
    device.record_kernel();
    let arity = a_cols.len();
    let a_len = a_tags.len();
    let mut out_cols: Columns = vec![Vec::new(); arity];
    let mut out_tags: Vec<T> = Vec::new();
    let mut j = 0usize;
    for i in 0..a_len {
        while j < b_len && cmp_rows(b_cols, j, a_cols, i) == Ordering::Less {
            j += 1;
        }
        let present = j < b_len && cmp_rows(b_cols, j, a_cols, i) == Ordering::Equal;
        if !present {
            for (c, col) in a_cols.iter().enumerate() {
                out_cols[c].push(col[i]);
            }
            out_tags.push(a_tags[i].clone());
        }
    }
    (out_cols, out_tags)
}

/// `count(b̄, h, ā)`: for every probe row, the number of build rows with a
/// matching key in the hash index.
pub fn count_matches(device: &Device, index: &HashIndex, probe_key_cols: &[&[u64]]) -> Column {
    device.record_kernel();
    let len = probe_key_cols.first().map(|c| c.len()).unwrap_or(0);
    let mut out = vec![0u64; len];
    par_map_into(device, &mut out, |i| {
        let key: Vec<u64> = probe_key_cols.iter().map(|c| c[i]).collect();
        index.count(&key) as u64
    });
    out
}

/// `join⟨W⟩(b̄, ā, h, c, o)`: produces the matching index pairs of a hash
/// join. Returns `(build_indices, probe_indices)`, where output rows for
/// probe row `i` occupy positions `offsets[i] .. offsets[i] + counts[i]`.
pub fn hash_join(
    device: &Device,
    index: &HashIndex,
    probe_key_cols: &[&[u64]],
    counts: &[u64],
    offsets: &[u64],
    total: u64,
) -> (Column, Column) {
    device.record_kernel();
    let len = probe_key_cols.first().map(|c| c.len()).unwrap_or(0);
    debug_assert_eq!(counts.len(), len);
    debug_assert_eq!(offsets.len(), len);
    // Fill per probe row; collect per-chunk triples then scatter into the
    // pre-sized output (disjoint ranges, so order is deterministic).
    let pieces: Vec<(u64, Vec<u64>)> = par_collect_chunks(device, len, |range| {
        let mut piece = Vec::new();
        for i in range {
            if counts[i] == 0 {
                continue;
            }
            let key: Vec<u64> = probe_key_cols.iter().map(|c| c[i]).collect();
            let mut matches = Vec::with_capacity(counts[i] as usize);
            index.for_each_match(&key, |build_row| matches.push(build_row as u64));
            piece.push((
                offsets[i],
                matches.into_iter().map(|b| (b << 32) | i as u64).collect(),
            ));
        }
        piece
    });
    let mut build_out = vec![0u64; total as usize];
    let mut probe_out = vec![0u64; total as usize];
    for (offset, packed) in pieces {
        for (k, p) in packed.into_iter().enumerate() {
            build_out[offset as usize + k] = p >> 32;
            probe_out[offset as usize + k] = p & 0xFFFF_FFFF;
        }
    }
    (build_out, probe_out)
}

/// `copy(s̄)` / `append`: concatenates columns row-wise.
pub fn append(device: &Device, tables: &[&[&[u64]]]) -> Columns {
    device.record_kernel();
    let arity = tables.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut out: Columns = vec![Vec::new(); arity];
    for table in tables {
        for (c, col) in table.iter().enumerate() {
            out[c].extend_from_slice(col);
        }
    }
    out
}

/// Tag variant of [`append`].
pub fn append_tags<T: Clone>(device: &Device, tag_sets: &[&[T]]) -> Vec<T> {
    device.record_kernel();
    let mut out = Vec::with_capacity(tag_sets.iter().map(|t| t.len()).sum());
    for tags in tag_sets {
        out.extend_from_slice(tags);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::sequential()
    }

    fn refs(cols: &[Column]) -> Vec<&[u64]> {
        cols.iter().map(|c| c.as_slice()).collect()
    }

    #[test]
    fn eval_projects_and_filters() {
        let d = dev();
        let col = [1u64, 2, 3, 4, 5];
        let (cols, src) = eval(&d, col.len(), 1, |i| {
            let v = col[i];
            if v % 2 == 1 {
                Some(vec![v * 10])
            } else {
                None
            }
        });
        assert_eq!(cols, vec![vec![10, 30, 50]]);
        assert_eq!(src, vec![0, 2, 4]);
    }

    #[test]
    fn gather_and_gather_tags_follow_indices() {
        let d = dev();
        let col = vec![10u64, 20, 30];
        let tags = vec!["a", "b", "c"];
        assert_eq!(gather(&d, &[2, 0, 0], &col), vec![30, 10, 10]);
        assert_eq!(gather_tags(&d, &[1, 1, 2], &tags), vec!["b", "b", "c"]);
    }

    #[test]
    fn gather_mul_tags_combines_sides() {
        let d = dev();
        let left = vec![2.0f64, 3.0];
        let right = vec![10.0f64, 100.0];
        let out = gather_mul_tags(&d, &[0, 1], &[1, 0], &left, &right, |a, b| a * b);
        assert_eq!(out, vec![200.0, 30.0]);
    }

    #[test]
    fn scan_is_exclusive_prefix_sum() {
        let d = dev();
        let (offsets, total) = scan(&d, &[2, 0, 3, 1]);
        assert_eq!(offsets, vec![0, 2, 2, 5]);
        assert_eq!(total, 6);
        let (empty, zero) = scan(&d, &[]);
        assert!(empty.is_empty());
        assert_eq!(zero, 0);
    }

    #[test]
    fn sort_and_unique_deduplicate_with_tag_merge() {
        let d = dev();
        let cols = vec![vec![2u64, 1, 2, 1], vec![7u64, 5, 7, 6]];
        let tags = vec![1.0f64, 2.0, 3.0, 4.0];
        let perm = sort_permutation(&d, &refs(&cols));
        let (sorted, stags) = apply_permutation(&d, &perm, &refs(&cols), &tags);
        assert_eq!(sorted[0], vec![1, 1, 2, 2]);
        assert_eq!(sorted[1], vec![5, 6, 7, 7]);
        let (uniq, utags) = unique(&d, &refs(&sorted), &stags, |a, b| a.max(*b));
        assert_eq!(uniq[0], vec![1, 1, 2]);
        assert_eq!(uniq[1], vec![5, 6, 7]);
        assert_eq!(utags, vec![2.0, 4.0, 3.0]);
    }

    #[test]
    fn merge_preserves_sort_order() {
        let d = dev();
        let a = vec![vec![1u64, 3, 5]];
        let b = vec![vec![2u64, 3, 6]];
        let (cols, tags) = merge(&d, &refs(&a), &[10, 30, 50], &refs(&b), &[20, 31, 60]);
        assert_eq!(cols[0], vec![1, 2, 3, 3, 5, 6]);
        assert_eq!(tags, vec![10, 20, 30, 31, 50, 60]);
    }

    #[test]
    fn difference_removes_known_rows() {
        let d = dev();
        let a = vec![vec![1u64, 2, 3, 4]];
        let b = vec![vec![2u64, 4]];
        let (cols, tags) = difference(&d, &refs(&a), &["p", "q", "r", "s"], &refs(&b), 2);
        assert_eq!(cols[0], vec![1, 3]);
        assert_eq!(tags, vec!["p", "r"]);
    }

    #[test]
    fn difference_against_empty_keeps_everything() {
        let d = dev();
        let a = vec![vec![5u64, 6]];
        let empty: Vec<Column> = vec![Vec::new()];
        let (cols, tags) = difference(&d, &refs(&a), &[1, 2], &refs(&empty), 0);
        assert_eq!(cols[0], vec![5, 6]);
        assert_eq!(tags, vec![1, 2]);
    }

    #[test]
    fn hash_join_produces_all_pairs() {
        let d = dev();
        // Build side: edge(z, y) keyed on z; probe side: path(x, z) keyed on z.
        let build = [vec![1u64, 1, 2], vec![10u64, 11, 12]];
        let probe = [vec![0u64, 5], vec![1u64, 1]]; // path(0,1), path(5,1)
        let index = HashIndex::build(&d, &[&build[0]], 2);
        let probe_key = [probe[1].as_slice()];
        let counts = count_matches(&d, &index, &probe_key);
        assert_eq!(counts, vec![2, 2]);
        let (offsets, total) = scan(&d, &counts);
        let (bi, pi) = hash_join(&d, &index, &probe_key, &counts, &offsets, total);
        assert_eq!(bi.len(), 4);
        // Each probe row matched build rows 0 and 1 in some deterministic order.
        let mut pairs: Vec<(u64, u64)> = bi.iter().copied().zip(pi.iter().copied()).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn append_concatenates_tables() {
        let d = dev();
        let a = vec![vec![1u64], vec![2u64]];
        let b = vec![vec![3u64, 4], vec![5u64, 6]];
        let out = append(&d, &[&refs(&a), &refs(&b)]);
        assert_eq!(out[0], vec![1, 3, 4]);
        assert_eq!(out[1], vec![2, 5, 6]);
        let tags = append_tags(&d, &[&[1.0f64], &[2.0, 3.0]]);
        assert_eq!(tags, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn kernels_record_launches() {
        let d = dev();
        let _ = scan(&d, &[1, 2, 3]);
        let _ = sort_permutation(&d, &[&[3u64, 1, 2][..]]);
        assert!(d.stats().kernel_launches >= 2);
    }

    #[test]
    fn parallel_and_sequential_join_agree() {
        use crate::DeviceConfig;
        let seq = Device::sequential();
        let par = Device::new(DeviceConfig {
            parallelism: 8,
            min_parallel_rows: 16,
            ..DeviceConfig::default()
        });
        // Random-ish graph join.
        let n = 5000u64;
        let from: Vec<u64> = (0..n).map(|i| i % 97).collect();
        let to: Vec<u64> = (0..n).map(|i| (i * 7) % 89).collect();
        for d in [&seq, &par] {
            let index = HashIndex::build(d, &[&from], 2);
            let counts = count_matches(d, &index, &[&to]);
            let (offsets, total) = scan(d, &counts);
            let (bi, pi) = hash_join(d, &index, &[&to], &counts, &offsets, total);
            let mut pairs: Vec<(u64, u64)> = bi.into_iter().zip(pi).collect();
            pairs.sort_unstable();
            // Compare against a nested-loop reference on the first device only.
            if std::ptr::eq(d, &seq) {
                let mut reference = Vec::new();
                for (j, &t) in to.iter().enumerate() {
                    for (i, &f) in from.iter().enumerate() {
                        if f == t {
                            reference.push((i as u64, j as u64));
                        }
                    }
                }
                reference.sort_unstable();
                assert_eq!(pairs, reference);
            }
        }
    }
}
