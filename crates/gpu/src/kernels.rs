//! The data-parallel kernel library backing the APM instruction set.
//!
//! Each function corresponds to one (or one family of) APM instruction from
//! Table 1 of the paper. Kernels operate on flat 64-bit columns plus a
//! generic tag slice, record a timed launch on the [`Device`], and route
//! every output and scratch column through the device's
//! [`Arena`](crate::Arena) so steady-state fix-point iterations allocate
//! nothing fresh.
//!
//! # Determinism contract
//!
//! Every kernel produces **bit-identical output whatever the configured
//! parallelism**, because each one is built so that chunk boundaries decide
//! only *which worker computes an element*, never what the element is:
//!
//! * [`sort_permutation`] returns the unique permutation that orders rows by
//!   `(row content, original index)` — a total order, so the stable LSD
//!   radix sort, the parallel merge sort, and the small-input comparison
//!   sort all produce the same bytes.
//! * [`scan`] splits into per-chunk sums plus per-chunk rescan; `u64`
//!   addition is associative, so the two-pass result equals the sequential
//!   fold.
//! * [`unique`] reduces each duplicate segment left-to-right (ascending row
//!   index) regardless of how segments are distributed over workers, so
//!   non-commutative or order-sensitive tag disjunctions (e.g. float
//!   addition) fold in exactly one order.
//! * [`merge`] / [`difference`] cut both inputs at *partition points*
//!   (binary searches on the data), and each worker runs the sequential
//!   two-pointer walk on its cut; the cuts are data-determined, so the
//!   concatenated output equals the sequential walk.
//! * [`eval`], the gathers, and [`hash_join`] write each output element as a
//!   pure function of its input row(s) into disjoint, position-stable
//!   output ranges.
//! * [`count_matches`] and [`hash_join`] switch between the direct and the
//!   radix-grouped probe path (see [`ProbePartition`]) on the probe length
//!   and index structure alone — never on device parallelism — and the
//!   grouped path scatters results back into original probe order, so both
//!   paths produce the same bytes.
//!
//! Parallel execution runs on the device's persistent worker pool
//! ([`crate::pool`]); no kernel spawns threads per launch.

use crate::device::KernelKind;
use crate::parallel::{chunks_for, map_chunks, par_map_into, run_chunks, split_by_ranges};
use crate::{Column, Columns, Device, HashIndex, ProbePartition};
use std::cmp::Ordering;
use std::ops::Range;
use std::time::Instant;

/// Allocation-site ids for kernel outputs and scratch buffers (see
/// [`Arena`](crate::Arena)): every column a kernel allocates is tagged with
/// one of these,
/// so a kernel that recycles its scratch gets the same buffer back on its
/// next launch. Callers that outlive a kernel's output (the executor's
/// register file, the database's tables) recycle it site-unknown via
/// [`Arena::recycle_shared`](crate::Arena::recycle_shared).
pub mod sites {
    /// Sort output permutation.
    pub const SORT_OUT: usize = 1;
    /// Sort double-buffer scratch.
    pub const SORT_SCRATCH: usize = 2;
    /// Scan output offsets.
    pub const SCAN_OUT: usize = 3;
    /// Unique segment-start scratch.
    pub const UNIQUE_STARTS: usize = 4;
    /// Unique output columns.
    pub const UNIQUE_OUT: usize = 5;
    /// Merge output columns.
    pub const MERGE_OUT: usize = 6;
    /// Difference kept-row scratch.
    pub const DIFF_KEPT: usize = 7;
    /// Difference output columns.
    pub const DIFF_OUT: usize = 8;
    /// Eval output columns (data plus source indices).
    pub const EVAL_OUT: usize = 9;
    /// Gather output columns.
    pub const GATHER_OUT: usize = 10;
    /// Hash-join output index columns.
    pub const JOIN_OUT: usize = 11;
    /// Append output columns.
    pub const APPEND_OUT: usize = 12;
    /// Count-matches output column.
    pub const COUNT_OUT: usize = 13;
    /// Hash-index slot tables and owned key copies.
    pub const JOIN_INDEX: usize = 14;
    /// Merge-join count output column.
    pub const MERGE_COUNT_OUT: usize = 15;
    /// Merge-join output index columns.
    pub const MERGE_JOIN_OUT: usize = 16;
    /// Partitioned hash-index build scratch (row hashes, grouped row ids).
    pub const JOIN_BUILD: usize = 17;
    /// Radix-grouped probe scratch (probe hashes, grouping, grouped outputs).
    pub const JOIN_PROBE: usize = 18;
    /// Pack-columns output (dictionary-encoded narrow words).
    pub const PACK_OUT: usize = 19;
    /// Unpack-columns output (full-width logical columns).
    pub const UNPACK_OUT: usize = 20;
}

/// Compares row `i` of `a` with row `j` of `b` lexicographically by column.
pub fn cmp_rows(a: &[&[u64]], i: usize, b: &[&[u64]], j: usize) -> Ordering {
    for (ca, cb) in a.iter().zip(b.iter()) {
        match ca[i].cmp(&cb[j]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Chunk-local sink for [`eval`]: filtered projection rows are appended to
/// flat per-column buffers (no per-row allocation).
pub struct EvalSink {
    cols: Columns,
    sources: Column,
}

impl EvalSink {
    fn new(out_arity: usize) -> Self {
        EvalSink {
            cols: vec![Vec::new(); out_arity],
            sources: Vec::new(),
        }
    }

    /// Appends one output row produced from input row `source`.
    pub fn emit(&mut self, source: usize, row: &[u64]) {
        debug_assert_eq!(
            row.len(),
            self.cols.len(),
            "projection produced wrong arity"
        );
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push(*v);
        }
        self.sources.push(source as u64);
    }
}

/// `eval⟨α⟩(s̄)`: evaluates a projection/selection function on every row.
///
/// `f` is called once per chunk with the chunk's index range and a sink; it
/// evaluates the projection for each row and [`EvalSink::emit`]s the rows
/// that survive selection. The chunk granularity lets the caller hoist
/// per-row scratch (input row buffer, expression stack) out of the row loop,
/// so the whole kernel performs no per-row allocation. The result is the
/// output columns plus, for each output row, the index of the input row it
/// came from — the latter is what lets the caller copy (or gather)
/// provenance tags, since projection ties each output fact to exactly one
/// input fact (Section 3.3).
pub fn eval<F>(device: &Device, len: usize, out_arity: usize, f: F) -> (Columns, Column)
where
    F: Fn(Range<usize>, &mut EvalSink) + Sync,
{
    let _t = device.launch(KernelKind::Other);
    let ranges = chunks_for(device, len);
    let sinks: Vec<EvalSink> = map_chunks(device, &ranges, |_, range| {
        let mut sink = EvalSink::new(out_arity);
        f(range, &mut sink);
        sink
    });
    let total: usize = sinks.iter().map(|s| s.sources.len()).sum();
    let arena = device.arena();
    let mut columns: Columns = (0..out_arity)
        .map(|_| arena.alloc_empty(sites::EVAL_OUT, total))
        .collect();
    let mut sources: Column = arena.alloc_empty(sites::EVAL_OUT, total);
    for sink in sinks {
        for (out, piece) in columns.iter_mut().zip(&sink.cols) {
            out.extend_from_slice(piece);
        }
        sources.extend_from_slice(&sink.sources);
    }
    (columns, sources)
}

/// One lane of a packed word: logical column `column`'s value bits (`mask`
/// wide) placed at bit offset `shift`. The first logical column of a group
/// occupies the most-significant lane, so comparing packed words as `u64`s
/// equals comparing the lanes' columns lexicographically — the property that
/// lets every sort/merge/difference kernel run unchanged on packed data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackLane {
    /// Index of the logical (full-width) column this lane carries.
    pub column: usize,
    /// Bit offset of the lane within the packed word.
    pub shift: u32,
    /// Mask of the lane's value bits, before shifting.
    pub mask: u64,
}

/// `pack(s*, G)`: fuses logical columns into one narrow word column per
/// lane group. `out[g][k] = Σ_lanes (columns[lane.column][k] & mask) << shift`.
///
/// Every input value must fit its lane (`value & !mask == 0`) — the caller's
/// layout planner guarantees this by sizing lanes from the column's logical
/// type and dictionary cardinality. Debug builds assert it.
pub fn pack_columns(device: &Device, columns: &[&[u64]], groups: &[Vec<PackLane>]) -> Columns {
    let _t = device.launch(KernelKind::Other);
    let rows = columns.first().map_or(0, |c| c.len());
    let arena = device.arena();
    groups
        .iter()
        .map(|lanes| {
            let mut out = arena.alloc_zeroed(sites::PACK_OUT, rows);
            par_map_into(device, &mut out, |k| {
                let mut word = 0u64;
                for lane in lanes {
                    let v = columns[lane.column][k];
                    debug_assert_eq!(v & !lane.mask, 0, "value overflows its pack lane");
                    word |= (v & lane.mask) << lane.shift;
                }
                word
            });
            out
        })
        .collect()
}

/// Inverse of [`pack_columns`]: splits packed group columns back into
/// `arity` full-width logical columns.
/// `out[lane.column][k] = (packed[g][k] >> shift) & mask`.
pub fn unpack_columns(
    device: &Device,
    packed: &[&[u64]],
    groups: &[Vec<PackLane>],
    arity: usize,
) -> Columns {
    let _t = device.launch(KernelKind::Other);
    let rows = packed.first().map_or(0, |c| c.len());
    let arena = device.arena();
    let mut out: Columns = (0..arity)
        .map(|_| arena.alloc_zeroed(sites::UNPACK_OUT, rows))
        .collect();
    for (group, lanes) in packed.iter().zip(groups) {
        for lane in lanes {
            let (shift, mask) = (lane.shift, lane.mask);
            par_map_into(device, &mut out[lane.column], |k| {
                (group[k] >> shift) & mask
            });
        }
    }
    out
}

/// `gather(i, s)`: `out[k] = column[indices[k]]`.
pub fn gather(device: &Device, indices: &[u64], column: &[u64]) -> Column {
    let _t = device.launch(KernelKind::Other);
    let mut out = device
        .arena()
        .alloc_zeroed(sites::GATHER_OUT, indices.len());
    par_map_into(device, &mut out, |k| column[indices[k] as usize]);
    out
}

/// Tag variant of [`gather`]. Tags are cloned chunk-by-chunk into exact-size
/// buffers (no `Option` holes, no second pass).
pub fn gather_tags<T: Clone + Send + Sync>(device: &Device, indices: &[u64], tags: &[T]) -> Vec<T> {
    let _t = device.launch(KernelKind::Other);
    gather_tags_inner(device, indices, tags)
}

fn gather_tags_inner<T: Clone + Send + Sync>(
    device: &Device,
    indices: &[u64],
    tags: &[T],
) -> Vec<T> {
    let ranges = chunks_for(device, indices.len());
    let pieces: Vec<Vec<T>> = map_chunks(device, &ranges, |_, range| {
        indices[range]
            .iter()
            .map(|&k| tags[k as usize].clone())
            .collect()
    });
    concat_pieces(pieces, indices.len())
}

/// `gather⟨⊗⟩([i_l, i_r], [t_l, t_r])`: gathers a tag from each side of a
/// join and combines them with the semiring conjunction.
pub fn gather_mul_tags<T, F>(
    device: &Device,
    left_indices: &[u64],
    right_indices: &[u64],
    left_tags: &[T],
    right_tags: &[T],
    mul: F,
) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    let _t = device.launch(KernelKind::Other);
    debug_assert_eq!(left_indices.len(), right_indices.len());
    let ranges = chunks_for(device, left_indices.len());
    let pieces: Vec<Vec<T>> = map_chunks(device, &ranges, |_, range| {
        range
            .map(|k| {
                let l = &left_tags[left_indices[k] as usize];
                let r = &right_tags[right_indices[k] as usize];
                mul(l, r)
            })
            .collect()
    });
    concat_pieces(pieces, left_indices.len())
}

fn concat_pieces<T>(pieces: Vec<Vec<T>>, total: usize) -> Vec<T> {
    if pieces.len() == 1 {
        return pieces.into_iter().next().expect("one piece");
    }
    let mut out = Vec::with_capacity(total);
    for piece in pieces {
        out.extend(piece);
    }
    out
}

/// `scan(s)`: exclusive prefix sum (two-pass block scan). Returns the
/// offsets and the total.
pub fn scan(device: &Device, counts: &[u64]) -> (Column, u64) {
    let _t = device.launch(KernelKind::Other);
    scan_into(device, counts)
}

/// [`scan`] without recording its own launch — for kernels that scan
/// internally inside an already-open launch (the grouped join path), so the
/// work is attributed to the enclosing kernel instead of a nested `Other`
/// launch.
fn scan_into(device: &Device, counts: &[u64]) -> (Column, u64) {
    let len = counts.len();
    let mut offsets = device.arena().alloc_zeroed(sites::SCAN_OUT, len);
    let ranges = chunks_for(device, len);
    if ranges.len() <= 1 {
        let start = Instant::now();
        let mut acc = 0u64;
        for (slot, &c) in offsets.iter_mut().zip(counts) {
            *slot = acc;
            acc += c;
        }
        device.record_busy(start.elapsed());
        return (offsets, acc);
    }
    // Pass 1: per-chunk sums; tiny sequential scan of the sums.
    let sums: Vec<u64> = map_chunks(device, &ranges, |_, range| counts[range].iter().sum());
    let mut bases = Vec::with_capacity(sums.len());
    let mut acc = 0u64;
    for &s in &sums {
        bases.push(acc);
        acc += s;
    }
    // Pass 2: each chunk rescans from its base into its output slice.
    let slices = split_by_ranges(&mut offsets, &ranges);
    run_chunks(
        device,
        &ranges,
        slices.into_iter().zip(bases).collect(),
        |_, range, (slice, base): (&mut [u64], u64)| {
            let mut acc = base;
            for (slot, &c) in slice.iter_mut().zip(&counts[range]) {
                *slot = acc;
                acc += c;
            }
        },
    );
    (offsets, acc)
}

/// Maximum total radix passes (one per significant byte, summed over
/// columns) before [`sort_permutation`] falls back to the parallel merge
/// sort: beyond this the `O(passes · n)` radix cost loses to
/// `O(n log n)` comparisons.
const RADIX_PASS_BUDGET: u32 = 16;

/// Below this row count the permutation is comparison-sorted directly —
/// chunking and radix machinery only pay off in bulk.
const SMALL_SORT: usize = 64;

/// `sort(s̄)`: returns the permutation that lexicographically sorts the rows
/// of the table formed by `columns`.
///
/// The permutation is the unique one ordering rows by `(row content,
/// original index)`; equal rows keep their input order. Narrow tables (at
/// most `RADIX_PASS_BUDGET` (16) significant bytes across all columns, the
/// common case once dictionary-encoded values stay small) are sorted with a
/// parallel least-significant-digit radix sort — per-chunk digit histograms,
/// a scan over `(digit, chunk)` buckets, and a scatter into per-bucket
/// output slices. Wider tables fall back to a parallel stable merge sort
/// (sorted chunks, pairwise merged). Both are stable, so both produce the
/// same bytes.
pub fn sort_permutation(device: &Device, columns: &[&[u64]]) -> Column {
    let _t = device.launch(KernelKind::Sort);
    let len = columns.first().map(|c| c.len()).unwrap_or(0);
    let arena = device.arena();
    let mut perm = arena.alloc_zeroed(sites::SORT_OUT, len);
    par_map_into(device, &mut perm, |i| i as u64);
    if len <= 1 || columns.is_empty() {
        return perm;
    }
    if len <= SMALL_SORT {
        let start = Instant::now();
        perm.sort_unstable_by(|&i, &j| {
            cmp_rows(columns, i as usize, columns, j as usize).then(i.cmp(&j))
        });
        device.record_busy(start.elapsed());
        return perm;
    }
    let sig_bytes: Vec<u32> = columns
        .iter()
        .map(|col| significant_bytes(device, col))
        .collect();
    let total_passes: u32 = sig_bytes.iter().sum();
    if total_passes <= RADIX_PASS_BUDGET {
        radix_sort(device, columns, &sig_bytes, &mut perm);
    } else {
        merge_sort(device, columns, &mut perm);
    }
    perm
}

/// Number of bytes needed to represent the largest value of `col`.
fn significant_bytes(device: &Device, col: &[u64]) -> u32 {
    let ranges = chunks_for(device, col.len());
    let max = map_chunks(device, &ranges, |_, range| {
        col[range].iter().copied().max().unwrap_or(0)
    })
    .into_iter()
    .max()
    .unwrap_or(0);
    if max == 0 {
        0
    } else {
        (64 - max.leading_zeros()).div_ceil(8)
    }
}

/// Stable LSD radix sort of `perm` by the rows of `columns`: bytes within a
/// column least-significant first, columns last-to-first, so the final order
/// is lexicographic by row with original-index ties (stability).
fn radix_sort(device: &Device, columns: &[&[u64]], sig_bytes: &[u32], perm: &mut Column) {
    let len = perm.len();
    let arena = device.arena();
    let mut cur = std::mem::take(perm);
    let mut tmp = arena.alloc_zeroed(sites::SORT_SCRATCH, len);
    for (col, &bytes) in columns.iter().zip(sig_bytes).rev() {
        for b in 0..bytes {
            if radix_pass(device, col, 8 * b, &cur, &mut tmp) {
                std::mem::swap(&mut cur, &mut tmp);
            }
        }
    }
    *perm = cur;
    arena.recycle(sites::SORT_SCRATCH, tmp);
}

/// One counting-sort pass over the byte at `shift`. Returns `false` (and
/// leaves `dst` untouched) when every element shares the same digit.
fn radix_pass(device: &Device, col: &[u64], shift: u32, src: &Column, dst: &mut Column) -> bool {
    let len = src.len();
    let ranges = chunks_for(device, len);
    let digit = |v: u64| ((col[v as usize] >> shift) & 0xFF) as usize;
    // Per-chunk digit histograms.
    let histograms: Vec<[usize; 256]> = map_chunks(device, &ranges, |_, range| {
        let mut h = [0usize; 256];
        for &v in &src[range] {
            h[digit(v)] += 1;
        }
        h
    });
    // A pass whose digit is constant moves nothing — skip the scatter.
    let mut totals = [0usize; 256];
    for h in &histograms {
        for (t, c) in totals.iter_mut().zip(h.iter()) {
            *t += c;
        }
    }
    if totals.contains(&len) {
        return false;
    }
    // Carve `dst` into one slice per (digit, chunk) bucket, in destination
    // order, and regroup them per chunk: bucket (d, c) starts where all
    // smaller digits and all earlier chunks of digit d end.
    let mut per_chunk: Vec<Vec<&mut [u64]>> =
        (0..ranges.len()).map(|_| Vec::with_capacity(256)).collect();
    {
        let mut rest = dst.as_mut_slice();
        for d in 0..256 {
            for (c, h) in histograms.iter().enumerate() {
                let (head, tail) = rest.split_at_mut(h[d]);
                per_chunk[c].push(head);
                rest = tail;
            }
        }
        debug_assert!(rest.is_empty());
    }
    // Scatter: each chunk walks its elements in order and appends them to
    // its own slice of each digit bucket — stable, disjoint, parallel.
    run_chunks(
        device,
        &ranges,
        per_chunk,
        |_, range, mut slices: Vec<&mut [u64]>| {
            let mut cursors = [0usize; 256];
            for &v in &src[range] {
                let d = digit(v);
                slices[d][cursors[d]] = v;
                cursors[d] += 1;
            }
        },
    );
    true
}

/// Stable parallel merge sort of `perm` by row content: sorted chunks (index
/// tie-break), then pairwise parallel merges of adjacent runs. Adjacent runs
/// partition the index space in order, so "left run first on ties" *is* the
/// original-index tie-break.
/// One pairwise-merge work unit: the left run, the right run if the round
/// has one (the odd leftover run is copied through), and the output slice
/// covering both.
type MergeUnit<'a> = ((Range<usize>, Option<Range<usize>>), &'a mut [u64]);

fn merge_sort(device: &Device, columns: &[&[u64]], perm: &mut Column) {
    let len = perm.len();
    let ranges = chunks_for(device, len);
    {
        let slices = split_by_ranges(perm, &ranges);
        run_chunks(device, &ranges, slices, |_, _, slice: &mut [u64]| {
            slice.sort_unstable_by(|&i, &j| {
                cmp_rows(columns, i as usize, columns, j as usize).then(i.cmp(&j))
            });
        });
    }
    if ranges.len() <= 1 {
        return;
    }
    let arena = device.arena();
    let mut cur = std::mem::take(perm);
    let mut buf = arena.alloc_zeroed(sites::SORT_SCRATCH, len);
    let mut runs: Vec<Range<usize>> = ranges;
    while runs.len() > 1 {
        let mut merged: Vec<Range<usize>> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut pairs: Vec<(Range<usize>, Option<Range<usize>>)> =
            Vec::with_capacity(merged.capacity());
        for pair in runs.chunks(2) {
            if pair.len() == 2 {
                merged.push(pair[0].start..pair[1].end);
                pairs.push((pair[0].clone(), Some(pair[1].clone())));
            } else {
                merged.push(pair[0].clone());
                pairs.push((pair[0].clone(), None));
            }
        }
        {
            let out_slices = split_by_ranges(&mut buf, &merged);
            run_chunks(
                device,
                &merged,
                pairs.into_iter().zip(out_slices).collect(),
                |_, _, ((a, b), out): MergeUnit<'_>| match b {
                    None => out.copy_from_slice(&cur[a]),
                    Some(b) => {
                        let (left, right) = (&cur[a], &cur[b]);
                        let (mut i, mut j, mut k) = (0, 0, 0);
                        while i < left.len() && j < right.len() {
                            let li = left[i] as usize;
                            let rj = right[j] as usize;
                            if cmp_rows(columns, li, columns, rj) != Ordering::Greater {
                                out[k] = left[i];
                                i += 1;
                            } else {
                                out[k] = right[j];
                                j += 1;
                            }
                            k += 1;
                        }
                        out[k..k + left.len() - i].copy_from_slice(&left[i..]);
                        k += left.len() - i;
                        out[k..].copy_from_slice(&right[j..]);
                    }
                },
            );
        }
        std::mem::swap(&mut cur, &mut buf);
        runs = merged;
    }
    *perm = cur;
    arena.recycle(sites::SORT_SCRATCH, buf);
}

/// Applies a sort permutation to a set of columns and their tags.
pub fn apply_permutation<T: Clone + Send + Sync>(
    device: &Device,
    perm: &[u64],
    columns: &[&[u64]],
    tags: &[T],
) -> (Columns, Vec<T>) {
    let cols = columns.iter().map(|c| gather(device, perm, c)).collect();
    let tags = gather_tags(device, perm, tags);
    (cols, tags)
}

/// `unique⟨⊕⟩(s̄)`: merges adjacent duplicate rows of a sorted table,
/// combining their tags with the semiring disjunction.
///
/// Segment starts are found with a parallel boundary flag
/// (`row[i] != row[i-1]`), and each output row's tag is the left-to-right
/// fold of its segment's tags — the same order the sequential loop uses, so
/// order-sensitive disjunctions (float addition) produce identical bits.
pub fn unique<T, F>(device: &Device, columns: &[&[u64]], tags: &[T], or: F) -> (Columns, Vec<T>)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Sync,
{
    let _t = device.launch(KernelKind::Unique);
    let len = columns.first().map(|c| c.len()).unwrap_or(0);
    let arity = columns.len();
    if len == 0 {
        return (vec![Vec::new(); arity], Vec::new());
    }
    let arena = device.arena();
    // Two-phase boundary collection: count segment starts per chunk, then
    // write them into disjoint slices of one starts column.
    let ranges = chunks_for(device, len);
    let is_start = |i: usize| i == 0 || cmp_rows(columns, i - 1, columns, i) != Ordering::Equal;
    let counts: Vec<usize> = map_chunks(device, &ranges, |_, range| {
        range.filter(|&i| is_start(i)).count()
    });
    let total: usize = counts.iter().sum();
    let mut starts = arena.alloc_zeroed(sites::UNIQUE_STARTS, total);
    {
        let mut bounds = Vec::with_capacity(counts.len());
        let mut acc = 0;
        for &c in &counts {
            bounds.push(acc..acc + c);
            acc += c;
        }
        let slices = split_by_ranges(&mut starts, &bounds);
        run_chunks(device, &ranges, slices, |_, range, slice: &mut [u64]| {
            for (k, i) in range.filter(|&i| is_start(i)).enumerate() {
                slice[k] = i as u64;
            }
        });
    }
    // Output rows: the segment-start rows; output tags: per-segment fold.
    let mut out_cols: Columns = Vec::with_capacity(arity);
    for col in columns {
        let mut out = arena.alloc_zeroed(sites::UNIQUE_OUT, total);
        par_map_into(device, &mut out, |k| col[starts[k] as usize]);
        out_cols.push(out);
    }
    let seg_ranges = chunks_for(device, total);
    let pieces: Vec<Vec<T>> = map_chunks(device, &seg_ranges, |_, range| {
        range
            .map(|k| {
                let start = starts[k] as usize;
                let end = if k + 1 < total {
                    starts[k + 1] as usize
                } else {
                    len
                };
                let mut tag = tags[start].clone();
                for t in &tags[start + 1..end] {
                    tag = or(&tag, t);
                }
                tag
            })
            .collect()
    });
    let out_tags = concat_pieces(pieces, total);
    arena.recycle(sites::UNIQUE_STARTS, starts);
    (out_cols, out_tags)
}

/// Finds the merge-path split of diagonal `t`: the `(i, j)` with `i + j = t`
/// such that taking `a[..i]` and `b[..j]` first agrees with the sequential
/// merge that prefers `a` on ties.
fn merge_split(a: &[&[u64]], la: usize, b: &[&[u64]], lb: usize, t: usize) -> usize {
    let mut lo = t.saturating_sub(lb);
    let mut hi = t.min(la);
    // Find the smallest i where every taken b-row precedes every future
    // a-row strictly (`b[j-1] < a[i]`); monotone in i.
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = t - i;
        let ok = j == 0 || i == la || cmp_rows(b, j - 1, a, i) == Ordering::Less;
        if ok {
            hi = i;
        } else {
            lo = i + 1;
        }
    }
    lo
}

/// `merge(ā, b̄)`: merges two lexicographically sorted tables into one sorted
/// table. Rows are kept from both inputs (no deduplication); on equal rows
/// `a`'s precede `b`'s.
///
/// Parallelism comes from merge-path partitioning: the output is cut into
/// equal diagonals, each worker binary-searches its input split and runs the
/// sequential two-pointer merge on its own disjoint output slice.
pub fn merge<T: Clone + Send + Sync>(
    device: &Device,
    a_cols: &[&[u64]],
    a_tags: &[T],
    b_cols: &[&[u64]],
    b_tags: &[T],
) -> (Columns, Vec<T>) {
    let _t = device.launch(KernelKind::Other);
    let arity = a_cols.len().max(b_cols.len());
    debug_assert!(
        a_cols.len() == b_cols.len() || a_tags.is_empty() || b_tags.is_empty(),
        "merging tables of different arity"
    );
    let (la, lb) = (a_tags.len(), b_tags.len());
    let total = la + lb;
    let arena = device.arena();
    let ranges = chunks_for(device, total);
    // Input splits per output boundary.
    let mut a_cuts = Vec::with_capacity(ranges.len() + 1);
    for range in &ranges {
        a_cuts.push(merge_split(a_cols, la, b_cols, lb, range.start));
    }
    a_cuts.push(merge_split(a_cols, la, b_cols, lb, total));
    let mut out_cols: Columns = (0..arity)
        .map(|_| arena.alloc_zeroed(sites::MERGE_OUT, total))
        .collect();
    let col_slices = columns_chunked(&mut out_cols, &ranges);
    let pieces: Vec<Vec<T>> = run_chunks(
        device,
        &ranges,
        col_slices,
        |c, range, mut outs: Vec<&mut [u64]>| {
            let (ai, aj) = (a_cuts[c], a_cuts[c + 1]);
            let (bi, bj) = (range.start - ai, range.end - aj);
            let (mut i, mut j, mut k) = (ai, bi, 0usize);
            let mut tags = Vec::with_capacity(range.len());
            while i < aj && j < bj {
                if cmp_rows(a_cols, i, b_cols, j) != Ordering::Greater {
                    for (out, col) in outs.iter_mut().zip(a_cols) {
                        out[k] = col[i];
                    }
                    tags.push(a_tags[i].clone());
                    i += 1;
                } else {
                    for (out, col) in outs.iter_mut().zip(b_cols) {
                        out[k] = col[j];
                    }
                    tags.push(b_tags[j].clone());
                    j += 1;
                }
                k += 1;
            }
            while i < aj {
                for (out, col) in outs.iter_mut().zip(a_cols) {
                    out[k] = col[i];
                }
                tags.push(a_tags[i].clone());
                i += 1;
                k += 1;
            }
            while j < bj {
                for (out, col) in outs.iter_mut().zip(b_cols) {
                    out[k] = col[j];
                }
                tags.push(b_tags[j].clone());
                j += 1;
                k += 1;
            }
            tags
        },
    );
    (out_cols, concat_pieces(pieces, total))
}

/// Splits each column of `cols` at the chunk boundaries and regroups the
/// slices per chunk (chunk-major), for handing to workers.
fn columns_chunked<'a>(cols: &'a mut Columns, ranges: &[Range<usize>]) -> Vec<Vec<&'a mut [u64]>> {
    let mut per_chunk: Vec<Vec<&mut [u64]>> = (0..ranges.len())
        .map(|_| Vec::with_capacity(cols.len()))
        .collect();
    for col in cols.iter_mut() {
        for (c, slice) in split_by_ranges(col, ranges).into_iter().enumerate() {
            per_chunk[c].push(slice);
        }
    }
    per_chunk
}

/// `diff(ā, b̄)`: rows of sorted table `a` that do not occur in sorted table
/// `b`, keeping `a`'s tags. This is the set difference required to keep
/// semi-naive evaluation terminating (new delta facts must not already be
/// known).
///
/// `a` is cut into chunks; each worker binary-searches its start position in
/// `b` and runs the sequential two-pointer walk (once to count, once to
/// fill), so the kept-row set is chunk-independent.
pub fn difference<T: Clone + Send + Sync>(
    device: &Device,
    a_cols: &[&[u64]],
    a_tags: &[T],
    b_cols: &[&[u64]],
    b_len: usize,
) -> (Columns, Vec<T>) {
    let _t = device.launch(KernelKind::Other);
    let arity = a_cols.len();
    let a_len = a_tags.len();
    let arena = device.arena();
    let ranges = chunks_for(device, a_len);
    // First b-row not less than a[start] — where the two-pointer walk of a
    // chunk must begin.
    let lower_bound = |i: usize| {
        let (mut lo, mut hi) = (0usize, b_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cmp_rows(b_cols, mid, a_cols, i) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };
    let walk = |range: Range<usize>, mut on_kept: Box<dyn FnMut(usize) + '_>| {
        let mut j = if range.start < a_len {
            lower_bound(range.start)
        } else {
            b_len
        };
        for i in range {
            while j < b_len && cmp_rows(b_cols, j, a_cols, i) == Ordering::Less {
                j += 1;
            }
            let present = j < b_len && cmp_rows(b_cols, j, a_cols, i) == Ordering::Equal;
            if !present {
                on_kept(i);
            }
        }
    };
    let counts: Vec<usize> = map_chunks(device, &ranges, |_, range| {
        let mut n = 0;
        walk(range, Box::new(|_| n += 1));
        n
    });
    let total: usize = counts.iter().sum();
    let mut kept = arena.alloc_zeroed(sites::DIFF_KEPT, total);
    {
        let mut bounds = Vec::with_capacity(counts.len());
        let mut acc = 0;
        for &c in &counts {
            bounds.push(acc..acc + c);
            acc += c;
        }
        let slices = split_by_ranges(&mut kept, &bounds);
        run_chunks(device, &ranges, slices, |_, range, slice: &mut [u64]| {
            let mut k = 0;
            walk(
                range,
                Box::new(|i| {
                    slice[k] = i as u64;
                    k += 1;
                }),
            );
        });
    }
    let mut out_cols: Columns = Vec::with_capacity(arity);
    for col in a_cols {
        let mut out = arena.alloc_zeroed(sites::DIFF_OUT, total);
        par_map_into(device, &mut out, |k| col[kept[k] as usize]);
        out_cols.push(out);
    }
    let out_tags = gather_tags_inner(device, &kept, a_tags);
    arena.recycle(sites::DIFF_KEPT, kept);
    (out_cols, out_tags)
}

/// `count(b̄, h, ā)`: for every probe row, the number of build rows with a
/// matching key in the hash index. Probe keys are hashed straight from the
/// probe columns — no per-row key buffer is materialized.
///
/// When the index is partitioned and the probe side is large, the probe is
/// radix-grouped first (see [`ProbePartition`]) so each chunk walks one
/// cache-resident partition; counts are scattered back into original probe
/// order, so the output is byte-identical to the direct path. Callers that
/// also run [`hash_join`] on the same probe side should build the grouping
/// once and use [`count_matches_with`] / [`hash_join_with`].
pub fn count_matches(device: &Device, index: &HashIndex, probe_key_cols: &[&[u64]]) -> Column {
    let part = ProbePartition::build(device, index, probe_key_cols);
    let out = count_matches_with(device, index, probe_key_cols, part.as_ref());
    if let Some(part) = part {
        part.recycle(device);
    }
    out
}

/// [`count_matches`] against a pre-built probe grouping (`None` runs the
/// direct path). The grouping must come from [`ProbePartition::build`] with
/// this `index` and these probe columns.
pub fn count_matches_with(
    device: &Device,
    index: &HashIndex,
    probe_key_cols: &[&[u64]],
    part: Option<&ProbePartition>,
) -> Column {
    let _t = device.launch(KernelKind::Join);
    let len = probe_key_cols.first().map(|c| c.len()).unwrap_or(0);
    let arena = device.arena();
    let mut out = arena.alloc_zeroed(sites::COUNT_OUT, len);
    let Some(part) = part else {
        par_map_into(device, &mut out, |i| {
            index.count_cols(probe_key_cols, i) as u64
        });
        return out;
    };
    debug_assert_eq!(part.len(), len, "grouping built for another probe side");
    // Count in grouped order — one partition per chunk, so every lookup of
    // a chunk hits the same (cache-resident) slot table...
    let mut grouped_counts = arena.alloc_zeroed(sites::JOIN_PROBE, len);
    {
        let slices = split_by_ranges(&mut grouped_counts, &part.bounds);
        run_chunks(
            device,
            &part.bounds,
            slices,
            |p, range, slice: &mut [u64]| {
                for (slot, g) in slice.iter_mut().zip(range) {
                    let row = part.grouped[g] as usize;
                    *slot = index.count_grouped(p, part.hashes[row], probe_key_cols, row) as u64;
                }
            },
        );
    }
    // ...then gather back into original probe order.
    par_map_into(device, &mut out, |i| grouped_counts[part.dest[i] as usize]);
    arena.recycle(sites::JOIN_PROBE, grouped_counts);
    out
}

/// `join⟨W⟩(b̄, ā, h, c, o)`: produces the matching index pairs of a hash
/// join. Returns `(build_indices, probe_indices)`, where output rows for
/// probe row `i` occupy positions `offsets[i] .. offsets[i] + counts[i]`.
///
/// Each worker owns the contiguous output range its probe rows map to
/// (`offsets` is monotone), writing full-width `u64` indices directly — no
/// per-row buffers and no packing, so row indices are never truncated
/// however large the tables grow.
///
/// Like [`count_matches`], a large probe of a partitioned index runs
/// radix-grouped: matches are emitted per partition and then copied back
/// into the caller's `offsets` layout, byte-identical to the direct path.
pub fn hash_join(
    device: &Device,
    index: &HashIndex,
    probe_key_cols: &[&[u64]],
    counts: &[u64],
    offsets: &[u64],
    total: u64,
) -> (Column, Column) {
    let part = ProbePartition::build(device, index, probe_key_cols);
    let out = hash_join_with(
        device,
        index,
        probe_key_cols,
        part.as_ref(),
        counts,
        offsets,
        total,
    );
    if let Some(part) = part {
        part.recycle(device);
    }
    out
}

/// [`hash_join`] against a pre-built probe grouping (`None` runs the direct
/// path). The grouping must come from [`ProbePartition::build`] with this
/// `index` and these probe columns.
pub fn hash_join_with(
    device: &Device,
    index: &HashIndex,
    probe_key_cols: &[&[u64]],
    part: Option<&ProbePartition>,
    counts: &[u64],
    offsets: &[u64],
    total: u64,
) -> (Column, Column) {
    let _t = device.launch(KernelKind::Join);
    let len = probe_key_cols.first().map(|c| c.len()).unwrap_or(0);
    debug_assert_eq!(counts.len(), len);
    debug_assert_eq!(offsets.len(), len);
    let arena = device.arena();
    let mut build_out = arena.alloc_zeroed(sites::JOIN_OUT, total as usize);
    let mut probe_out = arena.alloc_zeroed(sites::JOIN_OUT, total as usize);
    let ranges = chunks_for(device, len);
    // A chunk of probe rows owns the contiguous output range
    // `offsets[start] .. offsets[end]`.
    let out_bounds: Vec<Range<usize>> = ranges
        .iter()
        .map(|r| {
            let start = offsets.get(r.start).copied().unwrap_or(total) as usize;
            let end = offsets.get(r.end).copied().unwrap_or(total) as usize;
            start..end
        })
        .collect();
    let Some(part) = part else {
        let build_slices = split_by_ranges(&mut build_out, &out_bounds);
        let probe_slices = split_by_ranges(&mut probe_out, &out_bounds);
        run_chunks(
            device,
            &ranges,
            build_slices.into_iter().zip(probe_slices).collect(),
            |_, range, (bs, ps): (&mut [u64], &mut [u64])| {
                let mut k = 0;
                for i in range {
                    if counts[i] == 0 {
                        continue;
                    }
                    index.for_each_match_cols(probe_key_cols, i, |build_row| {
                        bs[k] = build_row as u64;
                        ps[k] = i as u64;
                        k += 1;
                    });
                }
                debug_assert_eq!(k, bs.len(), "counts disagree with probe matches");
            },
        );
        return (build_out, probe_out);
    };
    debug_assert_eq!(part.len(), len, "grouping built for another probe side");
    // Grouped layout: per-row counts and offsets in grouped order, so each
    // partition's matches land in one contiguous grouped output range.
    let mut grouped_counts = arena.alloc_zeroed(sites::JOIN_PROBE, len);
    par_map_into(device, &mut grouped_counts, |g| {
        counts[part.grouped[g] as usize]
    });
    let (grouped_offsets, grouped_total) = scan_into(device, &grouped_counts);
    debug_assert_eq!(grouped_total, total, "grouping changed the match count");
    let mut grouped_build = arena.alloc_zeroed(sites::JOIN_PROBE, total as usize);
    let mut grouped_probe = arena.alloc_zeroed(sites::JOIN_PROBE, total as usize);
    {
        // Probe partition by partition: every lookup of a chunk walks the
        // same cache-resident slot table.
        let grouped_out_bounds: Vec<Range<usize>> = part
            .bounds
            .iter()
            .map(|r| {
                let start = grouped_offsets.get(r.start).copied().unwrap_or(total) as usize;
                let end = grouped_offsets.get(r.end).copied().unwrap_or(total) as usize;
                start..end
            })
            .collect();
        let build_slices = split_by_ranges(&mut grouped_build, &grouped_out_bounds);
        let probe_slices = split_by_ranges(&mut grouped_probe, &grouped_out_bounds);
        run_chunks(
            device,
            &part.bounds,
            build_slices.into_iter().zip(probe_slices).collect(),
            |p, range, (bs, ps): (&mut [u64], &mut [u64])| {
                let mut k = 0;
                for g in range {
                    if grouped_counts[g] == 0 {
                        continue;
                    }
                    let row = part.grouped[g] as usize;
                    index.for_each_match_grouped(
                        p,
                        part.hashes[row],
                        probe_key_cols,
                        row,
                        |build_row| {
                            bs[k] = build_row as u64;
                            ps[k] = row as u64;
                            k += 1;
                        },
                    );
                }
                debug_assert_eq!(k, bs.len(), "counts disagree with probe matches");
            },
        );
    }
    // Copy each probe row's match run back into the caller's offsets
    // layout — the bytes end up exactly where the direct path writes them.
    {
        let build_slices = split_by_ranges(&mut build_out, &out_bounds);
        let probe_slices = split_by_ranges(&mut probe_out, &out_bounds);
        run_chunks(
            device,
            &ranges,
            build_slices.into_iter().zip(probe_slices).collect(),
            |_, range, (bs, ps): (&mut [u64], &mut [u64])| {
                let mut k = 0;
                for i in range {
                    let n = counts[i] as usize;
                    if n == 0 {
                        continue;
                    }
                    let src = grouped_offsets[part.dest[i] as usize] as usize;
                    bs[k..k + n].copy_from_slice(&grouped_build[src..src + n]);
                    ps[k..k + n].copy_from_slice(&grouped_probe[src..src + n]);
                    k += n;
                }
            },
        );
    }
    arena.recycle(sites::JOIN_PROBE, grouped_counts);
    arena.recycle(sites::JOIN_PROBE, grouped_build);
    arena.recycle(sites::JOIN_PROBE, grouped_probe);
    arena.recycle(sites::SCAN_OUT, grouped_offsets);
    (build_out, probe_out)
}

/// First build row whose key is not less than probe row `i`'s key, found by
/// galloping right from `hint` — pass the previous probe row's lower bound.
/// When the probe side is also sorted (the case the compiler's sort-order
/// pass actually emits merge joins for), consecutive bounds are
/// non-decreasing and the amortized cost per probe row is near-constant;
/// an out-of-order probe row is detected by one comparison against
/// `hint - 1` and falls back to a plain binary search of the prefix.
fn merge_lower_bound(
    build_key_cols: &[&[u64]],
    probe_key_cols: &[&[u64]],
    i: usize,
    hint: usize,
) -> usize {
    let len = build_key_cols.first().map(|c| c.len()).unwrap_or(0);
    let hint = hint.min(len);
    let less = |row: usize| cmp_rows(build_key_cols, row, probe_key_cols, i) == Ordering::Less;
    let (mut lo, mut hi);
    if hint == 0 || less(hint - 1) {
        // Answer is >= hint: gallop right with doubling steps.
        lo = hint;
        hi = hint;
        let mut step = 1;
        while hi < len && less(hi) {
            lo = hi + 1;
            hi += step;
            step *= 2;
        }
        hi = hi.min(len);
    } else {
        // Out-of-order probe row: the answer lies before the hint.
        lo = 0;
        hi = hint - 1;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if less(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First build row whose key is greater than probe row `i`'s key, galloping
/// right from `hint` (callers pass the row's lower bound, which is always a
/// valid starting point since `upper_bound >= lower_bound`).
fn merge_upper_bound(
    build_key_cols: &[&[u64]],
    probe_key_cols: &[&[u64]],
    i: usize,
    hint: usize,
) -> usize {
    let len = build_key_cols.first().map(|c| c.len()).unwrap_or(0);
    let not_greater =
        |row: usize| cmp_rows(build_key_cols, row, probe_key_cols, i) != Ordering::Greater;
    let (mut lo, mut hi) = (hint.min(len), hint.min(len));
    let mut step = 1;
    while hi < len && not_greater(hi) {
        lo = hi + 1;
        hi += step;
        step *= 2;
    }
    hi = hi.min(len);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if not_greater(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// `mergecount(b̄, ā)`: for every probe row, the number of build rows with a
/// matching key — the sort-order counterpart of [`count_matches`]. Requires
/// the build key columns to be lexicographically sorted; the matches of any
/// probe key are then one contiguous run, found with two binary searches.
/// No index is built and no hashing happens, which is exactly why the
/// executor prefers this path when sort-order inference proves both inputs
/// sorted on the join prefix.
pub fn merge_count(
    device: &Device,
    build_key_cols: &[&[u64]],
    probe_key_cols: &[&[u64]],
) -> Column {
    let _t = device.launch(KernelKind::Join);
    debug_assert!(is_sorted(build_key_cols), "merge_count build side unsorted");
    let len = probe_key_cols.first().map(|c| c.len()).unwrap_or(0);
    let mut out = device.arena().alloc_zeroed(sites::MERGE_COUNT_OUT, len);
    let ranges = chunks_for(device, len);
    let slices = split_by_ranges(&mut out, &ranges);
    run_chunks(device, &ranges, slices, |_, range, chunk: &mut [u64]| {
        // Each chunk carries its cursor forward: for a sorted probe side
        // the searches degrade into an amortized linear merge.
        let mut cursor = 0;
        for (slot, i) in chunk.iter_mut().zip(range) {
            let lo = merge_lower_bound(build_key_cols, probe_key_cols, i, cursor);
            let hi = merge_upper_bound(build_key_cols, probe_key_cols, i, lo);
            *slot = (hi - lo) as u64;
            cursor = lo;
        }
    });
    out
}

/// `mergejoin⟨W⟩(b̄, ā, c, o)`: the matching index pairs of a sort-merge
/// join over a lexicographically sorted build side. Returns
/// `(build_indices, probe_indices)` with output rows for probe row `i` at
/// positions `offsets[i] .. offsets[i] + counts[i]`, exactly like
/// [`hash_join`].
///
/// **Bit-compatibility:** for each probe row the build matches are emitted
/// in ascending build-row order — the same order [`hash_join`] produces
/// (linear probing with ascending insertion preserves insertion order, see
/// `HashIndex::for_each_match_cols`) — so downstream gathers, provenance
/// tag combination, and dedup see byte-identical inputs whichever join
/// path ran.
pub fn merge_join(
    device: &Device,
    build_key_cols: &[&[u64]],
    probe_key_cols: &[&[u64]],
    counts: &[u64],
    offsets: &[u64],
    total: u64,
) -> (Column, Column) {
    let _t = device.launch(KernelKind::Join);
    let len = probe_key_cols.first().map(|c| c.len()).unwrap_or(0);
    debug_assert_eq!(counts.len(), len);
    debug_assert_eq!(offsets.len(), len);
    let arena = device.arena();
    let mut build_out = arena.alloc_zeroed(sites::MERGE_JOIN_OUT, total as usize);
    let mut probe_out = arena.alloc_zeroed(sites::MERGE_JOIN_OUT, total as usize);
    let ranges = chunks_for(device, len);
    let out_bounds: Vec<Range<usize>> = ranges
        .iter()
        .map(|r| {
            let start = offsets.get(r.start).copied().unwrap_or(total) as usize;
            let end = offsets.get(r.end).copied().unwrap_or(total) as usize;
            start..end
        })
        .collect();
    let build_slices = split_by_ranges(&mut build_out, &out_bounds);
    let probe_slices = split_by_ranges(&mut probe_out, &out_bounds);
    run_chunks(
        device,
        &ranges,
        build_slices.into_iter().zip(probe_slices).collect(),
        |_, range, (bs, ps): (&mut [u64], &mut [u64])| {
            let mut k = 0;
            let mut cursor = 0;
            for i in range {
                let n = counts[i] as usize;
                if n == 0 {
                    continue;
                }
                let lo = merge_lower_bound(build_key_cols, probe_key_cols, i, cursor);
                cursor = lo;
                for build_row in lo..lo + n {
                    debug_assert_eq!(
                        cmp_rows(build_key_cols, build_row, probe_key_cols, i),
                        Ordering::Equal,
                        "merge_join counts disagree with sorted build run"
                    );
                    bs[k] = build_row as u64;
                    ps[k] = i as u64;
                    k += 1;
                }
            }
            debug_assert_eq!(k, bs.len(), "counts disagree with probe matches");
        },
    );
    (build_out, probe_out)
}

/// Debug check that rows are lexicographically non-decreasing.
fn is_sorted(cols: &[&[u64]]) -> bool {
    let len = cols.first().map(|c| c.len()).unwrap_or(0);
    (1..len).all(|i| cmp_rows(cols, i - 1, cols, i) != Ordering::Greater)
}

/// `copy(s̄)` / `append`: concatenates columns row-wise.
pub fn append(device: &Device, tables: &[&[&[u64]]]) -> Columns {
    let _t = device.launch(KernelKind::Other);
    let start = Instant::now();
    let arity = tables.iter().map(|t| t.len()).max().unwrap_or(0);
    let arena = device.arena();
    let mut out: Columns = (0..arity)
        .map(|c| {
            let rows = tables
                .iter()
                .map(|t| t.get(c).map(|col| col.len()).unwrap_or(0))
                .sum();
            arena.alloc_empty(sites::APPEND_OUT, rows)
        })
        .collect();
    for table in tables {
        for (c, col) in table.iter().enumerate() {
            out[c].extend_from_slice(col);
        }
    }
    device.record_busy(start.elapsed());
    out
}

/// Tag variant of [`append`].
pub fn append_tags<T: Clone>(device: &Device, tag_sets: &[&[T]]) -> Vec<T> {
    let _t = device.launch(KernelKind::Other);
    let start = Instant::now();
    let mut out = Vec::with_capacity(tag_sets.iter().map(|t| t.len()).sum());
    for tags in tag_sets {
        out.extend_from_slice(tags);
    }
    device.record_busy(start.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::sequential()
    }

    fn refs(cols: &[Column]) -> Vec<&[u64]> {
        cols.iter().map(|c| c.as_slice()).collect()
    }

    /// Runs the eval kernel with a simple per-row closure (the ergonomic
    /// shape the production caller hoists scratch out of).
    fn eval_rows<F>(device: &Device, len: usize, out_arity: usize, f: F) -> (Columns, Column)
    where
        F: Fn(usize) -> Option<Vec<u64>> + Sync,
    {
        eval(device, len, out_arity, |range, sink| {
            for i in range {
                if let Some(row) = f(i) {
                    sink.emit(i, &row);
                }
            }
        })
    }

    #[test]
    fn eval_projects_and_filters() {
        let d = dev();
        let col = [1u64, 2, 3, 4, 5];
        let (cols, src) = eval_rows(&d, col.len(), 1, |i| {
            let v = col[i];
            if v % 2 == 1 {
                Some(vec![v * 10])
            } else {
                None
            }
        });
        assert_eq!(cols, vec![vec![10, 30, 50]]);
        assert_eq!(src, vec![0, 2, 4]);
    }

    #[test]
    fn pack_unpack_round_trips_and_orders_like_lex() {
        let d = dev();
        // Layout: group 0 = [4-byte col0 | 2-byte col1 | 1-byte col2],
        // group 1 = [8-byte col3]. First column most significant.
        let groups = vec![
            vec![
                PackLane {
                    column: 0,
                    shift: 24,
                    mask: 0xFFFF_FFFF,
                },
                PackLane {
                    column: 1,
                    shift: 8,
                    mask: 0xFFFF,
                },
                PackLane {
                    column: 2,
                    shift: 0,
                    mask: 0xFF,
                },
            ],
            vec![PackLane {
                column: 3,
                shift: 0,
                mask: u64::MAX,
            }],
        ];
        let cols: Columns = vec![
            vec![7, 7, 8],
            vec![300, 2, 2],
            vec![1, 255, 0],
            vec![u64::MAX, 0, 42],
        ];
        let packed = pack_columns(&d, &refs(&cols), &groups);
        assert_eq!(packed.len(), 2);
        // Lexicographic order of (col0, col1, col2) == numeric order of
        // the packed group-0 words.
        assert!(packed[0][1] < packed[0][0]);
        assert!(packed[0][0] < packed[0][2]);
        let back = unpack_columns(&d, &refs(&packed), &groups, 4);
        assert_eq!(back, cols);
        // Parallel device produces identical bytes.
        let par = Device::new(crate::DeviceConfig {
            parallelism: 3,
            min_parallel_rows: 1,
            ..crate::DeviceConfig::default()
        });
        assert_eq!(pack_columns(&par, &refs(&cols), &groups), packed);
        assert_eq!(unpack_columns(&par, &refs(&packed), &groups, 4), back);
    }

    #[test]
    fn gather_and_gather_tags_follow_indices() {
        let d = dev();
        let col = vec![10u64, 20, 30];
        let tags = vec!["a", "b", "c"];
        assert_eq!(gather(&d, &[2, 0, 0], &col), vec![30, 10, 10]);
        assert_eq!(gather_tags(&d, &[1, 1, 2], &tags), vec!["b", "b", "c"]);
    }

    #[test]
    fn gather_mul_tags_combines_sides() {
        let d = dev();
        let left = vec![2.0f64, 3.0];
        let right = vec![10.0f64, 100.0];
        let out = gather_mul_tags(&d, &[0, 1], &[1, 0], &left, &right, |a, b| a * b);
        assert_eq!(out, vec![200.0, 30.0]);
    }

    #[test]
    fn scan_is_exclusive_prefix_sum() {
        let d = dev();
        let (offsets, total) = scan(&d, &[2, 0, 3, 1]);
        assert_eq!(offsets, vec![0, 2, 2, 5]);
        assert_eq!(total, 6);
        let (empty, zero) = scan(&d, &[]);
        assert!(empty.is_empty());
        assert_eq!(zero, 0);
    }

    #[test]
    fn sort_and_unique_deduplicate_with_tag_merge() {
        let d = dev();
        let cols = vec![vec![2u64, 1, 2, 1], vec![7u64, 5, 7, 6]];
        let tags = vec![1.0f64, 2.0, 3.0, 4.0];
        let perm = sort_permutation(&d, &refs(&cols));
        let (sorted, stags) = apply_permutation(&d, &perm, &refs(&cols), &tags);
        assert_eq!(sorted[0], vec![1, 1, 2, 2]);
        assert_eq!(sorted[1], vec![5, 6, 7, 7]);
        let (uniq, utags) = unique(&d, &refs(&sorted), &stags, |a, b| a.max(*b));
        assert_eq!(uniq[0], vec![1, 1, 2]);
        assert_eq!(uniq[1], vec![5, 6, 7]);
        assert_eq!(utags, vec![2.0, 4.0, 3.0]);
    }

    #[test]
    fn sort_breaks_ties_by_original_index() {
        let d = dev();
        let cols = vec![vec![5u64, 1, 5, 1, 5]];
        let perm = sort_permutation(&d, &refs(&cols));
        assert_eq!(perm, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn merge_preserves_sort_order() {
        let d = dev();
        let a = vec![vec![1u64, 3, 5]];
        let b = vec![vec![2u64, 3, 6]];
        let (cols, tags) = merge(&d, &refs(&a), &[10, 30, 50], &refs(&b), &[20, 31, 60]);
        assert_eq!(cols[0], vec![1, 2, 3, 3, 5, 6]);
        assert_eq!(tags, vec![10, 20, 30, 31, 50, 60]);
    }

    #[test]
    fn difference_removes_known_rows() {
        let d = dev();
        let a = vec![vec![1u64, 2, 3, 4]];
        let b = vec![vec![2u64, 4]];
        let (cols, tags) = difference(&d, &refs(&a), &["p", "q", "r", "s"], &refs(&b), 2);
        assert_eq!(cols[0], vec![1, 3]);
        assert_eq!(tags, vec!["p", "r"]);
    }

    #[test]
    fn difference_against_empty_keeps_everything() {
        let d = dev();
        let a = vec![vec![5u64, 6]];
        let empty: Vec<Column> = vec![Vec::new()];
        let (cols, tags) = difference(&d, &refs(&a), &[1, 2], &refs(&empty), 0);
        assert_eq!(cols[0], vec![5, 6]);
        assert_eq!(tags, vec![1, 2]);
    }

    #[test]
    fn hash_join_produces_all_pairs() {
        let d = dev();
        // Build side: edge(z, y) keyed on z; probe side: path(x, z) keyed on z.
        let build = [vec![1u64, 1, 2], vec![10u64, 11, 12]];
        let probe = [vec![0u64, 5], vec![1u64, 1]]; // path(0,1), path(5,1)
        let index = HashIndex::build(&d, &[&build[0]], 2);
        let probe_key = [probe[1].as_slice()];
        let counts = count_matches(&d, &index, &probe_key);
        assert_eq!(counts, vec![2, 2]);
        let (offsets, total) = scan(&d, &counts);
        let (bi, pi) = hash_join(&d, &index, &probe_key, &counts, &offsets, total);
        assert_eq!(bi.len(), 4);
        // Each probe row matched build rows 0 and 1 in some deterministic order.
        let mut pairs: Vec<(u64, u64)> = bi.iter().copied().zip(pi.iter().copied()).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn append_concatenates_tables() {
        let d = dev();
        let a = vec![vec![1u64], vec![2u64]];
        let b = vec![vec![3u64, 4], vec![5u64, 6]];
        let out = append(&d, &[&refs(&a), &refs(&b)]);
        assert_eq!(out[0], vec![1, 3, 4]);
        assert_eq!(out[1], vec![2, 5, 6]);
        let tags = append_tags(&d, &[&[1.0f64], &[2.0, 3.0]]);
        assert_eq!(tags, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn kernels_record_launches_and_times() {
        let d = dev();
        let _ = scan(&d, &[1, 2, 3]);
        let big: Vec<u64> = (0..100_000u64)
            .map(|i| (i * 2_654_435_761) % 4096)
            .collect();
        let _ = sort_permutation(&d, &[&big[..]]);
        let stats = d.stats();
        assert!(stats.kernel_launches >= 2);
        assert!(stats.kernel_time.sort_ns > 0, "sort time attributed");
    }

    #[test]
    fn kernel_outputs_recycle_through_the_arena() {
        let d = dev();
        let counts = vec![1u64; 128];
        let (offsets, _) = scan(&d, &counts);
        d.arena().recycle_shared(offsets);
        let before = d.arena().stats();
        let (_offsets, _) = scan(&d, &counts);
        let after = d.arena().stats();
        assert_eq!(after.fresh_columns, before.fresh_columns);
        assert_eq!(after.reused_columns, before.reused_columns + 1);
    }

    #[test]
    fn parallel_and_sequential_join_agree() {
        use crate::DeviceConfig;
        let seq = Device::sequential();
        let par = Device::new(DeviceConfig {
            parallelism: 8,
            min_parallel_rows: 16,
            ..DeviceConfig::default()
        });
        // Random-ish graph join.
        let n = 5000u64;
        let from: Vec<u64> = (0..n).map(|i| i % 97).collect();
        let to: Vec<u64> = (0..n).map(|i| (i * 7) % 89).collect();
        for d in [&seq, &par] {
            let index = HashIndex::build(d, &[&from], 2);
            let counts = count_matches(d, &index, &[&to]);
            let (offsets, total) = scan(d, &counts);
            let (bi, pi) = hash_join(d, &index, &[&to], &counts, &offsets, total);
            let mut pairs: Vec<(u64, u64)> = bi.into_iter().zip(pi).collect();
            pairs.sort_unstable();
            // Compare against a nested-loop reference on the first device only.
            if std::ptr::eq(d, &seq) {
                let mut reference = Vec::new();
                for (j, &t) in to.iter().enumerate() {
                    for (i, &f) in from.iter().enumerate() {
                        if f == t {
                            reference.push((i as u64, j as u64));
                        }
                    }
                }
                reference.sort_unstable();
                assert_eq!(pairs, reference);
            }
        }
    }
}
