//! The persistent per-device kernel worker pool.
//!
//! Before this module existed every parallel kernel launch paid a
//! `std::thread::scope` spawn/join: tens of microseconds per launch, which on
//! small fix-point iterations (hundreds of launches, each over a few thousand
//! rows) ate the entire parallel speedup — `BENCH_kernels.json` recorded
//! parallel-4 factors *below 1.0*. The pool replaces that with long-lived
//! worker threads spawned once at [`Device`](crate::Device) construction and
//! joined when the last clone of the device is dropped.
//!
//! # Execution model
//!
//! A kernel launch submits a **job**: a chunk-indexed task `Fn(usize)` plus a
//! chunk count. Workers (and the launching thread, which always participates)
//! claim chunk indices with an atomic counter, so chunks are load-balanced at
//! the granularity the kernel chose — and a job with more chunks than workers
//! (e.g. one task per hash partition) self-balances without any planning.
//! The launcher blocks until every chunk has finished, then propagates the
//! first worker panic, if any, via [`std::panic::resume_unwind`].
//!
//! Determinism is unaffected: the pool decides only *which thread* runs a
//! chunk, never what the chunk computes, and `run_chunks` in the crate's
//! `parallel` module reassembles results strictly in chunk-index order.
//!
//! # Why the one `unsafe` in this crate lives here
//!
//! Kernel chunk closures borrow their inputs and outputs from the launching
//! stack frame. `std::thread::scope` is the only *safe* std primitive that
//! lets other threads run borrowed closures, and it cannot outlive a call —
//! which is exactly the spawn/join cost this pool exists to remove. The pool
//! therefore erases the task's lifetime to hand it to persistent workers
//! (`TaskRef`), and re-establishes safety with a completion barrier:
//! `WorkerPool::run` does not return — not even by unwinding — until
//! `done == total`, i.e. until no thread can touch the task again. Worker
//! panics are caught (so `done` always reaches `total`) and re-raised on the
//! launcher after the barrier.
#![allow(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A kernel task with its lifetime erased. Constructed only inside
/// [`WorkerPool::run`], which guarantees the reference outlives every use
/// (see the module docs).
#[derive(Clone, Copy)]
struct TaskRef(&'static (dyn Fn(usize) + Sync));

/// One submitted launch: the erased task plus claim/completion counters.
struct Job {
    task: TaskRef,
    /// Number of chunks.
    total: usize,
    /// Next chunk index to claim; values `>= total` mean "exhausted".
    next: AtomicUsize,
    /// Chunks that have finished executing (panicked chunks included).
    done: AtomicUsize,
    /// Summed wall time spent executing chunks, across all threads.
    busy_ns: AtomicU64,
    /// First panic payload raised by a chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Job {
    /// Claims and runs chunks until none remain, then signals completion.
    /// Never unwinds: chunk panics are recorded for the launcher.
    fn execute(self: &Arc<Job>, shared: &Shared) {
        loop {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.total {
                return;
            }
            let start = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| (self.task.0)(chunk)));
            let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
            if let Err(payload) = outcome {
                let mut slot = lock_recover(&self.panic);
                slot.get_or_insert(payload);
            }
            // AcqRel: the final increment's release sequence publishes every
            // chunk's writes to the launcher's acquire load in `run`.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
                // Take the state lock before notifying so the wakeup cannot
                // race a launcher that is between its check and its wait.
                let mut state = lock_recover(&shared.state);
                state.jobs.retain(|j| !Arc::ptr_eq(j, self));
                drop(state);
                shared.done.notify_all();
            }
        }
    }
}

#[derive(Default)]
struct State {
    /// Jobs that may still have unclaimed chunks, oldest first.
    jobs: Vec<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for work or shutdown.
    work: Condvar,
    /// Launchers wait here for their job's completion.
    done: Condvar,
}

/// Locks a mutex, recovering from poisoning: the pool's own critical
/// sections never panic, and the completion barrier must hold even if some
/// unrelated thread poisoned a lock while unwinding.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The persistent worker pool owned by a [`Device`](crate::Device): spawned
/// at device construction, joined when the last device clone drops. See the
/// module docs for the execution model.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` long-lived worker threads (`lobster-kernel-N`). The
    /// launching thread always participates in chunk execution, so a device
    /// with parallelism `P` constructs a pool of `P - 1` workers. With zero
    /// workers every launch runs inline on the caller.
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lobster-kernel-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Number of pooled worker threads (the launcher is not counted).
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `task(0..total)` across the pool, blocking until every chunk has
    /// finished, and returns the summed chunk execution time (busy time —
    /// across concurrent threads it can exceed the call's wall time). The
    /// first chunk panic is re-raised here after all chunks complete.
    pub(crate) fn run(&self, total: usize, task: &(dyn Fn(usize) + Sync)) -> Duration {
        if total == 0 {
            return Duration::ZERO;
        }
        if self.workers.is_empty() || total == 1 {
            let start = Instant::now();
            for chunk in 0..total {
                task(chunk);
            }
            return start.elapsed();
        }
        // SAFETY: the only lifetime-erased reference in this crate. It is
        // dereferenced exclusively by `Job::execute`, which touches the task
        // only for claimed chunks and increments `done` after each; this
        // function does not return (and cannot unwind — its own chunk
        // executions are caught inside `execute`) until `done == total`,
        // after which no thread dereferences the task again. The borrow
        // therefore strictly outlives every use.
        let task: TaskRef = TaskRef(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        });
        let job = Arc::new(Job {
            task,
            total,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
            panic: Mutex::new(None),
        });
        lock_recover(&self.shared.state).jobs.push(Arc::clone(&job));
        self.shared.work.notify_all();
        // Participate: the launcher is one of the device's `parallelism`
        // execution lanes.
        job.execute(&self.shared);
        // Completion barrier (see SAFETY above).
        let mut state = lock_recover(&self.shared.state);
        while job.done.load(Ordering::Acquire) < job.total {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(state);
        if let Some(payload) = lock_recover(&job.panic).take() {
            resume_unwind(payload);
        }
        Duration::from_nanos(job.busy_ns.load(Ordering::Relaxed))
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_recover(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a task (impossible today) has
            // already detached; joining the rest must still happen.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = lock_recover(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                // Prune exhausted jobs (their chunks may still be executing
                // on other threads; the list only drives discovery).
                state
                    .jobs
                    .retain(|j| j.next.load(Ordering::Relaxed) < j.total);
                if let Some(job) = state.jobs.first() {
                    break Arc::clone(job);
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        job.execute(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunks_cover_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(1000, &|c| {
            hits[c].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_workers_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 0);
        let sum = AtomicUsize::new(0);
        pool.run(10, &|c| {
            sum.fetch_add(c, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn concurrent_launches_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = &pool;
                let total = &total;
                scope.spawn(move || {
                    pool.run(64, &|_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 64);
    }

    #[test]
    fn panic_propagates_after_all_chunks_finish() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, &|c| {
                if c == 7 {
                    panic!("chunk 7 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(outcome.is_err());
        // Every non-panicking chunk still ran — the barrier held.
        assert_eq!(completed.load(Ordering::Relaxed), 31);
        // The pool survives a panicked launch.
        let again = AtomicUsize::new(0);
        pool.run(8, &|_| {
            again.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(again.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn busy_time_is_reported() {
        let pool = WorkerPool::new(1);
        let busy = pool.run(4, &|_| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(busy >= Duration::from_millis(4), "busy was {busy:?}");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4);
        pool.run(16, &|_| {});
        drop(pool); // must not hang or leak
    }
}
