//! The lock-free-style open-addressing hash index used for joins.
//!
//! Section 5.1 of the paper: the join kernel relies on a GPU hash table with
//! open addressing and linear probing, storing *indices back into the source
//! table* rather than fact data, so the join's complexity is decoupled from
//! the width of the input relations. This module reproduces that structure on
//! the simulated device.

use crate::device::KernelKind;
use crate::{Column, Device};

/// Multiplicative hashing constant (the 64-bit golden ratio).
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Arena allocation site for index slots and owned key copies.
const INDEX_SITE: usize = crate::kernels::sites::JOIN_INDEX;

/// FNV-style offset basis the key mix starts from.
const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn mix(h: u64, k: u64) -> u64 {
    (h ^ k.wrapping_mul(HASH_MULT))
        .rotate_left(27)
        .wrapping_mul(HASH_MULT)
}

fn hash_key(key: &[u64]) -> u64 {
    key.iter().fold(HASH_SEED, |h, &k| mix(h, k))
}

/// Hashes row `row` of a set of key columns — identical to [`hash_key`] of
/// the materialized key, without materializing it.
fn hash_cols(cols: &[&[u64]], row: usize) -> u64 {
    cols.iter().fold(HASH_SEED, |h, col| mix(h, col[row]))
}

/// A hash index over the first `w` columns of a build-side table.
///
/// Slots store `row_index + 1` (0 means empty). Duplicate keys occupy
/// separate slots along the probe chain, so a probe enumerates *all* matching
/// build rows — exactly what a relational join needs.
///
/// The index owns a copy of the key columns it was built from, which is what
/// allows it to be stored in a *static register* (Section 4.2) and reused
/// across fix-point iterations even though the transient registers of the
/// previous iteration have been discarded.
#[derive(Debug, Clone)]
pub struct HashIndex {
    slots: Vec<u64>,
    mask: u64,
    keys: Vec<Column>,
    rows: usize,
}

impl HashIndex {
    /// Builds an index over `key_columns` (all columns must share the same
    /// length). `expansion` is the paper's `O` parameter: the table capacity
    /// is the smallest power of two at least `expansion ×` the row count.
    pub fn build(device: &Device, key_columns: &[&[u64]], expansion: usize) -> Self {
        let _t = device.launch(KernelKind::Join);
        let rows = key_columns.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(
            key_columns.iter().all(|c| c.len() == rows),
            "ragged key columns"
        );
        let capacity = (rows.max(1) * expansion.max(1)).next_power_of_two().max(8);
        let mask = capacity as u64 - 1;
        let arena = device.arena();
        let mut slots = arena.alloc_zeroed(INDEX_SITE, capacity);
        let keys: Vec<Column> = key_columns
            .iter()
            .map(|c| arena.alloc_copy(INDEX_SITE, c))
            .collect();
        let mut key_buf = vec![0u64; keys.len()];
        for row in 0..rows {
            for (k, col) in key_buf.iter_mut().zip(&keys) {
                *k = col[row];
            }
            let mut slot = (hash_key(&key_buf) & mask) as usize;
            while slots[slot] != 0 {
                slot = (slot + 1) & mask as usize;
            }
            slots[slot] = row as u64 + 1;
        }
        HashIndex {
            slots,
            mask,
            keys,
            rows,
        }
    }

    /// Number of rows indexed.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Width of the join key in columns.
    pub fn key_width(&self) -> usize {
        self.keys.len()
    }

    /// Approximate number of bytes the index occupies on the device.
    pub fn size_bytes(&self) -> usize {
        (self.slots.len() + self.keys.len() * self.rows) * std::mem::size_of::<u64>()
    }

    /// Returns the index's buffers (slot table and owned key copies) to the
    /// device arena; call when the index is dead so the next build reuses
    /// them.
    pub fn recycle(self, device: &Device) {
        let arena = device.arena();
        arena.recycle(INDEX_SITE, self.slots);
        for key in self.keys {
            if key.capacity() > 0 {
                arena.recycle(INDEX_SITE, key);
            }
        }
    }

    fn row_matches(&self, row: usize, key: &[u64]) -> bool {
        self.keys.iter().zip(key).all(|(col, &k)| col[row] == k)
    }

    fn row_matches_cols(&self, row: usize, probe_cols: &[&[u64]], probe_row: usize) -> bool {
        self.keys
            .iter()
            .zip(probe_cols)
            .all(|(col, probe)| col[row] == probe[probe_row])
    }

    /// Counts the build rows whose key equals `key`.
    pub fn count(&self, key: &[u64]) -> usize {
        let mut n = 0;
        self.for_each_match(key, |_| n += 1);
        n
    }

    /// Counts the build rows matching row `probe_row` of the probe key
    /// columns — the probe-side hot path; no key buffer is materialized.
    pub fn count_cols(&self, probe_cols: &[&[u64]], probe_row: usize) -> usize {
        let mut n = 0;
        self.for_each_match_cols(probe_cols, probe_row, |_| n += 1);
        n
    }

    /// Invokes `f` with the index of every build row whose key equals `key`,
    /// in **ascending build-row order**.
    ///
    /// This is an invariant, not an accident: [`HashIndex::build`] inserts
    /// rows `0..n` in order with linear probing and nothing is ever
    /// deleted, so a later duplicate of a key always lands strictly further
    /// along the probe chain than an earlier one, and the probe walk visits
    /// them oldest-first. The merge-path join
    /// ([`kernels::merge_join`](crate::kernels::merge_join)) emits matches
    /// of a sorted build side in the same ascending order, which is what
    /// makes the two join paths bit-identical downstream — provenance tag
    /// combination during dedup folds duplicates in candidate-row order.
    pub fn for_each_match(&self, key: &[u64], mut f: impl FnMut(usize)) {
        if self.rows == 0 {
            return;
        }
        let mut slot = (hash_key(key) & self.mask) as usize;
        loop {
            let entry = self.slots[slot];
            if entry == 0 {
                return;
            }
            let row = (entry - 1) as usize;
            if self.row_matches(row, key) {
                f(row);
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// [`HashIndex::for_each_match`] keyed by row `probe_row` of the probe
    /// columns, hashing and comparing straight from column storage.
    pub fn for_each_match_cols(
        &self,
        probe_cols: &[&[u64]],
        probe_row: usize,
        mut f: impl FnMut(usize),
    ) {
        if self.rows == 0 {
            return;
        }
        let mut slot = (hash_cols(probe_cols, probe_row) & self.mask) as usize;
        loop {
            let entry = self.slots[slot];
            if entry == 0 {
                return;
            }
            let row = (entry - 1) as usize;
            if self.row_matches_cols(row, probe_cols, probe_row) {
                f(row);
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(cols: &[Vec<u64>]) -> HashIndex {
        let dev = Device::sequential();
        let refs: Vec<&[u64]> = cols.iter().map(|c| c.as_slice()).collect();
        HashIndex::build(&dev, &refs, 2)
    }

    #[test]
    fn single_column_lookup_finds_all_duplicates() {
        let idx = index_of(&[vec![1, 2, 1, 3, 1]]);
        let mut hits = Vec::new();
        idx.for_each_match(&[1], |r| hits.push(r));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2, 4]);
        assert_eq!(idx.count(&[2]), 1);
        assert_eq!(idx.count(&[9]), 0);
    }

    #[test]
    fn multi_column_keys_distinguish_rows() {
        let idx = index_of(&[vec![1, 1, 2], vec![10, 20, 10]]);
        assert_eq!(idx.count(&[1, 10]), 1);
        assert_eq!(idx.count(&[1, 20]), 1);
        assert_eq!(idx.count(&[2, 20]), 0);
        assert_eq!(idx.key_width(), 2);
    }

    #[test]
    fn empty_build_side_matches_nothing() {
        let idx = index_of(&[Vec::new()]);
        assert!(idx.is_empty());
        assert_eq!(idx.count(&[42]), 0);
    }

    #[test]
    fn capacity_scales_with_expansion() {
        let dev = Device::sequential();
        let col: Vec<u64> = (0..100).collect();
        let small = HashIndex::build(&dev, &[&col], 1);
        let large = HashIndex::build(&dev, &[&col], 4);
        assert!(large.capacity() >= small.capacity());
        assert!(small.capacity() >= 100);
    }

    #[test]
    fn column_probing_matches_key_probing() {
        let cols = vec![vec![1u64, 2, 1, 3], vec![10u64, 20, 10, 30]];
        let idx = index_of(&cols);
        let probe: Vec<&[u64]> = cols.iter().map(|c| c.as_slice()).collect();
        for row in 0..4 {
            let key: Vec<u64> = cols.iter().map(|c| c[row]).collect();
            assert_eq!(idx.count(&key), idx.count_cols(&probe, row), "row {row}");
            let mut a = Vec::new();
            let mut b = Vec::new();
            idx.for_each_match(&key, |r| a.push(r));
            idx.for_each_match_cols(&probe, row, |r| b.push(r));
            assert_eq!(a, b, "row {row}");
        }
    }

    #[test]
    fn matches_enumerate_in_ascending_build_row_order() {
        // The merge-join path relies on this: both join paths must emit a
        // probe row's matches in the same (ascending) build-row order.
        let mut col: Vec<u64> = (0..257u64).collect();
        col.extend([7u64; 40]); // duplicates scattered after distinct keys
        col.extend((300..400u64).rev().flat_map(|k| [k, 7]));
        let idx = index_of(&[col.clone()]);
        let mut hits = Vec::new();
        idx.for_each_match(&[7], |r| hits.push(r));
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "{hits:?}");
        assert_eq!(hits.len(), col.iter().filter(|&&k| k == 7).count());
    }

    #[test]
    fn heavy_collision_load_still_finds_everything() {
        // Many distinct keys plus many duplicates of one key.
        let mut col: Vec<u64> = (0..1000u64).collect();
        col.extend(std::iter::repeat_n(7u64, 100));
        let idx = index_of(&[col]);
        assert_eq!(idx.count(&[7]), 101);
        for i in 0..1000u64 {
            if i != 7 {
                assert_eq!(idx.count(&[i]), 1, "key {i}");
            }
        }
    }
}
