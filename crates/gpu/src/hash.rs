//! The partitioned open-addressing hash index used for joins.
//!
//! Section 5.1 of the paper: the join kernel relies on a GPU hash table with
//! open addressing and linear probing, storing *indices back into the source
//! table* rather than fact data, so the join's complexity is decoupled from
//! the width of the input relations. This module reproduces that structure on
//! the simulated device — sharded into hash **partitions** so that both the
//! build and the probe side parallelize:
//!
//! * [`HashIndex::build`] distributes rows over `P` partitions by the *top*
//!   bits of the key hash (the slot within a partition uses the low bits, so
//!   the two never alias), then builds every partition's slot table in
//!   parallel on the device's worker pool. `P` is chosen from the row count
//!   alone — never from the device parallelism — so the index *structure* is
//!   identical whatever device built it.
//! * [`ProbePartition`] radix-groups a probe column set by the same top
//!   bits, so each probe chunk walks one cache-resident partition instead of
//!   striding a monolithic table (see
//!   [`kernels::count_matches`](crate::kernels::count_matches) /
//!   [`kernels::hash_join`](crate::kernels::hash_join)).
//!
//! # Determinism
//!
//! A row's partition and slot depend only on its key hash and the row count,
//! and rows are inserted into each partition in ascending global row order,
//! so every probe still enumerates matches in **ascending build-row order**
//! (the invariant the merge-join path and provenance folding rely on) and
//! the whole index is bit-identical across device parallelism.
//!
//! The partition function uses the top bits of the same multiplicative mix
//! hash the slots use, *not* `lobster_apm::fnv1a` — the apm crate depends on
//! this one, so the gpu layer cannot see it; top-bits-of-mix gives the same
//! uniformity without the dependency cycle.

use crate::device::KernelKind;
use crate::kernels::sites;
use crate::parallel::{chunks_for, map_chunks, par_map_into, run_chunks, split_by_ranges};
use crate::{Column, Device};
use std::ops::Range;
use std::time::Instant;

/// Multiplicative hashing constant (the 64-bit golden ratio).
const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// FNV-style offset basis the key mix starts from.
const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Rows a partition targets: enough to amortize per-partition dispatch,
/// small enough that one partition's slot table stays cache-resident.
const PARTITION_TARGET_ROWS: usize = 8192;

/// Hard cap on partitions, bounding per-chunk histogram size.
const MAX_PARTITIONS: usize = 512;

/// Probe sides below this row count are not worth radix-grouping.
const PROBE_GROUP_MIN: usize = 4096;

fn mix(h: u64, k: u64) -> u64 {
    (h ^ k.wrapping_mul(HASH_MULT))
        .rotate_left(27)
        .wrapping_mul(HASH_MULT)
}

fn hash_key(key: &[u64]) -> u64 {
    key.iter().fold(HASH_SEED, |h, &k| mix(h, k))
}

/// Hashes row `row` of a set of key columns — identical to [`hash_key`] of
/// the materialized key, without materializing it.
pub(crate) fn hash_cols(cols: &[&[u64]], row: usize) -> u64 {
    cols.iter().fold(HASH_SEED, |h, col| mix(h, col[row]))
}

/// The number of partitions an index over `rows` rows defaults to: a power
/// of two targeting [`PARTITION_TARGET_ROWS`] rows per partition, `1` below
/// twice the target (a tiny table gains nothing from sharding). A function
/// of the row count only, never of device parallelism.
fn default_partitions(rows: usize) -> usize {
    if rows < 2 * PARTITION_TARGET_ROWS {
        1
    } else {
        (rows / PARTITION_TARGET_ROWS)
            .next_power_of_two()
            .min(MAX_PARTITIONS)
    }
}

/// One hash partition: an open-addressing slot table over the rows whose
/// hash tops map here. Slots store `row_index + 1` (0 means empty).
#[derive(Debug, Clone)]
struct Partition {
    slots: Column,
    mask: u64,
}

/// A hash index over the first `w` columns of a build-side table.
///
/// Slots store `row_index + 1` (0 means empty). Duplicate keys occupy
/// separate slots along the probe chain, so a probe enumerates *all* matching
/// build rows — exactly what a relational join needs.
///
/// The index owns a copy of the key columns it was built from, which is what
/// allows it to be stored in a *static register* (Section 4.2) and reused
/// across fix-point iterations even though the transient registers of the
/// previous iteration have been discarded.
///
/// The slot space is split over hash partitions (see the module docs); use
/// [`HashIndex::partitions`] to observe the partition count.
#[derive(Debug, Clone)]
pub struct HashIndex {
    parts: Vec<Partition>,
    /// Partition of hash `h` is `h >> shift`; `shift == 64` means a single
    /// partition (shifts of 64 are not evaluated — see [`HashIndex::part_of`]).
    shift: u32,
    keys: Vec<Column>,
    rows: usize,
}

impl HashIndex {
    /// Builds an index over `key_columns` (all columns must share the same
    /// length). `expansion` is the paper's `O` parameter: each partition's
    /// capacity is the smallest power of two at least `expansion ×` its row
    /// count. The partition count defaults from the row count (see the
    /// module docs); the build parallelizes across partitions on the
    /// device's worker pool.
    pub fn build(device: &Device, key_columns: &[&[u64]], expansion: usize) -> Self {
        let rows = key_columns.first().map(|c| c.len()).unwrap_or(0);
        Self::build_partitioned(device, key_columns, expansion, default_partitions(rows))
    }

    /// [`HashIndex::build`] with an explicit partition count (rounded up to
    /// a power of two and clamped to an internal cap). `partitions: 1`
    /// builds the monolithic single-table index — benchmarks use it to
    /// measure the partitioned build and probe against the flat layout, and
    /// the property suite uses it to pin the two bit-identical.
    pub fn build_partitioned(
        device: &Device,
        key_columns: &[&[u64]],
        expansion: usize,
        partitions: usize,
    ) -> Self {
        let _t = device.launch(KernelKind::Join);
        let rows = key_columns.first().map(|c| c.len()).unwrap_or(0);
        debug_assert!(
            key_columns.iter().all(|c| c.len() == rows),
            "ragged key columns"
        );
        let partitions = partitions
            .clamp(1, MAX_PARTITIONS)
            .next_power_of_two()
            .min(MAX_PARTITIONS);
        let arena = device.arena();
        let keys: Vec<Column> = key_columns
            .iter()
            .map(|c| arena.alloc_copy(sites::JOIN_INDEX, c))
            .collect();
        let shift = 64 - partitions.trailing_zeros();
        if partitions == 1 || rows == 0 {
            let start = Instant::now();
            let part = build_one_partition(
                device,
                (0..rows as u64).collect::<Vec<u64>>().as_slice(),
                |row| hash_cols(key_columns, row),
                expansion,
            );
            device.record_busy(start.elapsed());
            return HashIndex {
                parts: vec![part],
                shift: 64,
                keys,
                rows,
            };
        }
        // Pass 1: hash every row once.
        let mut hashes = arena.alloc_zeroed(sites::JOIN_BUILD, rows);
        par_map_into(device, &mut hashes, |row| hash_cols(key_columns, row));
        // Pass 2: stable scatter of row ids grouped by partition — ascending
        // global row order within each partition, which is what preserves
        // the ascending-match invariant.
        let ranges = chunks_for(device, rows);
        let chunks = ranges.len();
        let histograms: Vec<Vec<usize>> = map_chunks(device, &ranges, |_, range| {
            let mut h = vec![0usize; partitions];
            for &hv in &hashes[range] {
                h[(hv >> shift) as usize] += 1;
            }
            h
        });
        let mut grouped = arena.alloc_zeroed(sites::JOIN_BUILD, rows);
        let mut part_bounds = Vec::with_capacity(partitions);
        {
            // Carve `grouped` into (partition, chunk) buckets in destination
            // order and regroup per chunk, exactly like the radix-sort
            // scatter in `kernels::radix_pass`.
            let mut per_chunk: Vec<Vec<&mut [u64]>> = (0..chunks)
                .map(|_| Vec::with_capacity(partitions))
                .collect();
            let mut rest = grouped.as_mut_slice();
            let mut consumed = 0usize;
            for p in 0..partitions {
                let part_start = consumed;
                for (c, h) in histograms.iter().enumerate() {
                    let (head, tail) = rest.split_at_mut(h[p]);
                    per_chunk[c].push(head);
                    rest = tail;
                    consumed += h[p];
                }
                part_bounds.push(part_start..consumed);
            }
            debug_assert!(rest.is_empty());
            run_chunks(
                device,
                &ranges,
                per_chunk,
                |_, range, mut slices: Vec<&mut [u64]>| {
                    let mut cursors = vec![0usize; partitions];
                    for i in range {
                        let p = (hashes[i] >> shift) as usize;
                        slices[p][cursors[p]] = i as u64;
                        cursors[p] += 1;
                    }
                },
            );
        }
        // Pass 3: build every partition's slot table in parallel — one pool
        // task per partition, so partitions of uneven size self-balance.
        let part_ranges: Vec<Range<usize>> = (0..partitions).map(|p| p..p + 1).collect();
        let parts: Vec<Partition> = map_chunks(device, &part_ranges, |p, _| {
            build_one_partition(
                device,
                &grouped[part_bounds[p].clone()],
                |row| hashes[row],
                expansion,
            )
        });
        arena.recycle(sites::JOIN_BUILD, hashes);
        arena.recycle(sites::JOIN_BUILD, grouped);
        HashIndex {
            parts,
            shift,
            keys,
            rows,
        }
    }

    /// Number of rows indexed.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of slots in the table, summed over partitions.
    pub fn capacity(&self) -> usize {
        self.parts.iter().map(|p| p.slots.len()).sum()
    }

    /// Number of hash partitions the slot space is split into.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Width of the join key in columns.
    pub fn key_width(&self) -> usize {
        self.keys.len()
    }

    /// Approximate number of bytes the index occupies on the device.
    pub fn size_bytes(&self) -> usize {
        (self.capacity() + self.keys.len() * self.rows) * std::mem::size_of::<u64>()
    }

    /// Returns the index's buffers (slot tables and owned key copies) to the
    /// device arena; call when the index is dead so the next build reuses
    /// them.
    pub fn recycle(self, device: &Device) {
        let arena = device.arena();
        for part in self.parts {
            if part.slots.capacity() > 0 {
                arena.recycle(sites::JOIN_INDEX, part.slots);
            }
        }
        for key in self.keys {
            if key.capacity() > 0 {
                arena.recycle(sites::JOIN_INDEX, key);
            }
        }
    }

    /// The partition hash `h` maps to.
    pub(crate) fn part_of(&self, h: u64) -> usize {
        if self.shift >= 64 {
            0
        } else {
            (h >> self.shift) as usize
        }
    }

    fn row_matches(&self, row: usize, key: &[u64]) -> bool {
        self.keys.iter().zip(key).all(|(col, &k)| col[row] == k)
    }

    fn row_matches_cols(&self, row: usize, probe_cols: &[&[u64]], probe_row: usize) -> bool {
        self.keys
            .iter()
            .zip(probe_cols)
            .all(|(col, probe)| col[row] == probe[probe_row])
    }

    /// Walks the probe chain of hash `h` inside `part`, calling `f` on every
    /// stored row that passes `matches`.
    fn probe_chain(
        &self,
        part: usize,
        h: u64,
        matches: impl Fn(usize) -> bool,
        mut f: impl FnMut(usize),
    ) {
        let part = &self.parts[part];
        if part.slots.is_empty() {
            return;
        }
        let mut slot = (h & part.mask) as usize;
        loop {
            let entry = part.slots[slot];
            if entry == 0 {
                return;
            }
            let row = (entry - 1) as usize;
            if matches(row) {
                f(row);
            }
            slot = (slot + 1) & part.mask as usize;
        }
    }

    /// Counts the build rows whose key equals `key`.
    pub fn count(&self, key: &[u64]) -> usize {
        let mut n = 0;
        self.for_each_match(key, |_| n += 1);
        n
    }

    /// Counts the build rows matching row `probe_row` of the probe key
    /// columns — the probe-side hot path; no key buffer is materialized.
    pub fn count_cols(&self, probe_cols: &[&[u64]], probe_row: usize) -> usize {
        let mut n = 0;
        self.for_each_match_cols(probe_cols, probe_row, |_| n += 1);
        n
    }

    /// Invokes `f` with the index of every build row whose key equals `key`,
    /// in **ascending build-row order**.
    ///
    /// This is an invariant, not an accident: [`HashIndex::build`] inserts
    /// each partition's rows in ascending global row order with linear
    /// probing and nothing is ever deleted, so a later duplicate of a key
    /// always lands strictly further along the probe chain than an earlier
    /// one (duplicates share a hash, hence a partition), and the probe walk
    /// visits them oldest-first. The merge-path join
    /// ([`kernels::merge_join`](crate::kernels::merge_join)) emits matches
    /// of a sorted build side in the same ascending order, which is what
    /// makes the two join paths bit-identical downstream — provenance tag
    /// combination during dedup folds duplicates in candidate-row order.
    pub fn for_each_match(&self, key: &[u64], f: impl FnMut(usize)) {
        if self.rows == 0 {
            return;
        }
        let h = hash_key(key);
        self.probe_chain(self.part_of(h), h, |row| self.row_matches(row, key), f);
    }

    /// [`HashIndex::for_each_match`] keyed by row `probe_row` of the probe
    /// columns, hashing and comparing straight from column storage.
    pub fn for_each_match_cols(
        &self,
        probe_cols: &[&[u64]],
        probe_row: usize,
        f: impl FnMut(usize),
    ) {
        if self.rows == 0 {
            return;
        }
        let h = hash_cols(probe_cols, probe_row);
        self.probe_chain(
            self.part_of(h),
            h,
            |row| self.row_matches_cols(row, probe_cols, probe_row),
            f,
        );
    }

    /// [`HashIndex::for_each_match_cols`] with the hash (and its partition)
    /// precomputed — the radix-grouped probe hot path, where a chunk stays
    /// inside one partition.
    pub(crate) fn for_each_match_grouped(
        &self,
        part: usize,
        h: u64,
        probe_cols: &[&[u64]],
        probe_row: usize,
        f: impl FnMut(usize),
    ) {
        if self.rows == 0 {
            return;
        }
        self.probe_chain(
            part,
            h,
            |row| self.row_matches_cols(row, probe_cols, probe_row),
            f,
        );
    }

    /// [`HashIndex::count_cols`] with the hash and partition precomputed.
    pub(crate) fn count_grouped(
        &self,
        part: usize,
        h: u64,
        probe_cols: &[&[u64]],
        probe_row: usize,
    ) -> usize {
        let mut n = 0;
        self.for_each_match_grouped(part, h, probe_cols, probe_row, |_| n += 1);
        n
    }
}

/// Builds one partition's slot table over the given row ids (`row_hash`
/// recomputes or looks up a row's full hash). Rows must arrive in ascending
/// order — the caller's scatter guarantees it — so probe chains enumerate
/// matches oldest-first.
fn build_one_partition(
    device: &Device,
    row_ids: &[u64],
    row_hash: impl Fn(usize) -> u64,
    expansion: usize,
) -> Partition {
    let n = row_ids.len();
    let capacity = (n.max(1) * expansion.max(1)).next_power_of_two().max(8);
    let mask = capacity as u64 - 1;
    let mut slots = device.arena().alloc_zeroed(sites::JOIN_INDEX, capacity);
    for &row in row_ids {
        let mut slot = (row_hash(row as usize) & mask) as usize;
        while slots[slot] != 0 {
            slot = (slot + 1) & mask as usize;
        }
        slots[slot] = row + 1;
    }
    Partition { slots, mask }
}

/// A radix-grouping of a probe column set against a partitioned
/// [`HashIndex`]: probe rows reordered so that each index partition's rows
/// are contiguous (ascending probe order within a partition), plus the maps
/// needed to put per-row results back in original probe order.
///
/// Built once per probe side and shared between
/// [`kernels::count_matches`](crate::kernels::count_matches) and
/// [`kernels::hash_join`](crate::kernels::hash_join) via their `_with`
/// variants — the executor memoizes it between the count and join
/// instructions of one rule so the grouping is paid once.
pub struct ProbePartition {
    /// Probe row ids grouped by partition, ascending within each partition.
    pub(crate) grouped: Column,
    /// `dest[i]`: the grouped position of probe row `i` (the inverse of
    /// `grouped`).
    pub(crate) dest: Column,
    /// Key hash per probe row, in original probe order.
    pub(crate) hashes: Column,
    /// The grouped range belonging to each index partition.
    pub(crate) bounds: Vec<Range<usize>>,
}

impl ProbePartition {
    /// Groups `probe_key_cols` by `index`'s partition function. Returns
    /// `None` when grouping cannot pay for itself: a single-partition index,
    /// or a probe side under an internal row threshold. The decision depends
    /// only on the index structure and the probe length — never on device
    /// parallelism — so whether the grouped or direct probe path runs is
    /// itself deterministic.
    pub fn build(
        device: &Device,
        index: &HashIndex,
        probe_key_cols: &[&[u64]],
    ) -> Option<ProbePartition> {
        let len = probe_key_cols.first().map(|c| c.len()).unwrap_or(0);
        let partitions = index.partitions();
        if partitions <= 1 || len < PROBE_GROUP_MIN {
            return None;
        }
        let _t = device.launch(KernelKind::Join);
        let shift = index.shift;
        let arena = device.arena();
        let mut hashes = arena.alloc_zeroed(sites::JOIN_PROBE, len);
        par_map_into(device, &mut hashes, |i| hash_cols(probe_key_cols, i));
        let ranges = chunks_for(device, len);
        let chunks = ranges.len();
        let histograms: Vec<Vec<usize>> = map_chunks(device, &ranges, |_, range| {
            let mut h = vec![0usize; partitions];
            for &hv in &hashes[range] {
                h[(hv >> shift) as usize] += 1;
            }
            h
        });
        // Base grouped position of every (partition, chunk) bucket, in
        // destination order.
        let mut bases = vec![0usize; partitions * chunks];
        let mut bounds = Vec::with_capacity(partitions);
        {
            let mut acc = 0usize;
            for p in 0..partitions {
                let part_start = acc;
                for (c, h) in histograms.iter().enumerate() {
                    bases[p * chunks + c] = acc;
                    acc += h[p];
                }
                bounds.push(part_start..acc);
            }
            debug_assert_eq!(acc, len);
        }
        let mut grouped = arena.alloc_zeroed(sites::JOIN_PROBE, len);
        let mut dest = arena.alloc_zeroed(sites::JOIN_PROBE, len);
        {
            let mut per_chunk: Vec<Vec<&mut [u64]>> = (0..chunks)
                .map(|_| Vec::with_capacity(partitions))
                .collect();
            let mut rest = grouped.as_mut_slice();
            for p in 0..partitions {
                for (c, h) in histograms.iter().enumerate() {
                    let (head, tail) = rest.split_at_mut(h[p]);
                    per_chunk[c].push(head);
                    rest = tail;
                }
            }
            debug_assert!(rest.is_empty());
            let dest_slices = split_by_ranges(&mut dest, &ranges);
            run_chunks(
                device,
                &ranges,
                per_chunk.into_iter().zip(dest_slices).collect(),
                |c, range, (mut slices, dest_slice): (Vec<&mut [u64]>, &mut [u64])| {
                    let mut cursors = vec![0usize; partitions];
                    for (d, i) in dest_slice.iter_mut().zip(range) {
                        let p = (hashes[i] >> shift) as usize;
                        slices[p][cursors[p]] = i as u64;
                        *d = (bases[p * chunks + c] + cursors[p]) as u64;
                        cursors[p] += 1;
                    }
                },
            );
        }
        Some(ProbePartition {
            grouped,
            dest,
            hashes,
            bounds,
        })
    }

    /// Number of probe rows grouped.
    pub fn len(&self) -> usize {
        self.grouped.len()
    }

    /// `true` when no probe rows were grouped (never produced by
    /// [`ProbePartition::build`], which returns `None` instead).
    pub fn is_empty(&self) -> bool {
        self.grouped.is_empty()
    }

    /// Returns the grouping's buffers to the device arena.
    pub fn recycle(self, device: &Device) {
        let arena = device.arena();
        arena.recycle(sites::JOIN_PROBE, self.grouped);
        arena.recycle(sites::JOIN_PROBE, self.dest);
        arena.recycle(sites::JOIN_PROBE, self.hashes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(cols: &[Vec<u64>]) -> HashIndex {
        let dev = Device::sequential();
        let refs: Vec<&[u64]> = cols.iter().map(|c| c.as_slice()).collect();
        HashIndex::build(&dev, &refs, 2)
    }

    #[test]
    fn single_column_lookup_finds_all_duplicates() {
        let idx = index_of(&[vec![1, 2, 1, 3, 1]]);
        let mut hits = Vec::new();
        idx.for_each_match(&[1], |r| hits.push(r));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2, 4]);
        assert_eq!(idx.count(&[2]), 1);
        assert_eq!(idx.count(&[9]), 0);
    }

    #[test]
    fn multi_column_keys_distinguish_rows() {
        let idx = index_of(&[vec![1, 1, 2], vec![10, 20, 10]]);
        assert_eq!(idx.count(&[1, 10]), 1);
        assert_eq!(idx.count(&[1, 20]), 1);
        assert_eq!(idx.count(&[2, 20]), 0);
        assert_eq!(idx.key_width(), 2);
    }

    #[test]
    fn empty_build_side_matches_nothing() {
        let idx = index_of(&[Vec::new()]);
        assert!(idx.is_empty());
        assert_eq!(idx.count(&[42]), 0);
    }

    #[test]
    fn capacity_scales_with_expansion() {
        let dev = Device::sequential();
        let col: Vec<u64> = (0..100).collect();
        let small = HashIndex::build(&dev, &[&col], 1);
        let large = HashIndex::build(&dev, &[&col], 4);
        assert!(large.capacity() >= small.capacity());
        assert!(small.capacity() >= 100);
    }

    #[test]
    fn column_probing_matches_key_probing() {
        let cols = vec![vec![1u64, 2, 1, 3], vec![10u64, 20, 10, 30]];
        let idx = index_of(&cols);
        let probe: Vec<&[u64]> = cols.iter().map(|c| c.as_slice()).collect();
        for row in 0..4 {
            let key: Vec<u64> = cols.iter().map(|c| c[row]).collect();
            assert_eq!(idx.count(&key), idx.count_cols(&probe, row), "row {row}");
            let mut a = Vec::new();
            let mut b = Vec::new();
            idx.for_each_match(&key, |r| a.push(r));
            idx.for_each_match_cols(&probe, row, |r| b.push(r));
            assert_eq!(a, b, "row {row}");
        }
    }

    #[test]
    fn matches_enumerate_in_ascending_build_row_order() {
        // The merge-join path relies on this: both join paths must emit a
        // probe row's matches in the same (ascending) build-row order.
        let mut col: Vec<u64> = (0..257u64).collect();
        col.extend([7u64; 40]); // duplicates scattered after distinct keys
        col.extend((300..400u64).rev().flat_map(|k| [k, 7]));
        let idx = index_of(&[col.clone()]);
        let mut hits = Vec::new();
        idx.for_each_match(&[7], |r| hits.push(r));
        assert!(hits.windows(2).all(|w| w[0] < w[1]), "{hits:?}");
        assert_eq!(hits.len(), col.iter().filter(|&&k| k == 7).count());
    }

    #[test]
    fn heavy_collision_load_still_finds_everything() {
        // Many distinct keys plus many duplicates of one key.
        let mut col: Vec<u64> = (0..1000u64).collect();
        col.extend(std::iter::repeat_n(7u64, 100));
        let idx = index_of(&[col]);
        assert_eq!(idx.count(&[7]), 101);
        for i in 0..1000u64 {
            if i != 7 {
                assert_eq!(idx.count(&[i]), 1, "key {i}");
            }
        }
    }

    /// A large keyed column with clustered duplicates, for partition tests.
    fn big_keys(rows: usize) -> Vec<u64> {
        (0..rows as u64)
            .map(|i| (i.wrapping_mul(2_654_435_761)) % (rows as u64 / 3 + 1))
            .collect()
    }

    #[test]
    fn default_partition_count_follows_rows_not_parallelism() {
        let small = index_of(&[big_keys(1000)]);
        assert_eq!(small.partitions(), 1);
        let seq = Device::sequential();
        let par = Device::new(crate::DeviceConfig {
            parallelism: 8,
            min_parallel_rows: 8,
            ..crate::DeviceConfig::default()
        });
        let col = big_keys(40_000);
        let a = HashIndex::build(&seq, &[&col], 2);
        let b = HashIndex::build(&par, &[&col], 2);
        assert!(a.partitions() > 1);
        assert_eq!(a.partitions(), b.partitions());
    }

    #[test]
    fn partitioned_index_is_bit_identical_across_devices_and_partitions() {
        let seq = Device::sequential();
        let par = Device::new(crate::DeviceConfig {
            parallelism: 8,
            min_parallel_rows: 8,
            ..crate::DeviceConfig::default()
        });
        let col = big_keys(20_000);
        let baseline = HashIndex::build_partitioned(&seq, &[&col], 2, 1);
        for partitions in [1usize, 4, 32] {
            for dev in [&seq, &par] {
                let idx = HashIndex::build_partitioned(dev, &[&col], 2, partitions);
                // Every key must enumerate the exact same ascending match
                // list whatever the partition count or device.
                for probe in [0u64, 1, 7, 1000, 6000] {
                    let mut a = Vec::new();
                    let mut b = Vec::new();
                    baseline.for_each_match(&[probe], |r| a.push(r));
                    idx.for_each_match(&[probe], |r| b.push(r));
                    assert_eq!(a, b, "partitions={partitions} probe={probe}");
                    assert!(b.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    #[test]
    fn identical_devices_build_identical_partition_tables() {
        // Stronger than match-equivalence: the slot tables themselves are a
        // pure function of (rows, expansion, partitions), never of device
        // parallelism.
        let seq = Device::sequential();
        let par = Device::new(crate::DeviceConfig {
            parallelism: 5,
            min_parallel_rows: 8,
            ..crate::DeviceConfig::default()
        });
        let col = big_keys(20_000);
        let a = HashIndex::build(&seq, &[&col], 2);
        let b = HashIndex::build(&par, &[&col], 2);
        assert_eq!(a.partitions(), b.partitions());
        for (pa, pb) in a.parts.iter().zip(&b.parts) {
            assert_eq!(pa.mask, pb.mask);
            assert_eq!(pa.slots, pb.slots);
        }
    }

    #[test]
    fn probe_partition_is_a_consistent_permutation() {
        let dev = Device::new(crate::DeviceConfig {
            parallelism: 3,
            min_parallel_rows: 8,
            ..crate::DeviceConfig::default()
        });
        let col = big_keys(20_000);
        let idx = HashIndex::build(&dev, &[&col], 2);
        assert!(idx.partitions() > 1);
        let probe = big_keys(8_000);
        let pp = ProbePartition::build(&dev, &idx, &[&probe]).expect("grouping worthwhile");
        assert_eq!(pp.len(), probe.len());
        // bounds tile the grouped space, one range per partition.
        assert_eq!(pp.bounds.len(), idx.partitions());
        assert_eq!(pp.bounds.first().map(|r| r.start), Some(0));
        assert_eq!(pp.bounds.last().map(|r| r.end), Some(probe.len()));
        // grouped is a permutation; dest is its inverse; rows inside one
        // partition range really map there and stay ascending.
        let mut seen = vec![false; probe.len()];
        for (p, range) in pp.bounds.iter().enumerate() {
            let mut prev = None;
            for g in range.clone() {
                let row = pp.grouped[g] as usize;
                assert!(!seen[row]);
                seen[row] = true;
                assert_eq!(pp.dest[row] as usize, g);
                assert_eq!(idx.part_of(pp.hashes[row]), p);
                if let Some(prev) = prev {
                    assert!(prev < row, "ascending within partition");
                }
                prev = Some(row);
            }
        }
        assert!(seen.iter().all(|&s| s));
        pp.recycle(&dev);
    }

    #[test]
    fn probe_partition_declines_small_or_monolithic_cases() {
        let dev = Device::sequential();
        let small = big_keys(100);
        let idx_small = HashIndex::build(&dev, &[&small], 2);
        assert!(ProbePartition::build(&dev, &idx_small, &[&small]).is_none());
        let big = big_keys(20_000);
        let idx_big = HashIndex::build(&dev, &[&big], 2);
        // Large index, tiny probe side: still not worth grouping.
        assert!(ProbePartition::build(&dev, &idx_big, &[&small]).is_none());
    }
}
