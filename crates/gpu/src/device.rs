//! The simulated device: configuration, memory accounting, and statistics.

use crate::arena::Arena;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Direction of a simulated host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDirection {
    /// Host (CPU) memory to device (GPU) memory.
    HostToDevice,
    /// Device (GPU) memory back to host (CPU) memory.
    DeviceToHost,
}

/// Configuration of the simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Number of worker threads used to execute kernels. `1` gives a fully
    /// sequential execution, which is useful for debugging.
    pub parallelism: usize,
    /// Optional device memory budget in bytes. Allocations beyond the budget
    /// fail with [`DeviceError::OutOfMemory`], reproducing the OOM entries of
    /// the paper's Table 3.
    pub memory_limit: Option<usize>,
    /// The `O` parameter of the paper (Figure 6): the hash table built for a
    /// join is sized `O ×` the number of build-side rows.
    pub hash_table_expansion: usize,
    /// Minimum number of rows per worker chunk before a kernel bothers to go
    /// parallel.
    pub min_parallel_rows: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            memory_limit: None,
            hash_table_expansion: 2,
            min_parallel_rows: 4096,
        }
    }
}

/// The accounting bucket a kernel launch is attributed to, for the
/// per-kernel wall-time breakdown in [`DeviceStats::kernel_time`]. Sort,
/// join, and unique dominate fix-point cost (the paper's Table 1 hot set),
/// so they get their own buckets; everything else (scan, merge, difference,
/// eval, gathers, loads) is `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Row sorting (`sort_permutation`).
    Sort,
    /// Hash-join family (`HashIndex::build`, `count_matches`, `hash_join`).
    Join,
    /// Sorted-run deduplication (`unique`).
    Unique,
    /// Every other kernel.
    Other,
}

/// Wall time spent inside kernels, broken down by [`KernelKind`]. Times are
/// summed across concurrent launches, so on a parallel device the total can
/// exceed wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTime {
    /// Nanoseconds spent in sort kernels.
    pub sort_ns: u64,
    /// Nanoseconds spent in join kernels (index build + probe).
    pub join_ns: u64,
    /// Nanoseconds spent in unique kernels.
    pub unique_ns: u64,
    /// Nanoseconds spent in every other kernel.
    pub other_ns: u64,
}

impl KernelTime {
    fn bucket_mut(&mut self, kind: KernelKind) -> &mut u64 {
        match kind {
            KernelKind::Sort => &mut self.sort_ns,
            KernelKind::Join => &mut self.join_ns,
            KernelKind::Unique => &mut self.unique_ns,
            KernelKind::Other => &mut self.other_ns,
        }
    }

    /// Nanoseconds across all buckets.
    pub fn total_ns(&self) -> u64 {
        self.sort_ns + self.join_ns + self.unique_ns + self.other_ns
    }

    /// The bucket-wise difference from an earlier snapshot.
    pub fn delta_since(&self, earlier: &KernelTime) -> KernelTime {
        KernelTime {
            sort_ns: self.sort_ns.saturating_sub(earlier.sort_ns),
            join_ns: self.join_ns.saturating_sub(earlier.join_ns),
            unique_ns: self.unique_ns.saturating_sub(earlier.unique_ns),
            other_ns: self.other_ns.saturating_sub(earlier.other_ns),
        }
    }

    /// Accumulates another record bucket-wise.
    pub fn merge(&mut self, other: &KernelTime) {
        self.sort_ns += other.sort_ns;
        self.join_ns += other.join_ns;
        self.unique_ns += other.unique_ns;
        self.other_ns += other.other_ns;
    }
}

/// Counters describing the work a device has performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of kernel launches.
    pub kernel_launches: usize,
    /// Wall time inside kernels, attributed per [`KernelKind`] bucket.
    pub kernel_time: KernelTime,
    /// Number of device allocations.
    pub allocations: usize,
    /// Total bytes ever allocated on the device.
    pub allocated_bytes: usize,
    /// Bytes currently allocated.
    pub live_bytes: usize,
    /// High-water mark of live bytes.
    pub peak_bytes: usize,
    /// Bytes copied host → device.
    pub bytes_to_device: usize,
    /// Bytes copied device → host.
    pub bytes_to_host: usize,
    /// Number of host↔device transfer operations.
    pub transfers: usize,
}

impl DeviceStats {
    /// The change in counters from `earlier` (an older snapshot of the same
    /// device) to `self` — what the device did *between* the two snapshots.
    /// Monotone counters subtract; `live_bytes` and `peak_bytes` are
    /// point-in-time / high-water gauges and keep `self`'s values.
    pub fn delta_since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            kernel_launches: self.kernel_launches.saturating_sub(earlier.kernel_launches),
            kernel_time: self.kernel_time.delta_since(&earlier.kernel_time),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            allocated_bytes: self.allocated_bytes.saturating_sub(earlier.allocated_bytes),
            live_bytes: self.live_bytes,
            peak_bytes: self.peak_bytes,
            bytes_to_device: self.bytes_to_device.saturating_sub(earlier.bytes_to_device),
            bytes_to_host: self.bytes_to_host.saturating_sub(earlier.bytes_to_host),
            transfers: self.transfers.saturating_sub(earlier.transfers),
        }
    }

    /// Accumulates another device's counters into this one — used to report
    /// one aggregate record for a set of shard devices. `live_bytes` and
    /// `peak_bytes` are summed, so the aggregate peak is the (pessimistic)
    /// sum of the per-shard peaks rather than the true peak of the union.
    pub fn merge(&mut self, other: &DeviceStats) {
        self.kernel_launches += other.kernel_launches;
        self.kernel_time.merge(&other.kernel_time);
        self.allocations += other.allocations;
        self.allocated_bytes += other.allocated_bytes;
        self.live_bytes += other.live_bytes;
        self.peak_bytes += other.peak_bytes;
        self.bytes_to_device += other.bytes_to_device;
        self.bytes_to_host += other.bytes_to_host;
        self.transfers += other.transfers;
    }
}

/// Errors produced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The configured device memory budget was exceeded.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested: usize,
        /// Bytes live at the time of the failure.
        live: usize,
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, live, limit } => write!(
                f,
                "device out of memory: requested {requested} bytes with {live} live of {limit} budget"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

#[derive(Debug, Default)]
struct DeviceInner {
    stats: Mutex<DeviceStats>,
    live_bytes: AtomicUsize,
    /// The buffer pool every kernel output and scratch column is routed
    /// through (Section 4.1). Shared by all clones of the device; shard
    /// devices derived with [`Device::split_shards`] get their own.
    arena: Arena,
}

/// A handle to the simulated device.
///
/// The device is cheap to clone (clones share statistics and the memory
/// budget) and is `Send + Sync`, so a single device can back many concurrent
/// kernel launches.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    inner: Arc<DeviceInner>,
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default())
    }
}

impl Device {
    /// Creates a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            config,
            inner: Arc::new(DeviceInner::default()),
        }
    }

    /// Creates a single-threaded device with no memory budget; convenient for
    /// tests.
    pub fn sequential() -> Self {
        Device::new(DeviceConfig {
            parallelism: 1,
            ..DeviceConfig::default()
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Derives `n` independent shard devices from this device's
    /// configuration, for partitioning one logical accelerator across
    /// several executors (multi-device sharded batch execution).
    ///
    /// Each shard is a *fresh* device — its own statistics, its own
    /// live-memory accounting, and therefore its own arenas once an executor
    /// runs on it — with the parent's resources divided evenly:
    ///
    /// * `memory_limit` is split `n` ways (the first shards absorb the
    ///   remainder, so the budgets sum exactly to the parent's budget);
    /// * `parallelism` is split `n` ways (remainder likewise to the leading
    ///   shards, so the workers sum exactly to the parent's), meaning `n`
    ///   shards running concurrently use no more kernel workers than the
    ///   parent would — as long as `n` does not exceed the parent's
    ///   parallelism. Each shard always keeps at least one worker, so asking
    ///   for more shards than parent workers oversubscribes by the ratio of
    ///   the two;
    /// * `hash_table_expansion` and `min_parallel_rows` are inherited.
    ///
    /// The parent device is untouched: shard work is not reflected in its
    /// statistics. Aggregate shard counters with [`DeviceStats::merge`].
    ///
    /// Shard devices are plain [`Device`] handles with no tie to the parent,
    /// so they can — and, under a persistent sharded executor, do — outlive
    /// any individual batch: a serving layer derives them once and runs
    /// every batch against the same shard devices. Their counters are
    /// monotone over that whole lifetime; per-batch attribution is a
    /// [`DeviceStats::delta_since`] between snapshots, not a counter reset.
    pub fn split_shards(&self, n: usize) -> Vec<Device> {
        let n = n.max(1);
        (0..n)
            .map(|i| {
                // Distribute both remainders over the leading shards, so the
                // shard budgets sum exactly to the parent budget and no
                // kernel worker is silently dropped.
                let memory_limit = self
                    .config
                    .memory_limit
                    .map(|limit| limit / n + usize::from(i < limit % n));
                let parallelism = (self.config.parallelism / n
                    + usize::from(i < self.config.parallelism % n))
                .max(1);
                Device::new(DeviceConfig {
                    parallelism,
                    memory_limit,
                    hash_table_expansion: self.config.hash_table_expansion,
                    min_parallel_rows: self.config.min_parallel_rows,
                })
            })
            .collect()
    }

    /// Number of kernel worker threads.
    pub fn parallelism(&self) -> usize {
        self.config.parallelism.max(1)
    }

    /// Minimum rows before a kernel splits work across threads.
    pub fn min_parallel_rows(&self) -> usize {
        self.config.min_parallel_rows.max(1)
    }

    /// Records a kernel launch (used by every kernel in [`crate::kernels`]).
    pub fn record_kernel(&self) {
        self.inner
            .stats
            .lock()
            .expect("device stats poisoned")
            .kernel_launches += 1;
    }

    /// Records a kernel launch together with the wall time it spent, in the
    /// given attribution bucket.
    pub fn record_kernel_timed(&self, kind: KernelKind, elapsed: Duration) {
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        stats.kernel_launches += 1;
        *stats.kernel_time.bucket_mut(kind) +=
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    }

    /// The buffer pool kernel outputs and scratch columns are allocated
    /// from. Kernels call this; the executor recycles dead register columns
    /// into it at the end of every fix-point iteration.
    pub fn arena(&self) -> &Arena {
        &self.inner.arena
    }

    /// Starts a timed kernel launch: the returned guard records the launch
    /// and its wall time in the given bucket when dropped.
    pub(crate) fn launch(&self, kind: KernelKind) -> LaunchTimer<'_> {
        LaunchTimer {
            device: self,
            kind,
            start: std::time::Instant::now(),
        }
    }

    /// Accounts for a device allocation of `bytes`, failing if the memory
    /// budget would be exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when a memory budget is configured
    /// and the allocation would exceed it.
    pub fn try_alloc(&self, bytes: usize) -> Result<(), DeviceError> {
        let live = self.inner.live_bytes.fetch_add(bytes, Ordering::SeqCst) + bytes;
        if let Some(limit) = self.config.memory_limit {
            if live > limit {
                self.inner.live_bytes.fetch_sub(bytes, Ordering::SeqCst);
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    live: live - bytes,
                    limit,
                });
            }
        }
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        stats.allocations += 1;
        stats.allocated_bytes += bytes;
        stats.live_bytes = live;
        stats.peak_bytes = stats.peak_bytes.max(live);
        Ok(())
    }

    /// Releases `bytes` previously accounted with [`Device::try_alloc`].
    pub fn free(&self, bytes: usize) {
        let prev = self.inner.live_bytes.fetch_sub(bytes, Ordering::SeqCst);
        let live = prev.saturating_sub(bytes);
        self.inner
            .stats
            .lock()
            .expect("device stats poisoned")
            .live_bytes = live;
    }

    /// Bytes currently accounted as live on the device.
    pub fn live_bytes(&self) -> usize {
        self.inner.live_bytes.load(Ordering::SeqCst)
    }

    /// Records a host↔device transfer of `bytes`.
    pub fn record_transfer(&self, direction: TransferDirection, bytes: usize) {
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        stats.transfers += 1;
        match direction {
            TransferDirection::HostToDevice => stats.bytes_to_device += bytes,
            TransferDirection::DeviceToHost => stats.bytes_to_host += bytes,
        }
    }

    /// A snapshot of the device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.inner
            .stats
            .lock()
            .expect("device stats poisoned")
            .clone()
    }

    /// Resets all statistics (but not live-memory accounting).
    pub fn reset_stats(&self) {
        let live = self.live_bytes();
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        *stats = DeviceStats {
            live_bytes: live,
            peak_bytes: live,
            ..DeviceStats::default()
        };
    }
}

/// Guard for one timed kernel launch; see [`Device::launch`].
pub(crate) struct LaunchTimer<'a> {
    device: &'a Device,
    kind: KernelKind,
    start: std::time::Instant,
}

impl Drop for LaunchTimer<'_> {
    fn drop(&mut self) {
        self.device
            .record_kernel_timed(self.kind, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_accounting_tracks_peak_and_live() {
        let dev = Device::sequential();
        dev.try_alloc(100).unwrap();
        dev.try_alloc(50).unwrap();
        dev.free(100);
        let stats = dev.stats();
        assert_eq!(stats.allocations, 2);
        assert_eq!(stats.allocated_bytes, 150);
        assert_eq!(stats.peak_bytes, 150);
        assert_eq!(dev.live_bytes(), 50);
    }

    #[test]
    fn memory_budget_produces_oom() {
        let dev = Device::new(DeviceConfig {
            memory_limit: Some(128),
            ..DeviceConfig::default()
        });
        dev.try_alloc(100).unwrap();
        let err = dev.try_alloc(100).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested,
                live,
                limit,
            } => {
                assert_eq!(requested, 100);
                assert_eq!(live, 100);
                assert_eq!(limit, 128);
            }
        }
        // The failed allocation must not leak accounting.
        assert_eq!(dev.live_bytes(), 100);
    }

    #[test]
    fn transfers_are_recorded_per_direction() {
        let dev = Device::sequential();
        dev.record_transfer(TransferDirection::HostToDevice, 64);
        dev.record_transfer(TransferDirection::DeviceToHost, 16);
        let stats = dev.stats();
        assert_eq!(stats.transfers, 2);
        assert_eq!(stats.bytes_to_device, 64);
        assert_eq!(stats.bytes_to_host, 16);
    }

    #[test]
    fn clones_share_statistics() {
        let dev = Device::sequential();
        let clone = dev.clone();
        clone.record_kernel();
        assert_eq!(dev.stats().kernel_launches, 1);
    }

    #[test]
    fn split_shards_divides_budget_and_parallelism() {
        let dev = Device::new(DeviceConfig {
            parallelism: 8,
            memory_limit: Some(1001),
            hash_table_expansion: 3,
            min_parallel_rows: 128,
        });
        let shards = dev.split_shards(3);
        assert_eq!(shards.len(), 3);
        // Budgets sum exactly to the parent budget; the remainder (1001 =
        // 3 * 333 + 2) lands on the leading shards.
        let budgets: Vec<usize> = shards
            .iter()
            .map(|s| s.config().memory_limit.unwrap())
            .collect();
        assert_eq!(budgets, vec![334, 334, 333]);
        // Workers sum exactly to the parent's too (8 = 3 + 3 + 2).
        let workers: Vec<usize> = shards.iter().map(Device::parallelism).collect();
        assert_eq!(workers, vec![3, 3, 2]);
        for shard in &shards {
            assert_eq!(shard.config().hash_table_expansion, 3);
            assert_eq!(shard.config().min_parallel_rows, 128);
        }
    }

    #[test]
    fn split_shards_never_produces_zero_parallelism_and_are_independent() {
        let dev = Device::sequential();
        let shards = dev.split_shards(4);
        for shard in &shards {
            assert_eq!(shard.parallelism(), 1);
            assert_eq!(shard.config().memory_limit, None);
        }
        // Shards have independent statistics — work on one is invisible to
        // its siblings and to the parent.
        shards[0].record_kernel();
        shards[0].try_alloc(64).unwrap();
        assert_eq!(shards[0].stats().kernel_launches, 1);
        assert_eq!(shards[1].stats().kernel_launches, 0);
        assert_eq!(dev.stats().kernel_launches, 0);
        assert_eq!(shards[1].live_bytes(), 0);
    }

    #[test]
    fn stats_delta_since_isolates_one_interval() {
        let dev = Device::sequential();
        dev.record_kernel();
        dev.try_alloc(100).unwrap();
        let snapshot = dev.stats();
        dev.record_kernel();
        dev.record_kernel();
        dev.record_transfer(TransferDirection::DeviceToHost, 16);
        let delta = dev.stats().delta_since(&snapshot);
        assert_eq!(delta.kernel_launches, 2);
        assert_eq!(delta.allocations, 0);
        assert_eq!(delta.transfers, 1);
        assert_eq!(delta.bytes_to_host, 16);
        // Gauges keep the current values rather than subtracting.
        assert_eq!(delta.live_bytes, 100);
        assert_eq!(delta.peak_bytes, 100);
    }

    #[test]
    fn stats_merge_aggregates_counters() {
        let a = Device::sequential();
        let b = Device::sequential();
        a.record_kernel();
        a.try_alloc(100).unwrap();
        b.try_alloc(60).unwrap();
        b.free(60);
        b.record_transfer(TransferDirection::HostToDevice, 32);
        let mut merged = a.stats();
        merged.merge(&b.stats());
        assert_eq!(merged.kernel_launches, 1);
        assert_eq!(merged.allocations, 2);
        assert_eq!(merged.allocated_bytes, 160);
        assert_eq!(merged.live_bytes, 100);
        assert_eq!(merged.peak_bytes, 160);
        assert_eq!(merged.bytes_to_device, 32);
        assert_eq!(merged.transfers, 1);
    }

    #[test]
    fn reset_stats_preserves_live_bytes() {
        let dev = Device::sequential();
        dev.try_alloc(64).unwrap();
        dev.record_kernel();
        dev.reset_stats();
        let stats = dev.stats();
        assert_eq!(stats.kernel_launches, 0);
        assert_eq!(stats.live_bytes, 64);
    }
}
