//! The simulated device: configuration, memory accounting, statistics, and
//! the persistent kernel worker pool.
//!
//! Constructing a [`Device`] spawns its worker pool (`parallelism - 1`
//! long-lived `lobster-kernel-N` threads; see [`crate::pool`]); dropping the
//! last clone of the device joins them. Kernel execution never spawns
//! threads per launch. See `docs/PERFORMANCE.md` for how the pool knobs
//! interact with shard-level parallelism.

use crate::arena::Arena;
use crate::pool::WorkerPool;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Direction of a simulated host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDirection {
    /// Host (CPU) memory to device (GPU) memory.
    HostToDevice,
    /// Device (GPU) memory back to host (CPU) memory.
    DeviceToHost,
}

/// Configuration of the simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Number of worker threads used to execute kernels. `1` gives a fully
    /// sequential execution, which is useful for debugging.
    pub parallelism: usize,
    /// Optional device memory budget in bytes. Allocations beyond the budget
    /// fail with [`DeviceError::OutOfMemory`], reproducing the OOM entries of
    /// the paper's Table 3.
    pub memory_limit: Option<usize>,
    /// The `O` parameter of the paper (Figure 6): the hash table built for a
    /// join is sized `O ×` the number of build-side rows.
    pub hash_table_expansion: usize,
    /// Minimum number of rows per worker chunk before a kernel bothers to go
    /// parallel.
    pub min_parallel_rows: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            memory_limit: None,
            hash_table_expansion: 2,
            min_parallel_rows: 4096,
        }
    }
}

/// The accounting bucket a kernel launch is attributed to, for the
/// per-kernel time breakdowns in [`DeviceStats::kernel_time`] (busy) and
/// [`DeviceStats::kernel_wall`] (enqueue-to-completion). Sort, join, and
/// unique dominate fix-point cost (the paper's Table 1 hot set), so they get
/// their own buckets; everything else (scan, merge, difference, eval,
/// gathers, loads) is `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Row sorting (`sort_permutation`).
    Sort,
    /// Hash-join family (`HashIndex::build`, `count_matches`, `hash_join`).
    Join,
    /// Sorted-run deduplication (`unique`).
    Unique,
    /// Every other kernel.
    Other,
}

/// Time spent inside kernels, broken down by [`KernelKind`]. Times are
/// summed across concurrent launches (and, for busy time, across the worker
/// threads of one launch), so on a parallel device the total can exceed
/// wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTime {
    /// Nanoseconds spent in sort kernels.
    pub sort_ns: u64,
    /// Nanoseconds spent in join kernels (index build + probe).
    pub join_ns: u64,
    /// Nanoseconds spent in unique kernels.
    pub unique_ns: u64,
    /// Nanoseconds spent in every other kernel.
    pub other_ns: u64,
}

impl KernelTime {
    fn bucket_mut(&mut self, kind: KernelKind) -> &mut u64 {
        match kind {
            KernelKind::Sort => &mut self.sort_ns,
            KernelKind::Join => &mut self.join_ns,
            KernelKind::Unique => &mut self.unique_ns,
            KernelKind::Other => &mut self.other_ns,
        }
    }

    /// Nanoseconds across all buckets.
    pub fn total_ns(&self) -> u64 {
        self.sort_ns + self.join_ns + self.unique_ns + self.other_ns
    }

    /// The bucket-wise difference from an earlier snapshot.
    pub fn delta_since(&self, earlier: &KernelTime) -> KernelTime {
        KernelTime {
            sort_ns: self.sort_ns.saturating_sub(earlier.sort_ns),
            join_ns: self.join_ns.saturating_sub(earlier.join_ns),
            unique_ns: self.unique_ns.saturating_sub(earlier.unique_ns),
            other_ns: self.other_ns.saturating_sub(earlier.other_ns),
        }
    }

    /// Accumulates another record bucket-wise.
    pub fn merge(&mut self, other: &KernelTime) {
        self.sort_ns += other.sort_ns;
        self.join_ns += other.join_ns;
        self.unique_ns += other.unique_ns;
        self.other_ns += other.other_ns;
    }
}

/// Counters describing the work a device has performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of kernel launches.
    pub kernel_launches: usize,
    /// **Busy** time inside kernels, attributed per [`KernelKind`] bucket:
    /// the summed chunk-execution time across every thread that worked on a
    /// launch. Pool idle and queue wait are *not* counted here — with a
    /// persistent worker pool, enqueue-to-completion time (see
    /// [`DeviceStats::kernel_wall`]) includes waiting for a free worker,
    /// which is not kernel work.
    pub kernel_time: KernelTime,
    /// **Enqueue-to-completion** wall time per launch, attributed per
    /// [`KernelKind`] bucket — what a caller of the kernel observed,
    /// including any pool queue wait. `kernel_wall` is the latency view;
    /// [`DeviceStats::kernel_time`] is the work view. On a sequential device
    /// the two agree (up to launch bookkeeping); on a parallel device busy
    /// time exceeds wall time whenever chunks overlap.
    pub kernel_wall: KernelTime,
    /// Number of device allocations.
    pub allocations: usize,
    /// Total bytes ever allocated on the device.
    pub allocated_bytes: usize,
    /// Bytes currently allocated.
    pub live_bytes: usize,
    /// High-water mark of live bytes.
    pub peak_bytes: usize,
    /// Bytes copied host → device.
    pub bytes_to_device: usize,
    /// Bytes copied device → host.
    pub bytes_to_host: usize,
    /// Number of host↔device transfer operations.
    pub transfers: usize,
}

impl DeviceStats {
    /// The change in counters from `earlier` (an older snapshot of the same
    /// device) to `self` — what the device did *between* the two snapshots.
    /// Monotone counters subtract; `live_bytes` and `peak_bytes` are
    /// point-in-time / high-water gauges and keep `self`'s values.
    pub fn delta_since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            kernel_launches: self.kernel_launches.saturating_sub(earlier.kernel_launches),
            kernel_time: self.kernel_time.delta_since(&earlier.kernel_time),
            kernel_wall: self.kernel_wall.delta_since(&earlier.kernel_wall),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            allocated_bytes: self.allocated_bytes.saturating_sub(earlier.allocated_bytes),
            live_bytes: self.live_bytes,
            peak_bytes: self.peak_bytes,
            bytes_to_device: self.bytes_to_device.saturating_sub(earlier.bytes_to_device),
            bytes_to_host: self.bytes_to_host.saturating_sub(earlier.bytes_to_host),
            transfers: self.transfers.saturating_sub(earlier.transfers),
        }
    }

    /// Accumulates another device's counters into this one — used to report
    /// one aggregate record for a set of shard devices. `live_bytes` and
    /// `peak_bytes` are summed, so the aggregate peak is the (pessimistic)
    /// sum of the per-shard peaks rather than the true peak of the union.
    pub fn merge(&mut self, other: &DeviceStats) {
        self.kernel_launches += other.kernel_launches;
        self.kernel_time.merge(&other.kernel_time);
        self.kernel_wall.merge(&other.kernel_wall);
        self.allocations += other.allocations;
        self.allocated_bytes += other.allocated_bytes;
        self.live_bytes += other.live_bytes;
        self.peak_bytes += other.peak_bytes;
        self.bytes_to_device += other.bytes_to_device;
        self.bytes_to_host += other.bytes_to_host;
        self.transfers += other.transfers;
    }
}

/// Errors produced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The configured device memory budget was exceeded.
    OutOfMemory {
        /// Bytes the failing allocation requested.
        requested: usize,
        /// Bytes live at the time of the failure.
        live: usize,
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, live, limit } => write!(
                f,
                "device out of memory: requested {requested} bytes with {live} live of {limit} budget"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

#[derive(Debug)]
struct DeviceInner {
    stats: Mutex<DeviceStats>,
    live_bytes: AtomicUsize,
    /// The buffer pool every kernel output and scratch column is routed
    /// through (Section 4.1). Shared by all clones of the device; shard
    /// devices derived with [`Device::split_shards`] get their own.
    arena: Arena,
    /// The persistent kernel worker pool: spawned once here, shared by all
    /// clones of the device, joined when the last clone drops.
    pool: WorkerPool,
}

thread_local! {
    /// The [`KernelKind`] of the innermost active launch *on this thread*:
    /// set by [`Device::launch`], restored when the guard drops. Busy time
    /// recorded from pool worker threads lands in `Other` unless the chunk
    /// task itself runs under a launch guard — which it never does; workers
    /// report busy time back through the launcher (`WorkerPool::run`), so
    /// attribution happens on the launching thread where the guard is live.
    static ACTIVE_KIND: Cell<KernelKind> = const { Cell::new(KernelKind::Other) };
}

/// A handle to the simulated device.
///
/// The device is cheap to clone (clones share statistics and the memory
/// budget) and is `Send + Sync`, so a single device can back many concurrent
/// kernel launches.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    inner: Arc<DeviceInner>,
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default())
    }
}

impl Device {
    /// Creates a device with the given configuration. This spawns the
    /// device's persistent kernel worker pool: `parallelism - 1` long-lived
    /// threads (the launching thread is the remaining execution lane), so a
    /// `parallelism: 1` device spawns none and runs every kernel inline. The
    /// pool is joined when the last clone of the device is dropped.
    pub fn new(config: DeviceConfig) -> Self {
        let workers = config.parallelism.max(1) - 1;
        Device {
            config,
            inner: Arc::new(DeviceInner {
                stats: Mutex::new(DeviceStats::default()),
                live_bytes: AtomicUsize::new(0),
                arena: Arena::default(),
                pool: WorkerPool::new(workers),
            }),
        }
    }

    /// Creates a single-threaded device with no memory budget; convenient for
    /// tests.
    pub fn sequential() -> Self {
        Device::new(DeviceConfig {
            parallelism: 1,
            ..DeviceConfig::default()
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Derives `n` independent shard devices from this device's
    /// configuration, for partitioning one logical accelerator across
    /// several executors (multi-device sharded batch execution).
    ///
    /// Each shard is a *fresh* device — its own statistics, its own
    /// live-memory accounting, its own arenas once an executor runs on it,
    /// and its own kernel worker pool (spawned at shard construction, joined
    /// when the shard's last clone drops; the parent's pool is neither
    /// shared nor resized) — with the parent's resources divided evenly:
    ///
    /// * `memory_limit` is split `n` ways (the first shards absorb the
    ///   remainder, so the budgets sum exactly to the parent's budget);
    /// * `parallelism` is split `n` ways (remainder likewise to the leading
    ///   shards, so the workers sum exactly to the parent's), meaning `n`
    ///   shards running concurrently use no more kernel workers than the
    ///   parent would — as long as `n` does not exceed the parent's
    ///   parallelism. Each shard always keeps at least one worker, so asking
    ///   for more shards than parent workers oversubscribes by the ratio of
    ///   the two;
    /// * `hash_table_expansion` and `min_parallel_rows` are inherited.
    ///
    /// The parent device is untouched: shard work is not reflected in its
    /// statistics. Aggregate shard counters with [`DeviceStats::merge`].
    ///
    /// Shard devices are plain [`Device`] handles with no tie to the parent,
    /// so they can — and, under a persistent sharded executor, do — outlive
    /// any individual batch: a serving layer derives them once and runs
    /// every batch against the same shard devices. Their counters are
    /// monotone over that whole lifetime; per-batch attribution is a
    /// [`DeviceStats::delta_since`] between snapshots, not a counter reset.
    pub fn split_shards(&self, n: usize) -> Vec<Device> {
        let n = n.max(1);
        (0..n)
            .map(|i| {
                // Distribute both remainders over the leading shards, so the
                // shard budgets sum exactly to the parent budget and no
                // kernel worker is silently dropped.
                let memory_limit = self
                    .config
                    .memory_limit
                    .map(|limit| limit / n + usize::from(i < limit % n));
                let parallelism = (self.config.parallelism / n
                    + usize::from(i < self.config.parallelism % n))
                .max(1);
                Device::new(DeviceConfig {
                    parallelism,
                    memory_limit,
                    hash_table_expansion: self.config.hash_table_expansion,
                    min_parallel_rows: self.config.min_parallel_rows,
                })
            })
            .collect()
    }

    /// Number of kernel execution lanes (pooled workers plus the launching
    /// thread).
    pub fn parallelism(&self) -> usize {
        self.config.parallelism.max(1)
    }

    /// Number of long-lived worker threads in this device's kernel pool —
    /// always `parallelism() - 1`, since the launching thread participates
    /// in every launch. Exposed so lifecycle tests can assert pool sizing.
    pub fn pool_workers(&self) -> usize {
        self.inner.pool.workers()
    }

    /// The persistent kernel worker pool (see [`crate::pool`]).
    pub(crate) fn pool(&self) -> &WorkerPool {
        &self.inner.pool
    }

    /// Minimum rows before a kernel splits work across threads.
    pub fn min_parallel_rows(&self) -> usize {
        self.config.min_parallel_rows.max(1)
    }

    /// Records a kernel launch (used by every kernel in [`crate::kernels`]).
    pub fn record_kernel(&self) {
        self.inner
            .stats
            .lock()
            .expect("device stats poisoned")
            .kernel_launches += 1;
    }

    /// Records a kernel launch together with its enqueue-to-completion wall
    /// time ([`DeviceStats::kernel_wall`]), in the given attribution bucket.
    /// Busy time is recorded separately by the chunk executor (see
    /// `Device::record_busy`).
    pub fn record_kernel_timed(&self, kind: KernelKind, elapsed: Duration) {
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        stats.kernel_launches += 1;
        *stats.kernel_wall.bucket_mut(kind) +=
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    }

    /// Records chunk-execution (busy) time into [`DeviceStats::kernel_time`],
    /// attributed to the innermost active launch on this thread — pool idle
    /// and queue wait never pass through here, which keeps the busy
    /// breakdown honest.
    pub(crate) fn record_busy(&self, elapsed: Duration) {
        if elapsed.is_zero() {
            return;
        }
        let kind = ACTIVE_KIND.with(Cell::get);
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        *stats.kernel_time.bucket_mut(kind) +=
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    }

    /// The buffer pool kernel outputs and scratch columns are allocated
    /// from. Kernels call this; the executor recycles dead register columns
    /// into it at the end of every fix-point iteration.
    pub fn arena(&self) -> &Arena {
        &self.inner.arena
    }

    /// Starts a timed kernel launch: the returned guard records the launch
    /// and its enqueue-to-completion wall time in the given bucket when
    /// dropped, and marks `kind` as the active attribution bucket for busy
    /// time recorded on this thread while the guard is live (nested
    /// launches restore the outer kind on drop).
    pub(crate) fn launch(&self, kind: KernelKind) -> LaunchTimer<'_> {
        let prev = ACTIVE_KIND.with(|cell| cell.replace(kind));
        LaunchTimer {
            device: self,
            kind,
            prev,
            start: std::time::Instant::now(),
        }
    }

    /// Accounts for a device allocation of `bytes`, failing if the memory
    /// budget would be exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when a memory budget is configured
    /// and the allocation would exceed it.
    pub fn try_alloc(&self, bytes: usize) -> Result<(), DeviceError> {
        let live = self.inner.live_bytes.fetch_add(bytes, Ordering::SeqCst) + bytes;
        if let Some(limit) = self.config.memory_limit {
            if live > limit {
                self.inner.live_bytes.fetch_sub(bytes, Ordering::SeqCst);
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    live: live - bytes,
                    limit,
                });
            }
        }
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        stats.allocations += 1;
        stats.allocated_bytes += bytes;
        stats.live_bytes = live;
        stats.peak_bytes = stats.peak_bytes.max(live);
        Ok(())
    }

    /// Releases `bytes` previously accounted with [`Device::try_alloc`].
    pub fn free(&self, bytes: usize) {
        let prev = self.inner.live_bytes.fetch_sub(bytes, Ordering::SeqCst);
        let live = prev.saturating_sub(bytes);
        self.inner
            .stats
            .lock()
            .expect("device stats poisoned")
            .live_bytes = live;
    }

    /// Bytes currently accounted as live on the device.
    pub fn live_bytes(&self) -> usize {
        self.inner.live_bytes.load(Ordering::SeqCst)
    }

    /// Records a host↔device transfer of `bytes`.
    pub fn record_transfer(&self, direction: TransferDirection, bytes: usize) {
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        stats.transfers += 1;
        match direction {
            TransferDirection::HostToDevice => stats.bytes_to_device += bytes,
            TransferDirection::DeviceToHost => stats.bytes_to_host += bytes,
        }
    }

    /// A snapshot of the device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.inner
            .stats
            .lock()
            .expect("device stats poisoned")
            .clone()
    }

    /// Resets all statistics (but not live-memory accounting).
    pub fn reset_stats(&self) {
        let live = self.live_bytes();
        let mut stats = self.inner.stats.lock().expect("device stats poisoned");
        *stats = DeviceStats {
            live_bytes: live,
            peak_bytes: live,
            ..DeviceStats::default()
        };
    }
}

/// Guard for one timed kernel launch; see [`Device::launch`].
pub(crate) struct LaunchTimer<'a> {
    device: &'a Device,
    kind: KernelKind,
    prev: KernelKind,
    start: std::time::Instant,
}

impl Drop for LaunchTimer<'_> {
    fn drop(&mut self) {
        ACTIVE_KIND.with(|cell| cell.set(self.prev));
        self.device
            .record_kernel_timed(self.kind, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_accounting_tracks_peak_and_live() {
        let dev = Device::sequential();
        dev.try_alloc(100).unwrap();
        dev.try_alloc(50).unwrap();
        dev.free(100);
        let stats = dev.stats();
        assert_eq!(stats.allocations, 2);
        assert_eq!(stats.allocated_bytes, 150);
        assert_eq!(stats.peak_bytes, 150);
        assert_eq!(dev.live_bytes(), 50);
    }

    #[test]
    fn memory_budget_produces_oom() {
        let dev = Device::new(DeviceConfig {
            memory_limit: Some(128),
            ..DeviceConfig::default()
        });
        dev.try_alloc(100).unwrap();
        let err = dev.try_alloc(100).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested,
                live,
                limit,
            } => {
                assert_eq!(requested, 100);
                assert_eq!(live, 100);
                assert_eq!(limit, 128);
            }
        }
        // The failed allocation must not leak accounting.
        assert_eq!(dev.live_bytes(), 100);
    }

    #[test]
    fn transfers_are_recorded_per_direction() {
        let dev = Device::sequential();
        dev.record_transfer(TransferDirection::HostToDevice, 64);
        dev.record_transfer(TransferDirection::DeviceToHost, 16);
        let stats = dev.stats();
        assert_eq!(stats.transfers, 2);
        assert_eq!(stats.bytes_to_device, 64);
        assert_eq!(stats.bytes_to_host, 16);
    }

    #[test]
    fn clones_share_statistics() {
        let dev = Device::sequential();
        let clone = dev.clone();
        clone.record_kernel();
        assert_eq!(dev.stats().kernel_launches, 1);
    }

    #[test]
    fn split_shards_divides_budget_and_parallelism() {
        let dev = Device::new(DeviceConfig {
            parallelism: 8,
            memory_limit: Some(1001),
            hash_table_expansion: 3,
            min_parallel_rows: 128,
        });
        let shards = dev.split_shards(3);
        assert_eq!(shards.len(), 3);
        // Budgets sum exactly to the parent budget; the remainder (1001 =
        // 3 * 333 + 2) lands on the leading shards.
        let budgets: Vec<usize> = shards
            .iter()
            .map(|s| s.config().memory_limit.unwrap())
            .collect();
        assert_eq!(budgets, vec![334, 334, 333]);
        // Workers sum exactly to the parent's too (8 = 3 + 3 + 2).
        let workers: Vec<usize> = shards.iter().map(Device::parallelism).collect();
        assert_eq!(workers, vec![3, 3, 2]);
        for shard in &shards {
            assert_eq!(shard.config().hash_table_expansion, 3);
            assert_eq!(shard.config().min_parallel_rows, 128);
        }
    }

    #[test]
    fn split_shards_never_produces_zero_parallelism_and_are_independent() {
        let dev = Device::sequential();
        let shards = dev.split_shards(4);
        for shard in &shards {
            assert_eq!(shard.parallelism(), 1);
            assert_eq!(shard.config().memory_limit, None);
        }
        // Shards have independent statistics — work on one is invisible to
        // its siblings and to the parent.
        shards[0].record_kernel();
        shards[0].try_alloc(64).unwrap();
        assert_eq!(shards[0].stats().kernel_launches, 1);
        assert_eq!(shards[1].stats().kernel_launches, 0);
        assert_eq!(dev.stats().kernel_launches, 0);
        assert_eq!(shards[1].live_bytes(), 0);
    }

    #[test]
    fn stats_delta_since_isolates_one_interval() {
        let dev = Device::sequential();
        dev.record_kernel();
        dev.try_alloc(100).unwrap();
        let snapshot = dev.stats();
        dev.record_kernel();
        dev.record_kernel();
        dev.record_transfer(TransferDirection::DeviceToHost, 16);
        let delta = dev.stats().delta_since(&snapshot);
        assert_eq!(delta.kernel_launches, 2);
        assert_eq!(delta.allocations, 0);
        assert_eq!(delta.transfers, 1);
        assert_eq!(delta.bytes_to_host, 16);
        // Gauges keep the current values rather than subtracting.
        assert_eq!(delta.live_bytes, 100);
        assert_eq!(delta.peak_bytes, 100);
    }

    #[test]
    fn stats_merge_aggregates_counters() {
        let a = Device::sequential();
        let b = Device::sequential();
        a.record_kernel();
        a.try_alloc(100).unwrap();
        b.try_alloc(60).unwrap();
        b.free(60);
        b.record_transfer(TransferDirection::HostToDevice, 32);
        let mut merged = a.stats();
        merged.merge(&b.stats());
        assert_eq!(merged.kernel_launches, 1);
        assert_eq!(merged.allocations, 2);
        assert_eq!(merged.allocated_bytes, 160);
        assert_eq!(merged.live_bytes, 100);
        assert_eq!(merged.peak_bytes, 160);
        assert_eq!(merged.bytes_to_device, 32);
        assert_eq!(merged.transfers, 1);
    }

    #[test]
    fn launch_records_wall_and_busy_separately() {
        let dev = Device::sequential();
        {
            let _t = dev.launch(KernelKind::Sort);
            dev.record_busy(Duration::from_nanos(500));
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = dev.stats();
        assert_eq!(stats.kernel_launches, 1);
        // Busy time is exactly what the chunk executor reported.
        assert_eq!(stats.kernel_time.sort_ns, 500);
        // Wall time covers the whole launch, including the sleep the busy
        // counter never saw.
        assert!(stats.kernel_wall.sort_ns >= 1_000_000);
        assert_eq!(stats.kernel_wall.join_ns, 0);
    }

    #[test]
    fn busy_attribution_follows_the_innermost_launch() {
        let dev = Device::sequential();
        {
            let _outer = dev.launch(KernelKind::Join);
            {
                let _inner = dev.launch(KernelKind::Sort);
                dev.record_busy(Duration::from_nanos(100));
            }
            // Back under the outer guard after the inner one dropped.
            dev.record_busy(Duration::from_nanos(40));
        }
        let stats = dev.stats();
        assert_eq!(stats.kernel_time.sort_ns, 100);
        assert_eq!(stats.kernel_time.join_ns, 40);
        assert_eq!(stats.kernel_launches, 2);
    }

    #[test]
    fn pool_sizing_tracks_parallelism() {
        let dev = Device::new(DeviceConfig {
            parallelism: 5,
            ..DeviceConfig::default()
        });
        assert_eq!(dev.pool_workers(), 4);
        assert_eq!(Device::sequential().pool_workers(), 0);
        // Clones share one pool rather than spawning their own.
        let clone = dev.clone();
        assert_eq!(clone.pool_workers(), 4);
    }

    #[test]
    fn reset_stats_preserves_live_bytes() {
        let dev = Device::sequential();
        dev.try_alloc(64).unwrap();
        dev.record_kernel();
        dev.reset_stats();
        let stats = dev.stats();
        assert_eq!(stats.kernel_launches, 0);
        assert_eq!(stats.live_bytes, 64);
    }
}
