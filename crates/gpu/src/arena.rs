//! Arena allocation and buffer reuse for device registers and kernel
//! temporaries.
//!
//! Section 4.1 of the paper observes that every allocation in an APM program
//! is identified by an `alloc` instruction and that all register data is
//! discarded after each fix-point iteration. This enables two optimizations:
//!
//! * **Arena allocation** — allocation is a bump of a per-iteration arena and
//!   deallocation is a no-op performed once per iteration.
//! * **Buffer reuse** — buffers allocated for a given allocation site are
//!   recycled across iterations, because a register's size is strongly
//!   correlated with its size on the previous iteration.
//!
//! The [`Arena`] implements both, and since this revision it is the single
//! allocation route for *every* kernel output and scratch column: kernels in
//! [`crate::kernels`] allocate through the arena attached to their
//! [`Device`](crate::Device), and the executor recycles dead register columns
//! back into it at the end of each fix-point iteration. With reuse enabled a
//! steady-state iteration therefore performs **zero fresh column
//! allocations** — every column it needs pops out of the pool the previous
//! iteration refilled. Disabling reuse (`Arena::new(false)`, driven by the
//! runtime's `buffer_reuse` option) makes every allocation fresh again, which
//! models the unoptimized configuration of the paper's Figure 10 ablation.
//!
//! Two pools back the allocator:
//!
//! * **site pools** — keyed by the id of the allocation site (one id per
//!   kernel-internal scratch buffer, see `kernels::sites`). A kernel that
//!   recycles its scratch under its own site gets that exact buffer back on
//!   the next launch, the strongest form of the paper's size-correlation
//!   argument.
//! * **the shared pool** — a LIFO of buffers whose site is unknown, fed by
//!   the executor when it sweeps dead registers. Any allocation whose site
//!   pool is empty falls back to it; a popped buffer is resized to the
//!   requested length (its capacity only ever grows).
//!
//! The arena is internally synchronized (`&self` everywhere) so a device
//! shared by concurrent kernel launches needs no external locking.

use crate::Column;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Counters describing the allocator's behaviour. Obtained from
/// [`Arena::stats`]; the difference between two snapshots isolates one
/// interval (all fields are monotone except `pooled_buffers`/`pooled_bytes`,
/// which are point-in-time gauges).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Columns created fresh because no pooled buffer was available (or
    /// reuse is disabled). A steady-state fix-point iteration with reuse
    /// enabled performs zero of these.
    pub fresh_columns: usize,
    /// Columns served from a pool.
    pub reused_columns: usize,
    /// Columns returned to a pool.
    pub recycled_columns: usize,
    /// Buffers currently waiting in the pools.
    pub pooled_buffers: usize,
    /// Total capacity (bytes) of the pooled buffers.
    pub pooled_bytes: usize,
}

/// Default ceiling on pooled capacity per arena (bytes). Generous enough
/// that a steady-state fix-point never hits it, small enough that one
/// pathological batch does not pin the process at its high-water mark
/// forever. Override with [`Arena::set_pool_budget`].
const DEFAULT_POOL_BUDGET: usize = 256 << 20;

#[derive(Debug, Default)]
struct ArenaInner {
    /// Free buffers keyed by allocation site (kernel scratch).
    site: HashMap<usize, Vec<Column>>,
    /// Free buffers whose allocation site is unknown (register sweep), LIFO.
    shared: Vec<Column>,
    /// Total capacity (bytes) held across both pools, tracked incrementally.
    pooled_bytes: usize,
    /// Pooled-capacity ceiling; recycles beyond it drop the buffer instead.
    pool_budget: usize,
    fresh_columns: usize,
    reused_columns: usize,
    recycled_columns: usize,
}

impl ArenaInner {
    /// Pops the best available buffer for a request of `len` words: the
    /// site's own pool first (site sizes are strongly correlated across
    /// iterations), then the shared pool — preferring the most recently
    /// recycled buffer that can already hold `len`, falling back to the
    /// largest available so an undersized hit costs one grow instead of
    /// leaving a right-sized buffer stranded.
    fn pop(&mut self, site: usize, len: usize) -> Option<Column> {
        let buf = match self.site.get_mut(&site).and_then(Vec::pop) {
            Some(buf) => buf,
            None => {
                if self.shared.is_empty() {
                    return None;
                }
                let fitting = self.shared.iter().rposition(|b| b.capacity() >= len);
                let index = fitting.unwrap_or_else(|| {
                    self.shared
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, b)| b.capacity())
                        .map(|(i, _)| i)
                        .expect("non-empty shared pool")
                });
                self.shared.swap_remove(index)
            }
        };
        self.pooled_bytes -= buf.capacity() * std::mem::size_of::<u64>();
        Some(buf)
    }

    /// Accounts a buffer entering a pool; `false` means the budget is full
    /// and the buffer should be dropped instead.
    fn admit(&mut self, buffer: &Column) -> bool {
        let bytes = buffer.capacity() * std::mem::size_of::<u64>();
        if self.pooled_bytes + bytes > self.pool_budget {
            return false;
        }
        self.pooled_bytes += bytes;
        self.recycled_columns += 1;
        true
    }

    fn drop_pools(&mut self) {
        self.site.clear();
        self.shared.clear();
        self.pooled_bytes = 0;
    }
}

/// A pool of reusable device columns keyed by allocation site, with a shared
/// fallback pool for buffers recycled site-unknown. See the module docs for
/// the full story.
#[derive(Debug)]
pub struct Arena {
    /// Whether buffers are recycled; mirrors the runtime's `buffer_reuse`
    /// ablation toggle.
    reuse: AtomicBool,
    inner: Mutex<ArenaInner>,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new(true)
    }
}

impl Arena {
    /// Creates an arena. When `reuse` is false every allocation is fresh,
    /// which models the unoptimized configuration of the paper's Figure 10
    /// ablation.
    pub fn new(reuse: bool) -> Self {
        Arena {
            reuse: AtomicBool::new(reuse),
            inner: Mutex::new(ArenaInner {
                pool_budget: DEFAULT_POOL_BUDGET,
                ..ArenaInner::default()
            }),
        }
    }

    /// Whether buffer reuse is enabled.
    pub fn reuse_enabled(&self) -> bool {
        self.reuse.load(Ordering::Relaxed)
    }

    /// Enables or disables reuse (the executor sets this from its
    /// `buffer_reuse` runtime option). *Disabling* also drops the pools, so
    /// an ablation run does not silently benefit from earlier pooled
    /// buffers; setting the already-current value is a no-op, so executors
    /// that share a device (and therefore this arena) with the same option
    /// do not disturb each other. Executors with *conflicting* options on
    /// one device follow whichever was constructed last.
    pub fn set_reuse(&self, reuse: bool) {
        if self.reuse.swap(reuse, Ordering::Relaxed) && !reuse {
            self.lock().drop_pools();
        }
    }

    /// Caps the total capacity (bytes) the pools may retain; recycles beyond
    /// the cap drop their buffer. Defaults to 256 MiB — steady-state
    /// fix-points stay far below it, while one pathological batch cannot pin
    /// the process at its high-water mark forever.
    pub fn set_pool_budget(&self, bytes: usize) {
        let mut inner = self.lock();
        inner.pool_budget = bytes;
        if inner.pooled_bytes > bytes {
            inner.drop_pools();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ArenaInner> {
        self.inner.lock().expect("arena poisoned")
    }

    /// Allocates (or recycles) a column of exactly `len` zeroed words for
    /// allocation site `site`.
    pub fn alloc_zeroed(&self, site: usize, len: usize) -> Column {
        if self.reuse_enabled() {
            let mut inner = self.lock();
            if let Some(mut buf) = inner.pop(site, len) {
                inner.reused_columns += 1;
                drop(inner);
                buf.clear();
                buf.resize(len, 0);
                return buf;
            }
            inner.fresh_columns += 1;
        } else {
            self.lock().fresh_columns += 1;
        }
        vec![0u64; len]
    }

    /// Allocates (or recycles) an *empty* column with room for at least
    /// `capacity` words, for push-style producers.
    pub fn alloc_empty(&self, site: usize, capacity: usize) -> Column {
        if self.reuse_enabled() {
            let mut inner = self.lock();
            if let Some(mut buf) = inner.pop(site, capacity) {
                inner.reused_columns += 1;
                drop(inner);
                buf.clear();
                buf.reserve(capacity);
                return buf;
            }
            inner.fresh_columns += 1;
        } else {
            self.lock().fresh_columns += 1;
        }
        Vec::with_capacity(capacity)
    }

    /// Allocates (or recycles) a column holding a copy of `src` — the
    /// allocation-free replacement for `src.to_vec()` on hot paths.
    pub fn alloc_copy(&self, site: usize, src: &[u64]) -> Column {
        let mut buf = self.alloc_empty(site, src.len());
        buf.extend_from_slice(src);
        buf
    }

    /// Returns a buffer to the pool of allocation site `site` (no-op when
    /// reuse is disabled).
    pub fn recycle(&self, site: usize, buffer: Column) {
        if !self.reuse_enabled() {
            return;
        }
        let mut inner = self.lock();
        if inner.admit(&buffer) {
            inner.site.entry(site).or_default().push(buffer);
        }
    }

    /// Returns a buffer whose allocation site is unknown to the shared pool —
    /// the route the executor uses when it sweeps dead registers at the end
    /// of a fix-point iteration.
    pub fn recycle_shared(&self, buffer: Column) {
        if !self.reuse_enabled() {
            return;
        }
        let mut inner = self.lock();
        if inner.admit(&buffer) {
            inner.shared.push(buffer);
        }
    }

    /// Drops every pooled buffer (counters are kept).
    pub fn clear(&self) {
        self.lock().drop_pools();
    }

    /// A snapshot of the allocator counters.
    pub fn stats(&self) -> ArenaStats {
        let inner = self.lock();
        let pooled_buffers = inner.site.values().map(Vec::len).sum::<usize>() + inner.shared.len();
        ArenaStats {
            fresh_columns: inner.fresh_columns,
            reused_columns: inner.reused_columns,
            recycled_columns: inner.recycled_columns,
            pooled_buffers,
            pooled_bytes: inner.pooled_bytes,
        }
    }

    /// Number of buffers waiting in the pools.
    pub fn pooled_buffers(&self) -> usize {
        self.stats().pooled_buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_are_reused_per_site() {
        let arena = Arena::new(true);
        let a = arena.alloc_zeroed(7, 10);
        arena.recycle(7, a);
        assert_eq!(arena.pooled_buffers(), 1);
        let b = arena.alloc_zeroed(7, 20);
        assert_eq!(b.len(), 20);
        assert!(b.iter().all(|&w| w == 0));
        assert_eq!(arena.pooled_buffers(), 0);
        let stats = arena.stats();
        assert_eq!(stats.fresh_columns, 1);
        assert_eq!(stats.reused_columns, 1);
        assert_eq!(stats.recycled_columns, 1);
    }

    #[test]
    fn shared_pool_backs_any_site() {
        let arena = Arena::new(true);
        let a = arena.alloc_zeroed(1, 100);
        arena.recycle_shared(a);
        // A different site with an empty site pool falls back to the shared
        // pool instead of allocating fresh.
        let b = arena.alloc_zeroed(2, 50);
        assert_eq!(b.len(), 50);
        assert!(b.capacity() >= 100, "shared buffer keeps its capacity");
        assert_eq!(arena.stats().fresh_columns, 1);
    }

    #[test]
    fn shared_pool_pop_is_size_aware() {
        let arena = Arena::new(true);
        let big = arena.alloc_zeroed(0, 1000);
        let small = arena.alloc_zeroed(0, 4);
        arena.recycle_shared(big);
        arena.recycle_shared(small); // most recent — LIFO top
                                     // A large request must skip the undersized top and take the buffer
                                     // that already fits, so no hidden grow-reallocation happens.
        let buf = arena.alloc_zeroed(9, 900);
        assert!(buf.capacity() >= 1000, "picked the fitting buffer");
        assert_eq!(arena.pooled_buffers(), 1, "small buffer stays pooled");
        // With nothing fitting, the largest available is grown (one realloc
        // instead of stranding a right-sized buffer for later).
        let buf2 = arena.alloc_zeroed(9, 64);
        assert!(buf2.capacity() >= 4);
        assert_eq!(arena.pooled_buffers(), 0);
    }

    #[test]
    fn pool_budget_bounds_retained_bytes() {
        let arena = Arena::new(true);
        arena.set_pool_budget(64);
        arena.recycle_shared(arena.alloc_zeroed(0, 100)); // 800 bytes > budget
        assert_eq!(arena.pooled_buffers(), 0, "over-budget recycle dropped");
        arena.recycle_shared(arena.alloc_zeroed(0, 4)); // 32 bytes fits
        assert_eq!(arena.pooled_buffers(), 1);
        assert!(arena.stats().pooled_bytes <= 64);
        // Shrinking the budget below the pooled bytes drops the pools.
        arena.set_pool_budget(8);
        assert_eq!(arena.pooled_buffers(), 0);
    }

    #[test]
    fn set_reuse_is_idempotent_and_drops_pools_on_disable() {
        let arena = Arena::new(true);
        arena.recycle_shared(arena.alloc_zeroed(0, 10));
        // Re-asserting the current value must not disturb the pools.
        arena.set_reuse(true);
        assert_eq!(arena.pooled_buffers(), 1);
        arena.set_reuse(false);
        assert_eq!(arena.pooled_buffers(), 0);
    }

    #[test]
    fn alloc_copy_duplicates_content() {
        let arena = Arena::new(true);
        let src = [1u64, 2, 3];
        let copy = arena.alloc_copy(0, &src);
        assert_eq!(copy, vec![1, 2, 3]);
        arena.recycle_shared(copy);
        let again = arena.alloc_copy(0, &[9, 8]);
        assert_eq!(again, vec![9, 8]);
        assert_eq!(arena.stats().fresh_columns, 1);
    }

    #[test]
    fn reuse_disabled_never_pools() {
        let arena = Arena::new(false);
        let a = arena.alloc_zeroed(0, 10);
        arena.recycle(0, a);
        arena.recycle_shared(arena.alloc_empty(0, 4));
        assert_eq!(arena.pooled_buffers(), 0);
        assert!(!arena.reuse_enabled());
        assert_eq!(arena.stats().fresh_columns, 2);
        assert_eq!(arena.stats().reused_columns, 0);
    }

    #[test]
    fn disabling_reuse_drops_pools() {
        let arena = Arena::new(true);
        arena.recycle_shared(arena.alloc_zeroed(0, 10));
        assert_eq!(arena.pooled_buffers(), 1);
        arena.set_reuse(false);
        assert_eq!(arena.pooled_buffers(), 0);
        arena.set_reuse(true);
        assert_eq!(arena.alloc_zeroed(0, 5).len(), 5);
    }

    #[test]
    fn stats_report_pooled_bytes() {
        let arena = Arena::new(true);
        arena.recycle_shared(arena.alloc_zeroed(0, 16));
        assert!(arena.stats().pooled_bytes >= 16 * 8);
    }
}
