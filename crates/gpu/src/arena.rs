//! Arena allocation and buffer reuse for device registers.
//!
//! Section 4.1 of the paper observes that every allocation in an APM program
//! is identified by an `alloc` instruction and that all register data is
//! discarded after each fix-point iteration. This enables two optimizations:
//!
//! * **Arena allocation** — allocation is a bump of a per-iteration arena and
//!   deallocation is a no-op performed once per iteration.
//! * **Buffer reuse** — buffers allocated for a given `alloc` instruction are
//!   recycled across iterations, because a register's size is strongly
//!   correlated with its size on the previous iteration.
//!
//! The [`Arena`] implements both: buffers are keyed by the id of the `alloc`
//! instruction that produced them, and `reset` returns them to a free pool
//! instead of dropping them.

use crate::{Column, Device, DeviceError};
use std::collections::HashMap;

/// A pool of reusable device buffers keyed by allocation site.
#[derive(Debug, Default)]
pub struct Arena {
    /// Free buffers per allocation site, kept across iterations when buffer
    /// reuse is enabled.
    free: HashMap<usize, Vec<Column>>,
    /// Whether buffers are recycled across `reset` calls.
    reuse: bool,
    /// Bytes handed out since the last reset (for statistics).
    bytes_in_flight: usize,
}

impl Arena {
    /// Creates an arena. When `reuse` is false every allocation is fresh,
    /// which models the unoptimized configuration of the paper's Figure 10
    /// ablation.
    pub fn new(reuse: bool) -> Self {
        Arena {
            free: HashMap::new(),
            reuse,
            bytes_in_flight: 0,
        }
    }

    /// Whether buffer reuse is enabled.
    pub fn reuse_enabled(&self) -> bool {
        self.reuse
    }

    /// Allocates (or recycles) a buffer of `len` words for allocation site
    /// `site`, accounting the memory against the device budget.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the device memory budget
    /// would be exceeded.
    pub fn alloc(
        &mut self,
        device: &Device,
        site: usize,
        len: usize,
    ) -> Result<Column, DeviceError> {
        let bytes = len * std::mem::size_of::<u64>();
        device.try_alloc(bytes)?;
        self.bytes_in_flight += bytes;
        if self.reuse {
            if let Some(pool) = self.free.get_mut(&site) {
                if let Some(mut buf) = pool.pop() {
                    buf.clear();
                    buf.resize(len, 0);
                    return Ok(buf);
                }
            }
        }
        Ok(vec![0u64; len])
    }

    /// Returns a buffer to the arena's free pool (no-op deallocation).
    pub fn recycle(&mut self, site: usize, buffer: Column) {
        if self.reuse {
            self.free.entry(site).or_default().push(buffer);
        }
    }

    /// Ends an iteration: releases all in-flight bytes back to the device.
    pub fn reset(&mut self, device: &Device) {
        device.free(self.bytes_in_flight);
        self.bytes_in_flight = 0;
    }

    /// Bytes currently accounted against the device by this arena.
    pub fn bytes_in_flight(&self) -> usize {
        self.bytes_in_flight
    }

    /// Number of buffers waiting in the free pools.
    pub fn pooled_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    #[test]
    fn alloc_and_reset_balance_device_accounting() {
        let dev = Device::sequential();
        let mut arena = Arena::new(true);
        let a = arena.alloc(&dev, 0, 100).unwrap();
        let b = arena.alloc(&dev, 1, 50).unwrap();
        assert_eq!(dev.live_bytes(), 150 * 8);
        arena.recycle(0, a);
        arena.recycle(1, b);
        arena.reset(&dev);
        assert_eq!(dev.live_bytes(), 0);
        assert_eq!(arena.bytes_in_flight(), 0);
    }

    #[test]
    fn buffers_are_recycled_per_site() {
        let dev = Device::sequential();
        let mut arena = Arena::new(true);
        let a = arena.alloc(&dev, 7, 10).unwrap();
        arena.recycle(7, a);
        arena.reset(&dev);
        assert_eq!(arena.pooled_buffers(), 1);
        let b = arena.alloc(&dev, 7, 20).unwrap();
        assert_eq!(b.len(), 20);
        assert_eq!(arena.pooled_buffers(), 0);
    }

    #[test]
    fn reuse_disabled_never_pools() {
        let dev = Device::sequential();
        let mut arena = Arena::new(false);
        let a = arena.alloc(&dev, 0, 10).unwrap();
        arena.recycle(0, a);
        assert_eq!(arena.pooled_buffers(), 0);
        assert!(!arena.reuse_enabled());
    }

    #[test]
    fn arena_respects_device_memory_budget() {
        let dev = Device::new(DeviceConfig {
            memory_limit: Some(64),
            ..DeviceConfig::default()
        });
        let mut arena = Arena::new(true);
        assert!(arena.alloc(&dev, 0, 4).is_ok());
        assert!(matches!(
            arena.alloc(&dev, 1, 100),
            Err(DeviceError::OutOfMemory { .. })
        ));
    }
}
