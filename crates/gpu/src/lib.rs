//! A simulated GPU device and the data-parallel kernel library used by the
//! Lobster APM runtime.
//!
//! The paper implements Lobster's runtime with CUDA kernels. This crate
//! substitutes a *simulated device*: vector registers are large contiguous
//! buffers of 64-bit words, kernels are bulk data-parallel operations
//! executed on the device's **persistent worker pool** (long-lived threads
//! spawned at [`Device`] construction and joined when its last clone drops —
//! see [`pool`]; no kernel ever spawns threads per launch), and the device
//! tracks the statistics a real GPU runtime would care about — kernel
//! launches, allocated bytes, peak memory, and host↔device transfer volume.
//! A configurable memory budget reproduces the out-of-memory behaviour
//! reported in the paper's Table 3.
//!
//! The kernel library mirrors the APM instruction set of Table 1:
//!
//! * [`kernels::eval`] — per-row projection/selection (row-level parallelism),
//! * [`kernels::gather`] / [`kernels::gather_mul_tags`] — index gathers,
//! * [`kernels::scan`] — exclusive prefix sum (two-pass block scan),
//! * [`kernels::sort_permutation`] (parallel LSD radix sort with a parallel
//!   merge-sort fallback for wide rows), [`kernels::unique`],
//!   [`kernels::merge`], [`kernels::difference`] — sorted-table maintenance
//!   for semi-naive evaluation,
//! * [`HashIndex`] with [`kernels::count_matches`] and [`kernels::hash_join`]
//!   — the open-addressing, linear-probing hash join of Section 5.1,
//!   partitioned over hash buckets so the index build parallelizes and
//!   large probes run radix-grouped against cache-resident partitions
//!   ([`ProbePartition`]).
//!
//! All kernels produce bit-identical output whatever the configured
//! parallelism — see the [`kernels`] module docs for the determinism
//! contract (stable total orders for sorting, fixed left-to-right tag fold
//! order, data-determined partition points, parallelism-independent hash
//! partitioning). Kernel outputs and scratch are allocated through the
//! per-device [`Arena`] pool, so once a fix-point reaches its steady state
//! an iteration performs zero fresh column allocations (Section 4.1);
//! [`DeviceStats::kernel_time`] attributes chunk-execution (busy) time and
//! [`DeviceStats::kernel_wall`] enqueue-to-completion time to
//! sort/join/unique buckets. See `docs/PERFORMANCE.md` in the repository
//! for how to tune the pool and read the benchmark artifacts.
//!
//! The crate is `unsafe`-free except for the single lifetime-erasure the
//! worker pool needs to run borrowed chunk closures on persistent threads;
//! it is confined to [`pool`] and documented there.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod device;
mod hash;
pub mod kernels;
mod parallel;
pub mod pool;

pub use arena::{Arena, ArenaStats};
pub use device::{
    Device, DeviceConfig, DeviceError, DeviceStats, KernelKind, KernelTime, TransferDirection,
};
pub use hash::{HashIndex, ProbePartition};
pub use parallel::par_map_into;

/// A column of a device-resident table: a flat vector of 64-bit words.
///
/// Logical types (unsigned, signed, float, symbol) are tracked by the layers
/// above; the device only sees raw words, which keeps every kernel a simple
/// bulk memory operation — exactly the property APM is designed to guarantee.
pub type Column = Vec<u64>;

/// A set of equally sized columns forming a table (without its tag column).
pub type Columns = Vec<Column>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_is_plain_vector() {
        let c: Column = vec![1, 2, 3];
        assert_eq!(c.len(), 3);
    }
}
