//! Minimal data-parallel helpers used by the kernel library.
//!
//! Kernels in this crate are written as bulk per-row operations. When the
//! input is large enough and the device is configured with more than one
//! worker, the work is split into disjoint index ranges that are processed by
//! scoped threads; otherwise the work runs sequentially on the calling
//! thread. Every helper here guarantees that the observable result is
//! *independent of the chunking*: chunk boundaries only decide which thread
//! computes an element, never what the element is.

use crate::Device;
use std::ops::Range;

/// The chunking a kernel launch uses: `0..len` split into at most
/// [`Device::parallelism`] disjoint ranges, or a single range when the input
/// is below [`Device::min_parallel_rows`] (or the device is sequential).
pub(crate) fn chunks_for(device: &Device, len: usize) -> Vec<Range<usize>> {
    let workers = device.parallelism();
    if workers <= 1 || len < device.min_parallel_rows() {
        // One chunk covering everything (a Vec *of* one range, not the
        // range's elements — hence no vec![] literal).
        return std::iter::once(0..len).collect();
    }
    let chunk = len.div_ceil(workers);
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Runs `f(chunk_index, range, state)` for every chunk, in parallel when
/// there is more than one, collecting the return values in chunk order.
/// `states` carries per-chunk resources (typically disjoint `&mut` views of
/// an output buffer) into the workers.
pub(crate) fn run_chunks<S, R, F>(ranges: &[Range<usize>], states: Vec<S>, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, Range<usize>, S) -> R + Sync,
{
    debug_assert_eq!(ranges.len(), states.len());
    if ranges.len() <= 1 {
        return states
            .into_iter()
            .enumerate()
            .map(|(c, state)| f(c, ranges[c].clone(), state))
            .collect();
    }
    let mut out = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for (c, state) in states.into_iter().enumerate() {
            let range = ranges[c].clone();
            let f = &f;
            handles.push(scope.spawn(move || f(c, range, state)));
        }
        for handle in handles {
            out.push(handle.join().expect("kernel worker panicked"));
        }
    });
    out
}

/// [`run_chunks`] without per-chunk state.
pub(crate) fn map_chunks<R, F>(ranges: &[Range<usize>], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    run_chunks(ranges, vec![(); ranges.len()], |c, range, ()| f(c, range))
}

/// Splits `slice` into one sub-slice per entry of `bounds`, where `bounds`
/// holds ascending `[start, end)` pairs covering the slice exactly. The
/// safe-Rust route to handing disjoint output regions to chunk workers.
pub(crate) fn split_by_ranges<'a, T>(
    mut slice: &'a mut [T],
    bounds: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len());
    let mut consumed = 0;
    for range in bounds {
        debug_assert_eq!(range.start, consumed, "bounds must tile the slice");
        let (head, rest) = slice.split_at_mut(range.end - range.start);
        out.push(head);
        slice = rest;
        consumed = range.end;
    }
    debug_assert!(slice.is_empty(), "bounds must cover the slice");
    out
}

/// Fills `out[i] = f(offset + i)` for every element of `out`, splitting the
/// work across the device's workers when profitable.
pub fn par_map_into<T, F>(device: &Device, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = out.len();
    let workers = device.parallelism();
    if workers <= 1 || len < device.min_parallel_rows() {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = c * chunk;
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = f(base + i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig};

    #[test]
    fn par_map_matches_sequential() {
        let seq = Device::sequential();
        let par = Device::new(DeviceConfig {
            parallelism: 8,
            min_parallel_rows: 1,
            ..DeviceConfig::default()
        });
        let n = 10_000;
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        par_map_into(&seq, &mut a, |i| (i * 3 + 1) as u64);
        par_map_into(&par, &mut b, |i| (i * 3 + 1) as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let dev = Device::sequential();
        let mut out: Vec<u64> = Vec::new();
        par_map_into(&dev, &mut out, |i| i as u64);
        assert!(out.is_empty());
        let collected = map_chunks(&chunks_for(&dev, 0), |_, r| {
            r.map(|i| i as u64).collect::<Vec<_>>()
        });
        assert_eq!(collected.len(), 1);
        assert!(collected[0].is_empty());
    }

    #[test]
    fn chunks_tile_the_input() {
        let par = Device::new(DeviceConfig {
            parallelism: 3,
            min_parallel_rows: 1,
            ..DeviceConfig::default()
        });
        let ranges = chunks_for(&par, 10);
        assert_eq!(ranges.first().map(|r| r.start), Some(0));
        assert_eq!(ranges.last().map(|r| r.end), Some(10));
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn split_by_ranges_covers_disjointly() {
        let mut data = vec![0u64; 10];
        let bounds = vec![0..3, 3..3, 3..10];
        let slices = split_by_ranges(&mut data, &bounds);
        assert_eq!(
            slices.iter().map(|s| s.len()).collect::<Vec<_>>(),
            [3, 0, 7]
        );
    }

    #[test]
    fn run_chunks_threads_state_in_order() {
        let ranges = vec![0..2, 2..5, 5..6];
        let out = run_chunks(&ranges, vec![10usize, 20, 30], |c, range, s| {
            s + range.len() + c
        });
        assert_eq!(out, vec![12, 24, 33]);
    }
}
