//! Minimal data-parallel helpers used by the kernel library.
//!
//! Kernels in this crate are written as bulk per-row operations. When the
//! input is large enough and the device is configured with more than one
//! worker, the work is split into disjoint index ranges that are executed on
//! the device's persistent worker pool ([`crate::pool`] — long-lived threads
//! spawned at [`Device`] construction, never per launch); otherwise the work
//! runs sequentially on the calling thread. Every helper here guarantees
//! that the observable result is *independent of the chunking and of which
//! pool thread runs a chunk*: chunk boundaries only decide which thread
//! computes an element, never what the element is, and results are
//! reassembled strictly in chunk-index order.
//!
//! All helpers also feed chunk-execution time into the device's busy-time
//! counter ([`crate::DeviceStats::kernel_time`]), attributed to the active
//! launch on the calling thread.

use crate::Device;
use std::ops::Range;
use std::sync::Mutex;
use std::time::Instant;

/// The chunking a kernel launch uses: `0..len` split into at most
/// [`Device::parallelism`] disjoint ranges, or a single range when the input
/// is below [`Device::min_parallel_rows`] (or the device is sequential).
pub(crate) fn chunks_for(device: &Device, len: usize) -> Vec<Range<usize>> {
    let workers = device.parallelism();
    if workers <= 1 || len < device.min_parallel_rows() {
        // One chunk covering everything (a Vec *of* one range, not the
        // range's elements — hence no vec![] literal).
        return std::iter::once(0..len).collect();
    }
    let chunk = len.div_ceil(workers);
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Runs `f(chunk_index, range, state)` for every chunk — on `device`'s
/// worker pool when there is more than one chunk — collecting the return
/// values in chunk order. `states` carries per-chunk resources (typically
/// disjoint `&mut` views of an output buffer) into the workers. Chunk
/// execution time is recorded as device busy time.
pub(crate) fn run_chunks<S, R, F>(
    device: &Device,
    ranges: &[Range<usize>],
    states: Vec<S>,
    f: F,
) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, Range<usize>, S) -> R + Sync,
{
    debug_assert_eq!(ranges.len(), states.len());
    if ranges.len() <= 1 {
        let start = Instant::now();
        let out = states
            .into_iter()
            .enumerate()
            .map(|(c, state)| f(c, ranges[c].clone(), state))
            .collect();
        device.record_busy(start.elapsed());
        return out;
    }
    // Per-chunk cells hand each state to exactly one worker and collect each
    // result under its chunk index, so the output order is deterministic no
    // matter which pool thread ran which chunk.
    let states: Vec<Mutex<Option<S>>> = states.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let results: Vec<Mutex<Option<R>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
    let busy = device.pool().run(ranges.len(), &|c| {
        let state = states[c]
            .lock()
            .expect("chunk state poisoned")
            .take()
            .expect("chunk claimed once");
        let result = f(c, ranges[c].clone(), state);
        *results[c].lock().expect("chunk result poisoned") = Some(result);
    });
    device.record_busy(busy);
    results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("chunk result poisoned")
                .expect("chunk completed")
        })
        .collect()
}

/// [`run_chunks`] without per-chunk state.
pub(crate) fn map_chunks<R, F>(device: &Device, ranges: &[Range<usize>], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    run_chunks(device, ranges, vec![(); ranges.len()], |c, range, ()| {
        f(c, range)
    })
}

/// Splits `slice` into one sub-slice per entry of `bounds`, where `bounds`
/// holds ascending `[start, end)` pairs covering the slice exactly. The
/// safe-Rust route to handing disjoint output regions to chunk workers.
pub(crate) fn split_by_ranges<'a, T>(
    mut slice: &'a mut [T],
    bounds: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(bounds.len());
    let mut consumed = 0;
    for range in bounds {
        debug_assert_eq!(range.start, consumed, "bounds must tile the slice");
        let (head, rest) = slice.split_at_mut(range.end - range.start);
        out.push(head);
        slice = rest;
        consumed = range.end;
    }
    debug_assert!(slice.is_empty(), "bounds must cover the slice");
    out
}

/// Fills `out[i] = f(offset + i)` for every element of `out`, splitting the
/// work across the device's worker pool when profitable.
pub fn par_map_into<T, F>(device: &Device, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let ranges = chunks_for(device, out.len());
    let slices = split_by_ranges(out, &ranges);
    run_chunks(device, &ranges, slices, |_, range, slice| {
        for (slot, i) in slice.iter_mut().zip(range) {
            *slot = f(i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig};

    fn par_device(parallelism: usize) -> Device {
        Device::new(DeviceConfig {
            parallelism,
            min_parallel_rows: 1,
            ..DeviceConfig::default()
        })
    }

    #[test]
    fn par_map_matches_sequential() {
        let seq = Device::sequential();
        let par = par_device(8);
        let n = 10_000;
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        par_map_into(&seq, &mut a, |i| (i * 3 + 1) as u64);
        par_map_into(&par, &mut b, |i| (i * 3 + 1) as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_fine() {
        let dev = Device::sequential();
        let mut out: Vec<u64> = Vec::new();
        par_map_into(&dev, &mut out, |i| i as u64);
        assert!(out.is_empty());
        let collected = map_chunks(&dev, &chunks_for(&dev, 0), |_, r| {
            r.map(|i| i as u64).collect::<Vec<_>>()
        });
        assert_eq!(collected.len(), 1);
        assert!(collected[0].is_empty());
    }

    #[test]
    fn chunks_tile_the_input() {
        let par = par_device(3);
        let ranges = chunks_for(&par, 10);
        assert_eq!(ranges.first().map(|r| r.start), Some(0));
        assert_eq!(ranges.last().map(|r| r.end), Some(10));
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn split_by_ranges_covers_disjointly() {
        let mut data = vec![0u64; 10];
        let bounds = vec![0..3, 3..3, 3..10];
        let slices = split_by_ranges(&mut data, &bounds);
        assert_eq!(
            slices.iter().map(|s| s.len()).collect::<Vec<_>>(),
            [3, 0, 7]
        );
    }

    #[test]
    fn run_chunks_threads_state_in_order() {
        let par = par_device(4);
        let ranges = vec![0..2, 2..5, 5..6];
        let out = run_chunks(&par, &ranges, vec![10usize, 20, 30], |c, range, s| {
            s + range.len() + c
        });
        assert_eq!(out, vec![12, 24, 33]);
    }

    #[test]
    fn run_chunks_records_busy_time() {
        let par = par_device(3);
        let ranges = chunks_for(&par, 3_000);
        let before = par.stats().kernel_time.total_ns();
        let _sums = map_chunks(&par, &ranges, |_, range| {
            range.map(|i| i as u64).sum::<u64>()
        });
        assert!(par.stats().kernel_time.total_ns() >= before);
    }

    #[test]
    fn more_chunks_than_workers_self_balance() {
        let par = par_device(2);
        let ranges: Vec<Range<usize>> = (0..37).map(|c| c * 10..(c + 1) * 10).collect();
        let out = map_chunks(&par, &ranges, |c, range| (c, range.start));
        for (c, entry) in out.iter().enumerate() {
            assert_eq!(*entry, (c, c * 10));
        }
    }
}
