//! Minimal data-parallel helpers used by the kernel library.
//!
//! Kernels in this crate are written as bulk per-row operations. When the
//! input is large enough and the device is configured with more than one
//! worker, the output buffer is split into disjoint chunks that are filled by
//! scoped threads; otherwise the work runs sequentially. Results are
//! identical either way.

use crate::Device;

/// Fills `out[i] = f(offset + i)` for every element of `out`, splitting the
/// work across the device's workers when profitable.
pub fn par_map_into<T, F>(device: &Device, out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = out.len();
    let workers = device.parallelism();
    if workers <= 1 || len < device.min_parallel_rows() {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = c * chunk;
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = f(base + i);
                }
            });
        }
    });
}

/// Runs `f` over every index in `0..len`, collecting the per-chunk results in
/// index order. Used by kernels whose per-row output size is not known ahead
/// of time (e.g. filtering projections).
pub fn par_collect_chunks<T, F>(device: &Device, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let workers = device.parallelism();
    if workers <= 1 || len < device.min_parallel_rows() {
        return f(0..len);
    }
    let chunk = len.div_ceil(workers);
    let mut pieces: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            let f = &f;
            handles.push(scope.spawn(move || f(start..end)));
            start = end;
        }
        for handle in handles {
            pieces.push(handle.join().expect("kernel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
    for piece in pieces {
        out.extend(piece);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, DeviceConfig};

    #[test]
    fn par_map_matches_sequential() {
        let seq = Device::sequential();
        let par = Device::new(DeviceConfig {
            parallelism: 8,
            min_parallel_rows: 1,
            ..DeviceConfig::default()
        });
        let n = 10_000;
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        par_map_into(&seq, &mut a, |i| (i * 3 + 1) as u64);
        par_map_into(&par, &mut b, |i| (i * 3 + 1) as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn par_collect_preserves_order() {
        let par = Device::new(DeviceConfig {
            parallelism: 4,
            min_parallel_rows: 1,
            ..DeviceConfig::default()
        });
        let out = par_collect_chunks(&par, 1000, |range| range.map(|i| i as u64).collect());
        assert_eq!(out, (0..1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let dev = Device::sequential();
        let mut out: Vec<u64> = Vec::new();
        par_map_into(&dev, &mut out, |i| i as u64);
        assert!(out.is_empty());
        let collected = par_collect_chunks(&dev, 0, |r| r.map(|i| i as u64).collect());
        assert!(collected.is_empty());
    }
}
