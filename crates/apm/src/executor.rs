//! The APM executor: Algorithm 1 of the paper.
//!
//! An APM program is executed once per fix-point iteration against the
//! stable / recent / delta partitions of the database. The executor owns the
//! optimization machinery of Section 4:
//!
//! * **static registers** — hash indices over iteration-invariant build sides
//!   are built once and reused across iterations;
//! * **buffer reuse** — iteration-invariant device buffers (the loaded "all"
//!   partitions of relations not updated by the stratum) are cached instead
//!   of being reallocated each iteration, and *every* per-iteration column —
//!   kernel outputs, loads, staged stores — is routed through the device
//!   [`Arena`](lobster_gpu::Arena): registers that die at the end of an
//!   iteration are swept back into the pool, so a steady-state iteration
//!   performs zero fresh column allocations (Section 4.1; disabling the
//!   `buffer_reuse` option restores the unoptimized Figure 10 behaviour);
//! * a configurable device memory budget and wall-clock timeout, used to
//!   reproduce the OOM and timeout entries of the paper's evaluation.

use crate::compiler::{compile_stratum_with_options, CompiledStratum};
use crate::config::RuntimeOptions;
use crate::database::{Database, SortedTable};
use crate::isa::{DbPart, Instr, RegId};
use lobster_gpu::kernels::PackLane;
use lobster_gpu::{kernels, Column, Device, DeviceError, HashIndex, ProbePartition};
use lobster_provenance::Provenance;
use lobster_ram::RamProgram;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A relation loaded into columnar form: one device column per attribute
/// plus the tag of every row.
type LoadedTable<T> = (Vec<Arc<Column>>, Arc<Vec<T>>);

/// Arena allocation sites for executor-side columns (the kernels' own sites
/// live in [`lobster_gpu::kernels::sites`]).
mod exec_sites {
    /// Per-iteration copies made by `load`.
    pub const LOAD: usize = 100;
    /// Register snapshots staged by `store`.
    pub const STORE: usize = 101;
    /// Cartesian-product outputs.
    pub const PRODUCT: usize = 102;
    /// Table-append outputs.
    pub const APPEND: usize = 103;
    /// Staged-fact concatenation in the update phase.
    pub const STAGED: usize = 104;
}

/// Cached "all" loads of relations not updated by the running stratum.
type LoadCache<T> = HashMap<String, LoadedTable<T>>;

/// Statistics describing one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionStats {
    /// Fix-point iterations executed (summed over strata).
    pub iterations: usize,
    /// New facts derived.
    pub facts_produced: usize,
    /// Kernel launches on the device.
    pub kernel_launches: usize,
    /// Wall-clock time spent in symbolic execution.
    pub elapsed: Duration,
    /// Number of strata executed.
    pub strata: usize,
}

impl ExecutionStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.iterations += other.iterations;
        self.facts_produced += other.facts_produced;
        self.kernel_launches += other.kernel_launches;
        self.elapsed += other.elapsed;
        self.strata += other.strata;
    }
}

/// Errors produced while executing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The simulated device ran out of memory.
    Device(DeviceError),
    /// The configured timeout was exceeded.
    Timeout {
        /// Time spent before giving up.
        elapsed: Duration,
    },
    /// The per-stratum iteration cap was exceeded (non-terminating program).
    IterationLimit {
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Device(e) => write!(f, "device error: {e}"),
            ExecError::Timeout { elapsed } => write!(f, "timed out after {elapsed:?}"),
            ExecError::IterationLimit { limit } => {
                write!(f, "exceeded the iteration limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<DeviceError> for ExecError {
    fn from(e: DeviceError) -> Self {
        ExecError::Device(e)
    }
}

/// A register value during execution.
#[derive(Debug, Clone)]
enum RegValue<P: Provenance> {
    Data(Arc<Column>),
    Tags(Arc<Vec<P::Tag>>),
    Index(Arc<HashIndex>),
}

/// The APM executor.
#[derive(Debug, Clone)]
pub struct Executor<P: Provenance> {
    device: Device,
    options: RuntimeOptions,
    provenance: P,
}

impl<P: Provenance> Executor<P> {
    /// Creates an executor over a device with the given options. The
    /// device's arena pool follows the executor's `buffer_reuse` option (the
    /// Figure 10 ablation toggle).
    pub fn new(device: Device, provenance: P, options: RuntimeOptions) -> Self {
        device.arena().set_reuse(options.buffer_reuse);
        Executor {
            device,
            options,
            provenance,
        }
    }

    /// The device this executor runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The runtime options in effect.
    pub fn options(&self) -> &RuntimeOptions {
        &self.options
    }

    /// Compiles and runs every stratum of a RAM program against the database.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on device OOM, timeout, or a hit iteration
    /// cap.
    pub fn run_program(
        &self,
        db: &mut Database<P>,
        ram: &RamProgram,
    ) -> Result<ExecutionStats, ExecError> {
        let mut total = ExecutionStats::default();
        let start = Instant::now();
        let pruned;
        let ram = if self.options.eliminate_dead_rules {
            pruned = lobster_ram::passes::eliminate_dead_rules(ram);
            &pruned
        } else {
            ram
        };
        for stratum in &ram.strata {
            let compiled = compile_stratum_with_options(stratum, ram, &self.options);
            let stats = self.run_stratum_with_deadline(db, &compiled, start)?;
            total.merge(&stats);
        }
        Ok(total)
    }

    /// Runs one compiled stratum to its fix point.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on device OOM, timeout, or a hit iteration
    /// cap.
    pub fn run_stratum(
        &self,
        db: &mut Database<P>,
        compiled: &CompiledStratum,
    ) -> Result<ExecutionStats, ExecError> {
        self.run_stratum_inner(db, compiled, Instant::now(), true)
    }

    /// Runs one compiled stratum *without* the semi-naive preamble: the
    /// caller has already arranged every relation's stable/recent split —
    /// typically `stable` holding the materialized fix point and `recent`
    /// seeded with newly inserted rows (see
    /// [`compile_stratum_delta`](crate::compile_stratum_delta)). The
    /// iteration loop, update phase, and arena recycling are identical to
    /// [`Executor::run_stratum`].
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on device OOM, timeout, or a hit iteration
    /// cap.
    pub fn run_stratum_seeded(
        &self,
        db: &mut Database<P>,
        compiled: &CompiledStratum,
    ) -> Result<ExecutionStats, ExecError> {
        self.run_stratum_inner(db, compiled, Instant::now(), false)
    }

    fn run_stratum_with_deadline(
        &self,
        db: &mut Database<P>,
        compiled: &CompiledStratum,
        start: Instant,
    ) -> Result<ExecutionStats, ExecError> {
        self.run_stratum_inner(db, compiled, start, true)
    }

    fn run_stratum_inner(
        &self,
        db: &mut Database<P>,
        compiled: &CompiledStratum,
        start: Instant,
        preamble: bool,
    ) -> Result<ExecutionStats, ExecError> {
        let kernels_before = self.device.stats().kernel_launches;
        let mut stats = ExecutionStats {
            strata: 1,
            ..ExecutionStats::default()
        };

        // Algorithm 1: stable ← ∅, recent ← F_T for the stratum's relations.
        // A seeded run skips the merge — the caller's split *is* the initial
        // frontier — but staged chunks are still cleared defensively.
        for rel in &compiled.relations {
            let data = db.relation_data_mut(rel);
            if preamble {
                let arity = data.stable.arity();
                let stable = std::mem::replace(&mut data.stable, SortedTable::empty(arity));
                let recent = std::mem::replace(&mut data.recent, SortedTable::empty(arity));
                data.recent = SortedTable::merge_disjoint_owned(&self.device, stable, recent);
            }
            data.staged.clear();
        }

        // Dictionary-encoded databases execute in *local* symbol space:
        // loads unpack to local ranks, so the program's symbol constants
        // (global interner ids) must be rewritten to ranks too. Extend the
        // dictionary first — a constant no fact mentions still needs a rank
        // (extension re-encodes stored tables, which is why it happens once,
        // up front, never mid-stratum).
        let consts: Option<Vec<u32>> = db.codec().and_then(|_| {
            let mut consts: Vec<u32> = Vec::new();
            for instr in &compiled.program.instructions {
                if let Instr::Eval { projection, .. } = instr {
                    projection.symbol_consts(&mut consts);
                }
            }
            if consts.is_empty() {
                return None;
            }
            Some(consts)
        });
        let rewritten: Option<CompiledStratum> = consts.map(|consts| {
            db.ensure_symbols(&self.device, consts);
            let codec = db.codec().expect("codec present");
            let mut owned = compiled.clone();
            for instr in &mut owned.program.instructions {
                if let Instr::Eval { projection, .. } = instr {
                    if projection.has_symbol_consts() {
                        *projection = projection.map_symbol_consts(&|g| codec.local_const(g));
                    }
                }
            }
            owned
        });
        let compiled = rewritten.as_ref().unwrap_or(compiled);
        // Pack lanes of the stratum's own relations (`None` = identity
        // layout or full-width database), resolved after any dictionary
        // extension so widths are final for the whole stratum.
        let stratum_lanes: Vec<Option<Vec<Vec<PackLane>>>> = compiled
            .relations
            .iter()
            .map(|rel| db.codec().and_then(|c| c.lanes(rel).cloned()))
            .collect();

        // Registers that survive across iterations.
        let mut static_file: HashMap<RegId, RegValue<P>> = HashMap::new();
        // Cached "all" loads of relations not updated by this stratum (the
        // buffer-reuse optimization: these buffers are identical every
        // iteration).
        let mut load_cache: LoadCache<P::Tag> = HashMap::new();

        let mut iteration = 0usize;
        loop {
            if iteration >= self.options.max_iterations {
                return Err(ExecError::IterationLimit {
                    limit: self.options.max_iterations,
                });
            }
            if let Some(timeout) = self.options.timeout_ms {
                if start.elapsed() > Duration::from_millis(timeout) {
                    return Err(ExecError::Timeout {
                        elapsed: start.elapsed(),
                    });
                }
            }

            self.execute_iteration(db, compiled, iteration, &mut static_file, &mut load_cache)?;

            // Update phase: fold staged facts into the partitions. Consumed
            // tables (the previous stable set, the folded frontier, the
            // candidate) are recycled into the arena, which is what keeps
            // the next iteration allocation-free.
            let mut changed = false;
            for (rel, lanes) in compiled.relations.iter().zip(&stratum_lanes) {
                let prov = self.provenance.clone();
                let data = db.relation_data_mut(rel);
                let staged = std::mem::take(&mut data.staged);
                let candidate = Self::collect_staged(
                    &self.device,
                    &prov,
                    staged,
                    data.recent.arity(),
                    lanes.as_deref(),
                );
                let arity = data.recent.arity();
                // Fold the previous frontier into the stable set. When the
                // frontier is empty the stable set is unchanged, so the merge
                // (and its copy) is skipped entirely.
                let recent = std::mem::replace(&mut data.recent, SortedTable::empty(arity));
                let stable = std::mem::replace(&mut data.stable, SortedTable::empty(arity));
                let new_stable = SortedTable::merge_disjoint_owned(&self.device, stable, recent);
                let delta = new_stable.difference_from_owned(&self.device, candidate);
                stats.facts_produced += delta.len();
                if !delta.is_empty() {
                    changed = true;
                }
                data.stable = new_stable;
                data.recent = delta;
            }

            // Device memory budget check (reproduces OOM behaviour).
            if let Some(limit) = self.device.config().memory_limit {
                let used = db.size_bytes();
                if used > limit {
                    return Err(ExecError::Device(DeviceError::OutOfMemory {
                        requested: used,
                        live: used,
                        limit,
                    }));
                }
            }

            iteration += 1;
            stats.iterations += 1;
            if !changed || !compiled.recursive {
                break;
            }
        }

        // The stratum is done: cached loads and static registers die here,
        // so their buffers go back to the arena for the next stratum (or the
        // next run on this device).
        let arena = self.device.arena();
        for (_, (cols, _)) in load_cache {
            for col in cols {
                if let Some(col) = Arc::into_inner(col) {
                    if col.capacity() > 0 {
                        arena.recycle_shared(col);
                    }
                }
            }
        }
        Self::recycle_registers(&self.device, static_file.into_values().map(Some).collect());

        stats.kernel_launches = self.device.stats().kernel_launches - kernels_before;
        stats.elapsed = start.elapsed();
        Ok(stats)
    }

    /// Turns the staged (columns, tags) chunks produced by `store` into one
    /// sorted, deduplicated candidate table. The staged chunk buffers are
    /// recycled into the arena once concatenated.
    ///
    /// When `lanes` is given the relation is stored packed: the logical
    /// columns are fused into group words *before* sorting, so the radix
    /// sort, dedup, merge, and difference downstream all run over
    /// `packed_arity` columns instead of the logical arity — the bandwidth
    /// win of the encoded layout. `storage_arity` is the stored column count
    /// (`packed_arity` when packed, logical arity otherwise).
    fn collect_staged(
        device: &Device,
        prov: &P,
        staged: Vec<(Vec<Column>, Vec<P::Tag>)>,
        storage_arity: usize,
        lanes: Option<&[Vec<PackLane>]>,
    ) -> SortedTable<P> {
        if staged.is_empty() {
            return SortedTable::empty(storage_arity);
        }
        let arena = device.arena();
        let logical_arity = staged[0].0.len();
        let rows: usize = staged.iter().map(|(_, t)| t.len()).sum();
        let mut columns: Vec<Column> = (0..logical_arity)
            .map(|_| arena.alloc_empty(exec_sites::STAGED, rows))
            .collect();
        let mut tags: Vec<P::Tag> = Vec::with_capacity(rows);
        for (cols, t) in staged {
            for (dst, src) in columns.iter_mut().zip(&cols) {
                dst.extend_from_slice(src);
            }
            for col in cols {
                if col.capacity() > 0 {
                    arena.recycle_shared(col);
                }
            }
            tags.extend(t);
        }
        let columns = match lanes {
            Some(lanes) => {
                let refs: Vec<&[u64]> = columns.iter().map(|c| c.as_slice()).collect();
                let packed = kernels::pack_columns(device, &refs, lanes);
                drop(refs);
                for col in columns {
                    if col.capacity() > 0 {
                        arena.recycle_shared(col);
                    }
                }
                packed
            }
            None => columns,
        };
        SortedTable::from_unsorted(device, prov, columns, tags)
    }

    #[allow(clippy::too_many_lines)]
    fn execute_iteration(
        &self,
        db: &mut Database<P>,
        compiled: &CompiledStratum,
        iteration: usize,
        static_file: &mut HashMap<RegId, RegValue<P>>,
        load_cache: &mut LoadCache<P::Tag>,
    ) -> Result<(), ExecError> {
        let program = &compiled.program;
        let mut regs: Vec<Option<RegValue<P>>> = vec![None; program.register_count as usize];
        // Count radix-groups the probe side of a partitioned hash join; the
        // compiler always emits Count → Scan → Join over the same (index,
        // probe) pair, so the grouping is memoized here and reused by the
        // matching Join instead of being recomputed.
        let mut probe_memo: Option<(RegId, Vec<RegId>, ProbePartition)> = None;

        let set = |regs: &mut Vec<Option<RegValue<P>>>, reg: RegId, value: RegValue<P>| {
            regs[reg.0 as usize] = Some(value);
        };
        fn get<'a, P: Provenance>(
            regs: &'a [Option<RegValue<P>>],
            static_file: &'a HashMap<RegId, RegValue<P>>,
            reg: RegId,
        ) -> &'a RegValue<P> {
            regs[reg.0 as usize]
                .as_ref()
                .or_else(|| static_file.get(&reg))
                .expect("register read before write")
        }
        macro_rules! data {
            ($reg:expr) => {
                match get(&regs, static_file, $reg) {
                    RegValue::Data(c) => c.clone(),
                    other => panic!("expected data register, found {other:?}"),
                }
            };
        }
        macro_rules! tags {
            ($reg:expr) => {
                match get(&regs, static_file, $reg) {
                    RegValue::Tags(t) => t.clone(),
                    other => panic!("expected tag register, found {other:?}"),
                }
            };
        }
        macro_rules! index {
            ($reg:expr) => {
                match get(&regs, static_file, $reg) {
                    RegValue::Index(h) => h.clone(),
                    other => panic!("expected index register, found {other:?}"),
                }
            };
        }

        for (pc, instr) in program.instructions.iter().enumerate() {
            if iteration > 0
                && program
                    .first_iteration_only
                    .get(pc)
                    .copied()
                    .unwrap_or(false)
            {
                continue;
            }
            match instr {
                Instr::Load {
                    relation,
                    part,
                    columns,
                    tags,
                } => {
                    let is_own = compiled.relations.contains(relation);
                    let cacheable = self.options.buffer_reuse && !is_own && *part == DbPart::All;
                    if cacheable {
                        if let Some((cols, t)) = load_cache.get(relation) {
                            for (reg, col) in columns.iter().zip(cols) {
                                set(&mut regs, *reg, RegValue::Data(col.clone()));
                            }
                            set(&mut regs, *tags, RegValue::Tags(t.clone()));
                            continue;
                        }
                    }
                    let arena = self.device.arena();
                    // Packed relations are unpacked into wide registers here
                    // (values stay in *local* symbol space); full-width
                    // relations and identity layouts copy straight through.
                    let lanes = db.codec().and_then(|c| c.lanes(relation));
                    let unpack = |packed: &[Column]| -> Vec<Arc<Column>> {
                        let lanes = lanes.expect("lanes present");
                        let refs: Vec<&[u64]> = packed.iter().map(|c| c.as_slice()).collect();
                        kernels::unpack_columns(&self.device, &refs, lanes, columns.len())
                            .into_iter()
                            .map(Arc::new)
                            .collect()
                    };
                    let data = db.relation_data(relation);
                    let (cols, tag_vec): (Vec<Arc<Column>>, Arc<Vec<P::Tag>>) = match part {
                        DbPart::Stable => (
                            if lanes.is_some() {
                                unpack(&data.stable.columns)
                            } else {
                                data.stable
                                    .columns
                                    .iter()
                                    .map(|c| Arc::new(arena.alloc_copy(exec_sites::LOAD, c)))
                                    .collect()
                            },
                            Arc::new(data.stable.tags.clone()),
                        ),
                        DbPart::Recent => (
                            if lanes.is_some() {
                                unpack(&data.recent.columns)
                            } else {
                                data.recent
                                    .columns
                                    .iter()
                                    .map(|c| Arc::new(arena.alloc_copy(exec_sites::LOAD, c)))
                                    .collect()
                            },
                            Arc::new(data.recent.tags.clone()),
                        ),
                        DbPart::All => {
                            // Concatenate the (narrow) stored columns first,
                            // then unpack once — moving packed bytes is
                            // cheaper than moving unpacked ones.
                            let mut merged_cols = Vec::with_capacity(data.stable.columns.len());
                            for (s, r) in data.stable.columns.iter().zip(&data.recent.columns) {
                                let mut merged =
                                    arena.alloc_empty(exec_sites::LOAD, s.len() + r.len());
                                merged.extend_from_slice(s);
                                merged.extend_from_slice(r);
                                merged_cols.push(merged);
                            }
                            let cols = if lanes.is_some() {
                                let wide = unpack(&merged_cols);
                                for col in merged_cols {
                                    if col.capacity() > 0 {
                                        arena.recycle_shared(col);
                                    }
                                }
                                wide
                            } else {
                                merged_cols.into_iter().map(Arc::new).collect()
                            };
                            let mut t = data.stable.tags.clone();
                            t.extend(data.recent.tags.iter().cloned());
                            (cols, Arc::new(t))
                        }
                    };
                    self.device.record_kernel();
                    for (reg, col) in columns.iter().zip(&cols) {
                        set(&mut regs, *reg, RegValue::Data(col.clone()));
                    }
                    set(&mut regs, *tags, RegValue::Tags(tag_vec.clone()));
                    if cacheable {
                        load_cache.insert(relation.clone(), (cols, tag_vec));
                    }
                }
                Instr::Store {
                    relation,
                    columns,
                    tags,
                } => {
                    let arena = self.device.arena();
                    let tag_vec: Vec<P::Tag> = (*tags!(*tags)).clone();
                    // Rows whose tag collapsed to an unacceptable value
                    // (e.g. a conflicting proof) are dropped while copying.
                    let keep: Vec<usize> = tag_vec
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| self.provenance.accept(t))
                        .map(|(i, _)| i)
                        .collect();
                    let (cols, tag_vec) = if keep.len() == tag_vec.len() {
                        let cols: Vec<Column> = columns
                            .iter()
                            .map(|r| arena.alloc_copy(exec_sites::STORE, &data!(*r)))
                            .collect();
                        (cols, tag_vec)
                    } else {
                        let filtered_cols = columns
                            .iter()
                            .map(|r| {
                                let src = data!(*r);
                                let mut out = arena.alloc_empty(exec_sites::STORE, keep.len());
                                out.extend(keep.iter().map(|&i| src[i]));
                                out
                            })
                            .collect();
                        let filtered_tags = keep.iter().map(|&i| tag_vec[i].clone()).collect();
                        (filtered_cols, filtered_tags)
                    };
                    db.relation_data_mut(relation).staged.push((cols, tag_vec));
                }
                Instr::Eval {
                    inputs,
                    input_tags,
                    projection,
                    outputs,
                    output_tags,
                } => {
                    let in_cols: Vec<Arc<Column>> = inputs.iter().map(|r| data!(*r)).collect();
                    let in_tags = tags!(*input_tags);
                    let rows = in_tags.len();
                    if let Some(perm) = projection.permutation.as_ref() {
                        // Columnar-copy fast path (Section 5.2).
                        self.device.record_kernel();
                        for (out, src) in outputs.iter().zip(perm) {
                            set(&mut regs, *out, RegValue::Data(in_cols[*src].clone()));
                        }
                        set(&mut regs, *output_tags, RegValue::Tags(in_tags.clone()));
                    } else {
                        // Chunk-level evaluation: the input-row buffer, the
                        // output-row buffer, and the expression stack are
                        // hoisted out of the row loop, so evaluating a row
                        // allocates nothing.
                        let out_arity = projection.output_arity();
                        let (out_cols, sources) =
                            kernels::eval(&self.device, rows, out_arity, |range, sink| {
                                let mut row = vec![0u64; in_cols.len()];
                                let mut out = vec![0u64; out_arity];
                                let mut stack: Vec<u64> = Vec::with_capacity(8);
                                for i in range {
                                    for (slot, col) in row.iter_mut().zip(&in_cols) {
                                        *slot = col[i];
                                    }
                                    if projection.eval_into(&row, &mut out, &mut stack) {
                                        sink.emit(i, &out);
                                    }
                                }
                            });
                        let out_tag_vec = kernels::gather_tags(&self.device, &sources, &in_tags);
                        for (out, col) in outputs.iter().zip(out_cols) {
                            set(&mut regs, *out, RegValue::Data(Arc::new(col)));
                        }
                        set(
                            &mut regs,
                            *output_tags,
                            RegValue::Tags(Arc::new(out_tag_vec)),
                        );
                    }
                }
                Instr::Build {
                    keys,
                    index,
                    static_,
                } => {
                    let use_static = *static_ && self.options.static_registers;
                    if use_static && static_file.contains_key(index) {
                        continue;
                    }
                    let key_cols: Vec<Arc<Column>> = keys.iter().map(|r| data!(*r)).collect();
                    let key_refs: Vec<&[u64]> = key_cols.iter().map(|c| c.as_slice()).collect();
                    let built = HashIndex::build(
                        &self.device,
                        &key_refs,
                        self.device.config().hash_table_expansion,
                    );
                    self.device.try_alloc(built.size_bytes())?;
                    self.device.free(built.size_bytes());
                    let value = RegValue::Index(Arc::new(built));
                    if use_static {
                        static_file.insert(*index, value);
                    } else {
                        set(&mut regs, *index, value);
                    }
                }
                Instr::Count {
                    index,
                    probe_keys,
                    counts,
                } => {
                    let idx = index!(*index);
                    let probe_cols: Vec<Arc<Column>> =
                        probe_keys.iter().map(|r| data!(*r)).collect();
                    let probe_refs: Vec<&[u64]> = probe_cols.iter().map(|c| c.as_slice()).collect();
                    let part = ProbePartition::build(&self.device, &idx, &probe_refs);
                    let result =
                        kernels::count_matches_with(&self.device, &idx, &probe_refs, part.as_ref());
                    if let Some(part) = part {
                        if let Some((_, _, old)) =
                            probe_memo.replace((*index, probe_keys.clone(), part))
                        {
                            old.recycle(&self.device);
                        }
                    }
                    set(&mut regs, *counts, RegValue::Data(Arc::new(result)));
                }
                Instr::Scan { counts, offsets } => {
                    let input = data!(*counts);
                    let (result, _total) = kernels::scan(&self.device, &input);
                    set(&mut regs, *offsets, RegValue::Data(Arc::new(result)));
                }
                Instr::Join {
                    index,
                    probe_keys,
                    counts,
                    offsets,
                    build_indices,
                    probe_indices,
                } => {
                    let idx = index!(*index);
                    let probe_cols: Vec<Arc<Column>> =
                        probe_keys.iter().map(|r| data!(*r)).collect();
                    let probe_refs: Vec<&[u64]> = probe_cols.iter().map(|c| c.as_slice()).collect();
                    let count_vec = data!(*counts);
                    let offset_vec = data!(*offsets);
                    let total: u64 = count_vec.iter().sum();
                    let part = match &probe_memo {
                        Some((ir, pr, _)) if ir == index && pr == probe_keys => {
                            probe_memo.take().map(|(_, _, p)| p)
                        }
                        _ => None,
                    };
                    let (bi, pi) = kernels::hash_join_with(
                        &self.device,
                        &idx,
                        &probe_refs,
                        part.as_ref(),
                        &count_vec,
                        &offset_vec,
                        total,
                    );
                    if let Some(part) = part {
                        part.recycle(&self.device);
                    }
                    set(&mut regs, *build_indices, RegValue::Data(Arc::new(bi)));
                    set(&mut regs, *probe_indices, RegValue::Data(Arc::new(pi)));
                }
                Instr::MergeCount {
                    build_keys,
                    probe_keys,
                    counts,
                } => {
                    let build_cols: Vec<Arc<Column>> =
                        build_keys.iter().map(|r| data!(*r)).collect();
                    let build_refs: Vec<&[u64]> = build_cols.iter().map(|c| c.as_slice()).collect();
                    let probe_cols: Vec<Arc<Column>> =
                        probe_keys.iter().map(|r| data!(*r)).collect();
                    let probe_refs: Vec<&[u64]> = probe_cols.iter().map(|c| c.as_slice()).collect();
                    let result = kernels::merge_count(&self.device, &build_refs, &probe_refs);
                    set(&mut regs, *counts, RegValue::Data(Arc::new(result)));
                }
                Instr::MergeJoin {
                    build_keys,
                    probe_keys,
                    counts,
                    offsets,
                    build_indices,
                    probe_indices,
                } => {
                    let build_cols: Vec<Arc<Column>> =
                        build_keys.iter().map(|r| data!(*r)).collect();
                    let build_refs: Vec<&[u64]> = build_cols.iter().map(|c| c.as_slice()).collect();
                    let probe_cols: Vec<Arc<Column>> =
                        probe_keys.iter().map(|r| data!(*r)).collect();
                    let probe_refs: Vec<&[u64]> = probe_cols.iter().map(|c| c.as_slice()).collect();
                    let count_vec = data!(*counts);
                    let offset_vec = data!(*offsets);
                    let total: u64 = count_vec.iter().sum();
                    let (bi, pi) = kernels::merge_join(
                        &self.device,
                        &build_refs,
                        &probe_refs,
                        &count_vec,
                        &offset_vec,
                        total,
                    );
                    set(&mut regs, *build_indices, RegValue::Data(Arc::new(bi)));
                    set(&mut regs, *probe_indices, RegValue::Data(Arc::new(pi)));
                }
                Instr::Gather {
                    indices,
                    sources,
                    destinations,
                } => {
                    let idx = data!(*indices);
                    for (src, dst) in sources.iter().zip(destinations) {
                        let source = data!(*src);
                        let gathered = kernels::gather(&self.device, &idx, &source);
                        set(&mut regs, *dst, RegValue::Data(Arc::new(gathered)));
                    }
                }
                Instr::GatherMulTags {
                    left_indices,
                    right_indices,
                    left_tags,
                    right_tags,
                    output,
                } => {
                    let li = data!(*left_indices);
                    let ri = data!(*right_indices);
                    let lt = tags!(*left_tags);
                    let rt = tags!(*right_tags);
                    let prov = self.provenance.clone();
                    let result =
                        kernels::gather_mul_tags(&self.device, &li, &ri, &lt, &rt, |a, b| {
                            prov.mul(a, b)
                        });
                    set(&mut regs, *output, RegValue::Tags(Arc::new(result)));
                }
                Instr::Product {
                    left,
                    left_tags,
                    right,
                    right_tags,
                    outputs,
                    output_tags,
                } => {
                    let l_cols: Vec<Arc<Column>> = left.iter().map(|r| data!(*r)).collect();
                    let r_cols: Vec<Arc<Column>> = right.iter().map(|r| data!(*r)).collect();
                    let lt = tags!(*left_tags);
                    let rt = tags!(*right_tags);
                    self.device.record_kernel();
                    let (n, m) = (lt.len(), rt.len());
                    let arena = self.device.arena();
                    let mut out_cols: Vec<Column> = (0..l_cols.len() + r_cols.len())
                        .map(|_| arena.alloc_empty(exec_sites::PRODUCT, n * m))
                        .collect();
                    let mut out_tags: Vec<P::Tag> = Vec::with_capacity(n * m);
                    for i in 0..n {
                        for j in 0..m {
                            for (c, col) in l_cols.iter().enumerate() {
                                out_cols[c].push(col[i]);
                            }
                            for (c, col) in r_cols.iter().enumerate() {
                                out_cols[l_cols.len() + c].push(col[j]);
                            }
                            out_tags.push(self.provenance.mul(&lt[i], &rt[j]));
                        }
                    }
                    for (reg, col) in outputs.iter().zip(out_cols) {
                        set(&mut regs, *reg, RegValue::Data(Arc::new(col)));
                    }
                    set(&mut regs, *output_tags, RegValue::Tags(Arc::new(out_tags)));
                }
                Instr::Append {
                    inputs,
                    outputs,
                    output_tags,
                } => {
                    let tables: Vec<LoadedTable<P::Tag>> = inputs
                        .iter()
                        .map(|(cols, tags)| {
                            (cols.iter().map(|r| data!(*r)).collect(), tags!(*tags))
                        })
                        .collect();
                    self.device.record_kernel();
                    let arity = outputs.len();
                    let arena = self.device.arena();
                    let rows: usize = tables.iter().map(|(_, t)| t.len()).sum();
                    let mut out_cols: Vec<Column> = (0..arity)
                        .map(|_| arena.alloc_empty(exec_sites::APPEND, rows))
                        .collect();
                    let mut out_tags: Vec<P::Tag> = Vec::with_capacity(rows);
                    for (cols, tags) in &tables {
                        for (c, col) in cols.iter().enumerate() {
                            out_cols[c].extend_from_slice(col);
                        }
                        out_tags.extend(tags.iter().cloned());
                    }
                    for (reg, col) in outputs.iter().zip(out_cols) {
                        set(&mut regs, *reg, RegValue::Data(Arc::new(col)));
                    }
                    set(&mut regs, *output_tags, RegValue::Tags(Arc::new(out_tags)));
                }
            }
        }
        if let Some((_, _, part)) = probe_memo {
            part.recycle(&self.device);
        }
        // Register sweep: every column that dies with this iteration (sole
        // Arc owner — cached loads and static registers keep extra owners
        // and are skipped) goes back to the arena, funding the next
        // iteration's allocations.
        Self::recycle_registers(&self.device, regs);
        Ok(())
    }

    /// Recycles the data columns of dead register values into the arena.
    fn recycle_registers(device: &Device, regs: Vec<Option<RegValue<P>>>) {
        let arena = device.arena();
        for reg in regs.into_iter().flatten() {
            match reg {
                RegValue::Data(col) => {
                    if let Some(col) = Arc::into_inner(col) {
                        if col.capacity() > 0 {
                            arena.recycle_shared(col);
                        }
                    }
                }
                RegValue::Index(index) => {
                    if let Some(index) = Arc::into_inner(index) {
                        index.recycle(device);
                    }
                }
                RegValue::Tags(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_datalog::parse;
    use lobster_gpu::DeviceConfig;
    use lobster_provenance::{AddMultProb, InputFactId, MaxMinProb, Unit};
    use lobster_ram::Value;

    fn run_tc(edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
             query path",
        )
        .unwrap();
        let device = Device::sequential();
        let mut db = Database::new(compiled.ram.schemas.clone(), Unit::new());
        for (a, b) in edges {
            db.insert("edge", &[Value::U32(*a), Value::U32(*b)], ());
        }
        db.seal(&device);
        let exec = Executor::new(device, Unit::new(), RuntimeOptions::default());
        exec.run_program(&mut db, &compiled.ram).unwrap();
        let mut rows: Vec<(u32, u32)> = db
            .rows("path")
            .into_iter()
            .map(|(t, _)| (t[0].as_u32().unwrap(), t[1].as_u32().unwrap()))
            .collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let rows = run_tc(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(rows, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn transitive_closure_of_a_cycle_terminates() {
        let rows = run_tc(&[(0, 1), (1, 2), (2, 0)]);
        // Every ordered pair over {0,1,2} is reachable, including self-loops.
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn probabilities_propagate_along_paths() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
             query path",
        )
        .unwrap();
        let device = Device::sequential();
        let prov = MaxMinProb::new();
        let mut db = Database::new(compiled.ram.schemas.clone(), prov);
        db.insert("edge", &[Value::U32(0), Value::U32(1)], 0.9);
        db.insert("edge", &[Value::U32(1), Value::U32(2)], 0.5);
        db.seal(&device);
        let exec = Executor::new(device, prov, RuntimeOptions::default());
        exec.run_program(&mut db, &compiled.ram).unwrap();
        let rows = db.rows("path");
        let p02 = rows
            .iter()
            .find(|(t, _)| t[0] == Value::U32(0) && t[1] == Value::U32(2))
            .map(|(_, tag)| *tag)
            .unwrap();
        assert!(
            (p02 - 0.5).abs() < 1e-9,
            "max-min path probability should be the weakest edge"
        );
    }

    #[test]
    fn selections_and_nullary_outputs_work() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             type is_endpoint(x: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
             rel connected() = is_endpoint(x), is_endpoint(y), path(x, y), x != y
             query connected",
        )
        .unwrap();
        let device = Device::sequential();
        let prov = AddMultProb::new();
        let mut db = Database::new(compiled.ram.schemas.clone(), prov);
        db.insert("edge", &[Value::U32(0), Value::U32(1)], 0.8);
        db.insert("edge", &[Value::U32(1), Value::U32(2)], 0.7);
        db.insert(
            "is_endpoint",
            &[Value::U32(0)],
            prov.input_tag(InputFactId(10), Some(1.0)),
        );
        db.insert(
            "is_endpoint",
            &[Value::U32(2)],
            prov.input_tag(InputFactId(11), Some(1.0)),
        );
        db.seal(&device);
        let exec = Executor::new(device, prov, RuntimeOptions::default());
        exec.run_program(&mut db, &compiled.ram).unwrap();
        let rows = db.rows("connected");
        assert_eq!(rows.len(), 1);
        assert!(rows[0].1 > 0.0);
    }

    #[test]
    fn optimizations_do_not_change_results() {
        let edges: Vec<(u32, u32)> = (0..40).map(|i| (i, i + 1)).collect();
        let reference = run_tc(&edges);
        for options in [
            RuntimeOptions::unoptimized(),
            RuntimeOptions::default().with_static_registers(false),
            RuntimeOptions::default().with_buffer_reuse(false),
        ] {
            let compiled = parse(
                "type edge(x: u32, y: u32)
                 rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
                 query path",
            )
            .unwrap();
            let device = Device::sequential();
            let mut db = Database::new(compiled.ram.schemas.clone(), Unit::new());
            for (a, b) in &edges {
                db.insert("edge", &[Value::U32(*a), Value::U32(*b)], ());
            }
            db.seal(&device);
            let exec = Executor::new(device, Unit::new(), options);
            exec.run_program(&mut db, &compiled.ram).unwrap();
            let mut rows: Vec<(u32, u32)> = db
                .rows("path")
                .into_iter()
                .map(|(t, _)| (t[0].as_u32().unwrap(), t[1].as_u32().unwrap()))
                .collect();
            rows.sort_unstable();
            assert_eq!(rows, reference);
        }
    }

    #[test]
    fn steady_state_iterations_allocate_no_fresh_columns() {
        // Two chains of different lengths execute the same per-iteration
        // instruction structure — only for more iterations. With arena reuse
        // enabled every steady-state iteration must be funded entirely by
        // recycled buffers, so the *fresh* allocation count cannot depend on
        // the iteration count.
        let fresh = |n: u32, reuse: bool| {
            let compiled = parse(
                "type edge(x: u32, y: u32)
                 rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))",
            )
            .unwrap();
            let device = Device::sequential();
            let mut db = Database::new(compiled.ram.schemas.clone(), Unit::new());
            for i in 0..n {
                db.insert("edge", &[Value::U32(i), Value::U32(i + 1)], ());
            }
            db.seal(&device);
            let exec = Executor::new(
                device.clone(),
                Unit::new(),
                RuntimeOptions::default().with_buffer_reuse(reuse),
            );
            let stats = exec.run_program(&mut db, &compiled.ram).unwrap();
            assert!(stats.iterations > n as usize / 2, "fix-point actually ran");
            device.arena().stats().fresh_columns
        };
        // Both runs cross every size threshold from iteration 0 (the first
        // candidate stages n ≥ 64 rows), so the instruction-level allocation
        // structure is identical; the longer chain just iterates more.
        assert_eq!(
            fresh(80, true),
            fresh(160, true),
            "steady-state iterations performed fresh column allocations"
        );
        // Ablation sanity: without reuse, allocations scale with iterations.
        assert!(fresh(160, false) > fresh(80, false) + 80);
    }

    #[test]
    fn memory_budget_produces_oom_error() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))",
        )
        .unwrap();
        let device = Device::new(DeviceConfig {
            memory_limit: Some(2_000),
            ..DeviceConfig::default()
        });
        let mut db = Database::new(compiled.ram.schemas.clone(), Unit::new());
        for i in 0..200u32 {
            db.insert("edge", &[Value::U32(i), Value::U32(i + 1)], ());
        }
        db.seal(&device);
        let exec = Executor::new(device, Unit::new(), RuntimeOptions::default());
        let err = exec.run_program(&mut db, &compiled.ram).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Device(DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn timeout_is_reported() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))",
        )
        .unwrap();
        let device = Device::sequential();
        let mut db = Database::new(compiled.ram.schemas.clone(), Unit::new());
        for i in 0..3000u32 {
            db.insert("edge", &[Value::U32(i), Value::U32(i + 1)], ());
        }
        db.seal(&device);
        let exec = Executor::new(
            device,
            Unit::new(),
            RuntimeOptions::default().with_timeout_ms(Some(0)),
        );
        let err = exec.run_program(&mut db, &compiled.ram).unwrap_err();
        assert!(matches!(err, ExecError::Timeout { .. }));
    }

    #[test]
    fn encoded_execution_is_bit_identical_to_full_width() {
        use crate::database::EncodingSpec;
        use lobster_gpu::DeviceConfig;

        // Symbol-typed TC with a symbol constant in a rule body, so the
        // encoded run exercises constant rewriting, dictionary-encoded
        // loads/stores, and packed sort/merge/difference.
        let compiled = parse(
            r#"type edge(x: symbol, y: symbol)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
             rel from_root(y) = path("n000", y)
             query from_root"#,
        )
        .unwrap();
        let symbols = compiled.symbols.clone();
        let names: Vec<u32> = (0..60)
            .map(|i| symbols.intern(&format!("n{i:03}")))
            .collect();
        let spec = EncodingSpec {
            symbol_constants: compiled.ram.symbol_constants(),
            widen_u32: compiled.ram.has_u32_arithmetic(),
        };
        for parallelism in [1, 3] {
            let device = Device::new(DeviceConfig {
                parallelism,
                min_parallel_rows: 1,
                ..DeviceConfig::default()
            });
            let prov = AddMultProb::new();
            let mut wide = Database::new(compiled.ram.schemas.clone(), prov);
            let mut packed = Database::new_encoded(compiled.ram.schemas.clone(), prov, &spec);
            for db in [&mut wide, &mut packed] {
                for (i, w) in names.windows(2).enumerate() {
                    let p = 0.5 + (i as f64) / 200.0;
                    db.insert(
                        "edge",
                        &[Value::Symbol(w[0]), Value::Symbol(w[1])],
                        prov.input_tag(InputFactId(i as u32), Some(p)),
                    );
                }
                db.seal(&device);
            }
            let exec = Executor::new(device, prov, RuntimeOptions::default());
            exec.run_program(&mut wide, &compiled.ram).unwrap();
            exec.run_program(&mut packed, &compiled.ram).unwrap();
            for rel in ["edge", "path", "from_root"] {
                let w = wide.rows(rel);
                let p = packed.rows(rel);
                assert_eq!(w.len(), p.len(), "{rel} row count at par {parallelism}");
                for ((wt, wtag), (pt, ptag)) in w.iter().zip(&p) {
                    assert_eq!(wt, pt, "{rel} tuples at par {parallelism}");
                    assert_eq!(
                        wtag.to_bits(),
                        ptag.to_bits(),
                        "{rel} tags bit-identical at par {parallelism}"
                    );
                }
            }
            assert!(
                packed.size_bytes() < wide.size_bytes(),
                "encoded database should be smaller"
            );
        }
    }

    #[test]
    fn stats_report_iterations_and_kernels() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))",
        )
        .unwrap();
        let device = Device::sequential();
        let mut db = Database::new(compiled.ram.schemas.clone(), Unit::new());
        for i in 0..10u32 {
            db.insert("edge", &[Value::U32(i), Value::U32(i + 1)], ());
        }
        db.seal(&device);
        let exec = Executor::new(device, Unit::new(), RuntimeOptions::default());
        let stats = exec.run_program(&mut db, &compiled.ram).unwrap();
        // A chain of 11 nodes needs ~10 iterations to close.
        assert!(stats.iterations >= 9, "iterations = {}", stats.iterations);
        assert!(stats.kernel_launches > 0);
        assert!(stats.facts_produced >= 55 - 10);
        assert_eq!(stats.strata, 1);
    }
}
