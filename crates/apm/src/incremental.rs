//! Incremental (delta) maintenance of a materialized fix point.
//!
//! After a full run, a session can keep its [`Database`] — every relation's
//! stable/recent split at the fix point — and re-evaluate only what a batch
//! of fact insertions, retractions, or probability updates can actually
//! affect. [`refresh_database`] implements the refresh in two tiers:
//!
//! * **Tuple-level semi-naive insertion** for recursive strata whose
//!   provenance is [`delta_exact`](lobster_provenance::Provenance::delta_exact)
//!   and whose refresh is insert-only: the newly inserted rows are seeded
//!   into the `recent` partition of their relations, the stratum is
//!   recompiled with [`compile_stratum_delta`] (widening the semi-naive
//!   variant expansion to the changed inputs), and the executor iterates
//!   until the insertion frontier drains. Work scales with |Δ| and the size
//!   of its derivation cone, not |DB|.
//! * **Stratum-level recompute** for everything else — retractions
//!   (delete/re-derive: the stratum's relations are reset to their EDB
//!   content and re-derived from surviving support), probability updates,
//!   and provenances whose tags fold information across derivations in rank
//!   order (where dropping re-derivations of existing rows would diverge
//!   from a from-scratch run). Affected strata are recomputed exactly as
//!   `Program::execute` would — same compilation, same executor entry — so
//!   the result is bit-identical by construction; unaffected strata are
//!   skipped entirely and launch zero kernels.
//!
//! Dirtiness propagates along the stratum order: a recomputed or
//! delta-updated relation whose content (including the stable/recent split)
//! is bitwise unchanged does not dirty its consumers.

use crate::compiler::{compile_stratum, compile_stratum_delta};
use crate::database::{Database, SortedTable};
use crate::executor::{ExecError, ExecutionStats, Executor};
use lobster_gpu::{Columns, Device};
use lobster_provenance::Provenance;
use lobster_ram::RamProgram;
use std::collections::{BTreeMap, BTreeSet};

/// The extensional content of one relation, in fact-registration order:
/// encoded columns plus one input tag per row.
pub type EdbContent<Tag> = (Columns, Vec<Tag>);

/// Folds a relation's temporary stable/recent split back into a single
/// stable table. `folded` may hold the precomputed result (saved by the
/// delta path, bitwise equal to the merge) to avoid re-merging.
fn fold_split<P: Provenance>(
    device: &Device,
    db: &mut Database<P>,
    rel: &str,
    folded: &mut BTreeMap<String, SortedTable<P>>,
) {
    let data = db.relation_data_mut(rel);
    let arity = data.stable.arity();
    let stable = std::mem::replace(&mut data.stable, SortedTable::empty(arity));
    let recent = std::mem::replace(&mut data.recent, SortedTable::empty(arity));
    match folded.remove(rel) {
        Some(full) => {
            stable.recycle(device);
            recent.recycle(device);
            db.relation_data_mut(rel).stable = full;
        }
        None => {
            db.relation_data_mut(rel).stable =
                SortedTable::merge_disjoint_owned(device, stable, recent);
        }
    }
}

/// Refreshes a materialized database after a batch of EDB changes.
///
/// * `inserted` — newly inserted rows per relation, eligible for the
///   tuple-level delta path. The caller must only populate this when the
///   refresh is insert-only **and** the provenance is
///   [`delta_exact`](lobster_provenance::Provenance::delta_exact); otherwise
///   the affected relations belong in `rebuild`.
/// * `rebuild` — relations whose EDB content must be rebuilt from scratch
///   (retractions, probability changes, or non-delta-exact insertions).
/// * `edb` — supplies the **full** current EDB content of a relation in
///   fact-registration order; called lazily, only for rebuilt relations and
///   the own relations of recomputed strata.
///
/// Returns the executed strata's merged statistics. Strata outside the
/// change cone are skipped and contribute nothing (no kernels, no
/// iterations).
///
/// # Errors
///
/// Returns an [`ExecError`] on device OOM, timeout, or a hit iteration cap.
pub fn refresh_database<P: Provenance>(
    executor: &Executor<P>,
    db: &mut Database<P>,
    ram: &RamProgram,
    inserted: &BTreeMap<String, EdbContent<P::Tag>>,
    rebuild: &BTreeSet<String>,
    edb: &dyn Fn(&str) -> EdbContent<P::Tag>,
) -> Result<ExecutionStats, ExecError> {
    let device = executor.device().clone();
    let mut stats = ExecutionStats::default();

    // Relations whose content differs from the materialized state.
    let mut changed: BTreeSet<String> = BTreeSet::new();
    // Relations currently holding a (stable = old content, recent = Δ)
    // split that downstream delta strata can consume as a frontier. Folded
    // back to a single stable table before returning.
    let mut seeded: BTreeSet<String> = BTreeSet::new();
    // Saved post-run stable tables for delta-updated relations (bitwise
    // equal to folding their split), reused by `fold_split`.
    let mut folded: BTreeMap<String, SortedTable<P>> = BTreeMap::new();

    let idb: BTreeSet<&String> = ram.strata.iter().flat_map(|s| &s.relations).collect();

    // Seed the insertion frontier: recent ← Δ \ stable. Rows already
    // present are dropped here (the provenance is delta-exact, so their
    // tags carry no new information), which keeps double-inserts idempotent
    // and the disjointness invariant of the final fold intact.
    for (rel, (cols, tags)) in inserted {
        let table = db.encoded_from_unsorted(&device, rel, cols.clone(), tags.clone());
        let data = db.relation_data_mut(rel);
        let delta = data.stable.difference_from_owned(&device, table);
        if delta.is_empty() {
            continue;
        }
        debug_assert!(
            data.recent.is_empty(),
            "relation `{rel}` already has a live frontier"
        );
        data.recent = delta;
        changed.insert(rel.clone());
        seeded.insert(rel.clone());
    }

    // Rebuild the EDB tables of recompute-path relations. Pure EDB
    // relations whose rebuilt content is bitwise unchanged (e.g. a
    // retract-then-reinsert of the same fact) are pruned from the change
    // set; IDB relations are reset by their defining stratum below.
    for rel in rebuild {
        if idb.contains(rel) {
            changed.insert(rel.clone());
            continue;
        }
        let (cols, tags) = edb(rel);
        let new = db.encoded_from_unsorted(&device, rel, cols, tags);
        let data = db.relation_data_mut(rel);
        debug_assert!(
            data.recent.is_empty(),
            "EDB relation `{rel}` has a frontier"
        );
        if data.stable.columns == new.columns && data.stable.tags == new.tags {
            new.recycle(&device);
            continue;
        }
        let old = std::mem::replace(&mut data.stable, new);
        old.recycle(&device);
        changed.insert(rel.clone());
    }

    if changed.is_empty() {
        return Ok(stats);
    }

    for stratum in &ram.strata {
        let mut referenced = Vec::new();
        for rule in &stratum.rules {
            rule.expr.referenced_relations(&mut referenced);
        }
        let own_changed = stratum.relations.iter().any(|r| changed.contains(r));
        let input_changed = referenced.iter().any(|r| changed.contains(r));
        if !own_changed && !input_changed {
            continue;
        }

        // The tuple-level path needs every changed relation this stratum
        // touches to still carry a live Δ split; anything changed via
        // recompute (split discarded) forces the consumer to recompute too.
        let split_complete = stratum
            .relations
            .iter()
            .chain(referenced.iter())
            .filter(|r| changed.contains(*r))
            .all(|r| seeded.contains(r));

        if stratum.recursive && split_complete {
            // Tuple-level semi-naive insertion.
            let changed_inputs: BTreeSet<String> = referenced
                .iter()
                .filter(|r| changed.contains(*r))
                .cloned()
                .collect();
            let compiled = compile_stratum_delta(stratum, ram, &changed_inputs);
            let old_tables: Vec<(String, SortedTable<P>)> = stratum
                .relations
                .iter()
                .map(|rel| (rel.clone(), db.relation_data(rel).stable.clone()))
                .collect();
            stats.merge(&executor.run_stratum_seeded(db, &compiled)?);
            for (rel, old_stable) in old_tables {
                let data = db.relation_data_mut(&rel);
                debug_assert!(data.recent.is_empty(), "seeded run left a frontier");
                let arity = data.stable.arity();
                let new_stable = std::mem::replace(&mut data.stable, SortedTable::empty(arity));
                let delta = old_stable.difference_from(&device, &new_stable);
                if delta.is_empty() {
                    db.relation_data_mut(&rel).stable = new_stable;
                    old_stable.recycle(&device);
                    continue;
                }
                // Re-split so downstream delta strata see old content as
                // stable and the newly derived rows as their frontier; the
                // post-run stable is saved for the final fold.
                let data = db.relation_data_mut(&rel);
                data.stable = old_stable;
                data.recent = delta;
                folded.insert(rel.clone(), new_stable);
                changed.insert(rel.clone());
                seeded.insert(rel.clone());
            }
        } else {
            // Stratum-level recompute (delete/re-derive): restore the exact
            // stratum-entry state of a from-scratch run, then replay it.
            for rel in referenced
                .iter()
                .filter(|r| !stratum.relations.contains(*r))
            {
                if seeded.remove(rel.as_str()) {
                    // Loads assume single sorted partitions; fold the split.
                    fold_split(&device, db, rel, &mut folded);
                }
            }
            let old_tables: Vec<(String, SortedTable<P>, SortedTable<P>)> = stratum
                .relations
                .iter()
                .map(|rel| {
                    let (cols, tags) = edb(rel);
                    let new = db.encoded_from_unsorted(&device, rel, cols, tags);
                    if seeded.remove(rel) {
                        // A pending EDB seed on this relation is subsumed by
                        // the full rebuild.
                        folded.remove(rel);
                    }
                    let data = db.relation_data_mut(rel);
                    let arity = data.stable.arity();
                    let old_stable = std::mem::replace(&mut data.stable, new);
                    let old_recent = std::mem::replace(&mut data.recent, SortedTable::empty(arity));
                    (rel.clone(), old_stable, old_recent)
                })
                .collect();
            let compiled = compile_stratum(stratum, ram);
            stats.merge(&executor.run_stratum(db, &compiled)?);
            for (rel, old_stable, old_recent) in old_tables {
                let data = db.relation_data_mut(&rel);
                let same = data.stable.columns == old_stable.columns
                    && data.stable.tags == old_stable.tags
                    && data.recent.columns == old_recent.columns
                    && data.recent.tags == old_recent.tags;
                if !same {
                    changed.insert(rel.clone());
                }
                old_stable.recycle(&device);
                old_recent.recycle(&device);
            }
        }
    }

    // Restore the canonical single-table state of every still-split
    // relation (matching what a from-scratch seal/convergence leaves).
    let still_split: Vec<String> = seeded.into_iter().collect();
    for rel in still_split {
        fold_split(&device, db, &rel, &mut folded);
    }
    for (_, table) in folded {
        table.recycle(&device);
    }
    Ok(stats)
}
