//! Runtime configuration and optimization toggles.

/// Options controlling the APM executor, including the optimization toggles
/// used by the paper's ablation study (Figure 10).
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Reuse hash indices across fix-point iterations by storing them in
    /// static registers when the build side of a join is iteration-invariant
    /// (Section 4.2). Disabling this rebuilds every index on every iteration.
    pub static_registers: bool,
    /// Arena allocation and cross-iteration buffer reuse for per-iteration
    /// temporaries (Section 4.1).
    pub buffer_reuse: bool,
    /// Maximum number of fix-point iterations per stratum (safety net against
    /// non-terminating programs).
    pub max_iterations: usize,
    /// Optional wall-clock budget in milliseconds for a single stratum; the
    /// executor aborts with an error when exceeded (used to reproduce the
    /// paper's 2-hour-timeout entries at laptop scale).
    pub timeout_ms: Option<u64>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            static_registers: true,
            buffer_reuse: true,
            max_iterations: 1_000_000,
            timeout_ms: None,
        }
    }
}

impl RuntimeOptions {
    /// The fully optimized configuration (the paper's "Both").
    pub fn optimized() -> Self {
        Self::default()
    }

    /// All optimizations disabled (the paper's "None").
    pub fn unoptimized() -> Self {
        RuntimeOptions {
            static_registers: false,
            buffer_reuse: false,
            ..Self::default()
        }
    }

    /// Builder-style setter for [`RuntimeOptions::static_registers`].
    pub fn with_static_registers(mut self, enabled: bool) -> Self {
        self.static_registers = enabled;
        self
    }

    /// Builder-style setter for [`RuntimeOptions::buffer_reuse`].
    pub fn with_buffer_reuse(mut self, enabled: bool) -> Self {
        self.buffer_reuse = enabled;
        self
    }

    /// Builder-style setter for [`RuntimeOptions::timeout_ms`].
    pub fn with_timeout_ms(mut self, timeout: Option<u64>) -> Self {
        self.timeout_ms = timeout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_optimizations() {
        let opts = RuntimeOptions::default();
        assert!(opts.static_registers);
        assert!(opts.buffer_reuse);
    }

    #[test]
    fn unoptimized_disables_everything() {
        let opts = RuntimeOptions::unoptimized();
        assert!(!opts.static_registers);
        assert!(!opts.buffer_reuse);
    }

    #[test]
    fn builder_setters_compose() {
        let opts = RuntimeOptions::default()
            .with_static_registers(false)
            .with_buffer_reuse(false)
            .with_timeout_ms(Some(100));
        assert!(!opts.static_registers);
        assert!(!opts.buffer_reuse);
        assert_eq!(opts.timeout_ms, Some(100));
    }
}
