//! Runtime configuration and optimization toggles.

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a 64-bit hash state. Start from [`fnv1a`] for
/// a whole buffer; use this directly to chain several fields into one hash.
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A stable FNV-1a 64-bit hash of `bytes` — process-independent, unlike
/// `std`'s randomized hasher, so it can identify artifacts across runs.
/// Shared by [`RuntimeOptions::fingerprint`] and the core crate's source
/// hashing so the two fingerprints never drift apart.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// Options controlling the APM executor, including the optimization toggles
/// used by the paper's ablation study (Figure 10).
///
/// `RuntimeOptions` has structural equality and hashing, and a stable
/// [`fingerprint`](RuntimeOptions::fingerprint), so it can key caches of
/// compiled programs: two option sets with the same fingerprint produce the
/// same execution behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RuntimeOptions {
    /// Reuse hash indices across fix-point iterations by storing them in
    /// static registers when the build side of a join is iteration-invariant
    /// (Section 4.2). Disabling this rebuilds every index on every iteration.
    pub static_registers: bool,
    /// Arena allocation and cross-iteration buffer reuse for per-iteration
    /// temporaries (Section 4.1).
    pub buffer_reuse: bool,
    /// Maximum number of fix-point iterations per stratum (safety net against
    /// non-terminating programs).
    pub max_iterations: usize,
    /// Optional wall-clock budget in milliseconds for a single stratum; the
    /// executor aborts with an error when exceeded (used to reproduce the
    /// paper's 2-hour-timeout entries at laptop scale).
    pub timeout_ms: Option<u64>,
    /// Compile merge-path joins (binary search over a sorted build side, no
    /// hash index) at join sites where sort-order inference proves both
    /// inputs sorted on the key prefix. Disabling this forces every join
    /// through the hash build+probe path.
    pub merge_join: bool,
    /// Drop rules that cannot reach any declared output before compiling
    /// (see `lobster_ram::passes::eliminate_dead_rules`). Off by default:
    /// pruning is observable through relation sizes and execution stats, so
    /// callers opt in; the lint report warns about dead rules otherwise.
    pub eliminate_dead_rules: bool,
    /// Store relations in narrow, dictionary-encoded packed columns
    /// (`lobster_ram::RelationLayout`): symbol columns narrow to the
    /// database dictionary width, booleans to one byte, and adjacent narrow
    /// columns fuse into shared `u64` words — fewer radix-sort passes,
    /// smaller merge/difference inputs, more rows per cache line. Results
    /// are bit-identical to full-width execution (the encoding is
    /// order-preserving). Sessions disable this automatically for programs
    /// that do arithmetic over `Symbol`/`Bool` operands (see the
    /// `symbol-arithmetic` lint).
    pub encode_columns: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            static_registers: true,
            buffer_reuse: true,
            max_iterations: 1_000_000,
            timeout_ms: None,
            merge_join: true,
            eliminate_dead_rules: false,
            encode_columns: true,
        }
    }
}

impl RuntimeOptions {
    /// The fully optimized configuration (the paper's "Both").
    pub fn optimized() -> Self {
        Self::default()
    }

    /// All optimizations disabled (the paper's "None").
    pub fn unoptimized() -> Self {
        RuntimeOptions {
            static_registers: false,
            buffer_reuse: false,
            merge_join: false,
            ..Self::default()
        }
    }

    /// Builder-style setter for [`RuntimeOptions::static_registers`].
    pub fn with_static_registers(mut self, enabled: bool) -> Self {
        self.static_registers = enabled;
        self
    }

    /// Builder-style setter for [`RuntimeOptions::buffer_reuse`].
    pub fn with_buffer_reuse(mut self, enabled: bool) -> Self {
        self.buffer_reuse = enabled;
        self
    }

    /// Builder-style setter for [`RuntimeOptions::timeout_ms`].
    pub fn with_timeout_ms(mut self, timeout: Option<u64>) -> Self {
        self.timeout_ms = timeout;
        self
    }

    /// Builder-style setter for [`RuntimeOptions::merge_join`].
    pub fn with_merge_join(mut self, enabled: bool) -> Self {
        self.merge_join = enabled;
        self
    }

    /// Builder-style setter for [`RuntimeOptions::eliminate_dead_rules`].
    pub fn with_eliminate_dead_rules(mut self, enabled: bool) -> Self {
        self.eliminate_dead_rules = enabled;
        self
    }

    /// Builder-style setter for [`RuntimeOptions::encode_columns`].
    pub fn with_encode_columns(mut self, enabled: bool) -> Self {
        self.encode_columns = enabled;
        self
    }

    /// A stable 64-bit fingerprint of every field (FNV-1a), independent of
    /// the process and of `std`'s randomized hasher. Equal options always
    /// fingerprint equally, so `(source hash, provenance kind, options
    /// fingerprint)` is a well-defined compiled-program cache key.
    pub fn fingerprint(&self) -> u64 {
        let mix = |hash, value: u64| fnv1a_extend(hash, &value.to_le_bytes());
        let mut hash = FNV_OFFSET;
        hash = mix(hash, u64::from(self.static_registers));
        hash = mix(hash, u64::from(self.buffer_reuse));
        hash = mix(hash, self.max_iterations as u64);
        // Distinguish `None` from `Some(0)`.
        hash = mix(hash, u64::from(self.timeout_ms.is_some()));
        hash = mix(hash, self.timeout_ms.unwrap_or(0));
        hash = mix(hash, u64::from(self.merge_join));
        hash = mix(hash, u64::from(self.eliminate_dead_rules));
        hash = mix(hash, u64::from(self.encode_columns));
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_optimizations() {
        let opts = RuntimeOptions::default();
        assert!(opts.static_registers);
        assert!(opts.buffer_reuse);
        assert!(opts.merge_join);
        assert!(!opts.eliminate_dead_rules);
        assert!(opts.encode_columns);
    }

    #[test]
    fn unoptimized_disables_everything() {
        let opts = RuntimeOptions::unoptimized();
        assert!(!opts.static_registers);
        assert!(!opts.buffer_reuse);
        assert!(!opts.merge_join);
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let base = RuntimeOptions::default();
        assert_eq!(base.fingerprint(), RuntimeOptions::default().fingerprint());
        assert_eq!(base, RuntimeOptions::default());
        // Every field participates.
        assert_ne!(
            base.fingerprint(),
            base.clone().with_static_registers(false).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_buffer_reuse(false).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_timeout_ms(Some(0)).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_merge_join(false).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_eliminate_dead_rules(true).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            base.clone().with_encode_columns(false).fingerprint()
        );
        let mut capped = base.clone();
        capped.max_iterations = 7;
        assert_ne!(base.fingerprint(), capped.fingerprint());
    }

    #[test]
    fn builder_setters_compose() {
        let opts = RuntimeOptions::default()
            .with_static_registers(false)
            .with_buffer_reuse(false)
            .with_timeout_ms(Some(100));
        assert!(!opts.static_registers);
        assert!(!opts.buffer_reuse);
        assert_eq!(opts.timeout_ms, Some(100));
    }
}
