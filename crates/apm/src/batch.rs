//! Batched evaluation (paper Section 4.3).
//!
//! Deep-learning pipelines process *batches* of samples. Lobster folds a
//! whole batch into a single database by prepending a sample-id column to
//! every relation: facts from different samples can never join because every
//! join key is widened by one to include the sample id, and parallelism over
//! the batch falls out of the existing row-level parallelism.
//!
//! [`batch_transform`] performs the corresponding program transformation on a
//! RAM program: every relation gains a leading `u32` sample column, every
//! projection passes the sample column through, every selection shifts its
//! column references by one, and every join / intersection widens its key by
//! one. Products become sample-keyed joins so that cross products also stay
//! within a sample.

use lobster_ram::{
    RamExpr, RamProgram, RamRule, RelationSchema, RowProjection, ScalarExpr, Stratum, ValueType,
};

/// Shifts every column reference in a scalar expression by `delta`.
fn shift_expr(expr: &ScalarExpr, delta: usize) -> ScalarExpr {
    match expr {
        ScalarExpr::Col(i) => ScalarExpr::Col(i + delta),
        ScalarExpr::Const(v) => ScalarExpr::Const(*v),
        ScalarExpr::Binary { op, ty, lhs, rhs } => ScalarExpr::Binary {
            op: *op,
            ty: *ty,
            lhs: Box::new(shift_expr(lhs, delta)),
            rhs: Box::new(shift_expr(rhs, delta)),
        },
        ScalarExpr::Unary { op, ty, expr } => ScalarExpr::Unary {
            op: *op,
            ty: *ty,
            expr: Box::new(shift_expr(expr, delta)),
        },
    }
}

/// Rebuilds a projection so that column 0 (the sample id) passes through and
/// all other references are shifted by one.
fn shift_projection(proj: &RowProjection) -> RowProjection {
    // Reconstruct scalar expressions from the projection's structure: the
    // permutation fast path gives us the sources directly; otherwise we shift
    // the compiled programs' column references by recompiling from the
    // original scalar expressions is impossible (they are gone), so the
    // projection stores its expressions — we rebuild from `permutation` or
    // shift the bytecode.
    if let Some(perm) = &proj.permutation {
        let mut outputs = vec![ScalarExpr::Col(0)];
        outputs.extend(perm.iter().map(|&c| ScalarExpr::Col(c + 1)));
        return RowProjection::new(outputs, None);
    }
    // General case: shift every PushCol in the compiled programs.
    let mut shifted = proj.clone();
    for program in &mut shifted.programs {
        for op in &mut program.ops {
            if let lobster_ram::ByteOp::PushCol(i) = op {
                *i += 1;
            }
        }
    }
    if let Some(filter) = &mut shifted.filter {
        for op in &mut filter.ops {
            if let lobster_ram::ByteOp::PushCol(i) = op {
                *i += 1;
            }
        }
    }
    // Prepend the sample column as output 0.
    let mut programs = vec![ScalarExpr::Col(0).compile()];
    programs.extend(shifted.programs);
    RowProjection {
        programs,
        permutation: None,
        filter: shifted.filter,
    }
}

fn transform_expr(expr: &RamExpr) -> RamExpr {
    match expr {
        RamExpr::Relation(name) => RamExpr::Relation(name.clone()),
        RamExpr::Project { input, proj } => RamExpr::Project {
            input: Box::new(transform_expr(input)),
            proj: shift_projection(proj),
        },
        RamExpr::Select { input, cond } => RamExpr::Select {
            input: Box::new(transform_expr(input)),
            cond: shift_expr(cond, 1),
        },
        RamExpr::Join { left, right, width } => RamExpr::Join {
            left: Box::new(transform_expr(left)),
            right: Box::new(transform_expr(right)),
            width: width + 1,
        },
        RamExpr::Intersect(l, r) => {
            RamExpr::Intersect(Box::new(transform_expr(l)), Box::new(transform_expr(r)))
        }
        RamExpr::Union(l, r) => {
            RamExpr::Union(Box::new(transform_expr(l)), Box::new(transform_expr(r)))
        }
        // A cross product within a batch must still match on the sample id,
        // so it becomes a width-1 join on the new leading column.
        RamExpr::Product(l, r) => RamExpr::Join {
            left: Box::new(transform_expr(l)),
            right: Box::new(transform_expr(r)),
            width: 1,
        },
    }
}

/// Transforms a RAM program for batched evaluation: every relation gains a
/// leading sample-id column and every operator is widened accordingly.
pub fn batch_transform(program: &RamProgram) -> RamProgram {
    let schemas = program
        .schemas
        .iter()
        .map(|(name, schema)| {
            let mut types = vec![ValueType::U32];
            types.extend(schema.arg_types.iter().copied());
            (name.clone(), RelationSchema::new(name.clone(), types))
        })
        .collect();
    let strata = program
        .strata
        .iter()
        .map(|stratum| Stratum {
            relations: stratum.relations.clone(),
            recursive: stratum.recursive,
            rules: stratum
                .rules
                .iter()
                .map(|rule| RamRule {
                    target: rule.target.clone(),
                    expr: transform_expr(&rule.expr),
                })
                .collect(),
        })
        .collect();
    RamProgram {
        schemas,
        strata,
        outputs: program.outputs.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, Executor, RuntimeOptions};
    use lobster_datalog::parse;
    use lobster_gpu::Device;
    use lobster_provenance::Unit;
    use lobster_ram::Value;

    #[test]
    fn batched_program_has_wider_schemas_and_joins() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))",
        )
        .unwrap();
        let batched = batch_transform(&compiled.ram);
        assert_eq!(batched.schemas["edge"].arity(), 3);
        assert_eq!(batched.schemas["path"].arity(), 3);
        batched.validate().unwrap();
        let mut join_widths = Vec::new();
        for stratum in &batched.strata {
            for rule in &stratum.rules {
                rule.expr.visit(&mut |e| {
                    if let RamExpr::Join { width, .. } = e {
                        join_widths.push(*width);
                    }
                });
            }
        }
        assert!(
            join_widths.iter().all(|&w| w >= 2),
            "joins must include the sample column"
        );
    }

    #[test]
    fn samples_do_not_leak_into_each_other() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
             query path",
        )
        .unwrap();
        let batched = batch_transform(&compiled.ram);
        let device = Device::sequential();
        let mut db = Database::new(batched.schemas.clone(), Unit::new());
        // Sample 0: edge 0 -> 1; sample 1: edge 1 -> 2. Without batching the
        // combined graph would contain the path 0 -> 2.
        db.insert("edge", &[Value::U32(0), Value::U32(0), Value::U32(1)], ());
        db.insert("edge", &[Value::U32(1), Value::U32(1), Value::U32(2)], ());
        db.seal(&device);
        let exec = Executor::new(device, Unit::new(), RuntimeOptions::default());
        exec.run_program(&mut db, &batched).unwrap();
        let rows = db.rows("path");
        assert_eq!(
            rows.len(),
            2,
            "each sample derives exactly its own edge as a path"
        );
        assert!(rows
            .iter()
            .all(|(t, _)| !(t[1] == Value::U32(0) && t[2] == Value::U32(2))));
    }

    #[test]
    fn batched_product_becomes_sample_join() {
        let compiled = parse(
            "type a(x: u32)
             type b(y: u32)
             rel pair(x, y) = a(x), b(y)",
        )
        .unwrap();
        let batched = batch_transform(&compiled.ram);
        let mut saw_product = false;
        let mut saw_sample_join = false;
        for stratum in &batched.strata {
            for rule in &stratum.rules {
                rule.expr.visit(&mut |e| match e {
                    RamExpr::Product(_, _) => saw_product = true,
                    RamExpr::Join { width: 1, .. } => saw_sample_join = true,
                    _ => {}
                });
            }
        }
        assert!(!saw_product);
        assert!(saw_sample_join);
    }
}
