//! The tagged, columnar database held on the (simulated) device.

use lobster_gpu::{kernels, Columns, Device};
use lobster_provenance::Provenance;
use lobster_ram::{RelationSchema, Tuple, Value};
use std::collections::BTreeMap;

/// Returns dead columns to the device arena (capacity-less vectors are
/// dropped — there is nothing to reuse).
pub(crate) fn recycle_columns(device: &Device, columns: Columns) {
    for col in columns {
        if col.capacity() > 0 {
            device.arena().recycle_shared(col);
        }
    }
}

/// A lexicographically sorted, duplicate-free table: the canonical storage
/// format for a relation partition.
///
/// Tables are stored column-wise (flat `u64` columns plus one tag vector), the
/// layout Section 2.4 argues for: columnar data is cache- and
/// memory-bandwidth-friendly and suits the per-column kernels the relational
/// operators compile to.
#[derive(Debug, Clone)]
pub struct SortedTable<P: Provenance> {
    /// Column data (may be empty for nullary relations).
    pub columns: Columns,
    /// One provenance tag per row.
    pub tags: Vec<P::Tag>,
    arity: usize,
}

impl<P: Provenance> SortedTable<P> {
    /// An empty table of the given arity.
    pub fn empty(arity: usize) -> Self {
        SortedTable {
            columns: vec![Vec::new(); arity],
            tags: Vec::new(),
            arity,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Approximate device bytes occupied by the table.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.len() * 8).sum::<usize>()
            + self.tags.len() * std::mem::size_of::<P::Tag>()
    }

    fn col_refs(&self) -> Vec<&[u64]> {
        self.columns.iter().map(|c| c.as_slice()).collect()
    }

    /// Builds a sorted, deduplicated table from unsorted rows, merging the
    /// tags of duplicate rows with the semiring disjunction. The consumed
    /// input columns and every sorting intermediate are recycled into the
    /// device arena.
    pub fn from_unsorted(device: &Device, prov: &P, columns: Columns, tags: Vec<P::Tag>) -> Self {
        let arity = columns.len();
        if tags.is_empty() {
            recycle_columns(device, columns);
            return Self::empty(arity);
        }
        if arity == 0 {
            // A nullary relation holds at most one fact; fold all tags.
            let mut iter = tags.into_iter();
            let first = iter.next().expect("non-empty tags");
            let folded = iter.fold(first, |acc, t| prov.add(&acc, &t));
            return SortedTable {
                columns: Vec::new(),
                tags: vec![folded],
                arity,
            };
        }
        let refs: Vec<&[u64]> = columns.iter().map(|c| c.as_slice()).collect();
        let perm = kernels::sort_permutation(device, &refs);
        let (sorted_cols, sorted_tags) = kernels::apply_permutation(device, &perm, &refs, &tags);
        device.arena().recycle_shared(perm);
        drop(refs);
        recycle_columns(device, columns);
        let sorted_refs: Vec<&[u64]> = sorted_cols.iter().map(|c| c.as_slice()).collect();
        let (unique_cols, unique_tags) =
            kernels::unique(device, &sorted_refs, &sorted_tags, |a, b| prov.add(a, b));
        drop(sorted_refs);
        recycle_columns(device, sorted_cols);
        SortedTable {
            columns: unique_cols,
            tags: unique_tags,
            arity,
        }
    }

    /// Returns the table's columns to the device arena. Call when the table
    /// is dead and its buffers should feed the next iteration's allocations.
    pub fn recycle(self, device: &Device) {
        recycle_columns(device, self.columns);
    }

    /// Consuming [`SortedTable::merge_disjoint`]: when either side is empty
    /// the other is returned *as is* (no copy, no allocation), and consumed
    /// inputs are recycled into the device arena — the steady-state shape of
    /// the executor's update phase.
    pub fn merge_disjoint_owned(device: &Device, a: SortedTable<P>, b: SortedTable<P>) -> Self {
        if a.is_empty() {
            a.recycle(device);
            return b;
        }
        if b.is_empty() {
            b.recycle(device);
            return a;
        }
        let merged = a.merge_disjoint(device, &b);
        a.recycle(device);
        b.recycle(device);
        merged
    }

    /// Merges two sorted tables whose row sets are disjoint.
    pub fn merge_disjoint(&self, device: &Device, other: &SortedTable<P>) -> SortedTable<P> {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        if self.arity == 0 {
            // Keep a single fact; disjointness means at most one side is
            // non-empty, but fold defensively.
            let mut tags = self.tags.clone();
            tags.extend(other.tags.iter().cloned());
            return SortedTable {
                columns: Vec::new(),
                tags: vec![tags.remove(0)],
                arity: 0,
            };
        }
        let (columns, tags) = kernels::merge(
            device,
            &self.col_refs(),
            &self.tags,
            &other.col_refs(),
            &other.tags,
        );
        SortedTable {
            columns,
            tags,
            arity: self.arity,
        }
    }

    /// Consuming [`SortedTable::difference_from`]: an empty `self` passes
    /// `candidate` through untouched (no copy), and a consumed `candidate`
    /// is recycled into the device arena.
    pub fn difference_from_owned(&self, device: &Device, candidate: SortedTable<P>) -> Self {
        if candidate.is_empty() || self.is_empty() || self.arity == 0 {
            // `difference_from` would clone the (possibly empty) candidate
            // or drop it for nullary relations; consuming avoids the copy.
            if self.arity == 0 && !self.is_empty() {
                candidate.recycle(device);
                return SortedTable::empty(0);
            }
            return candidate;
        }
        let delta = self.difference_from(device, &candidate);
        candidate.recycle(device);
        delta
    }

    /// Rows of `candidate` (sorted) that are not present in `self`.
    pub fn difference_from(&self, device: &Device, candidate: &SortedTable<P>) -> SortedTable<P> {
        if candidate.is_empty() || self.is_empty() {
            return candidate.clone();
        }
        if self.arity == 0 {
            // The fact already exists; nothing is new.
            return SortedTable::empty(0);
        }
        let (columns, tags) = kernels::difference(
            device,
            &candidate.col_refs(),
            &candidate.tags,
            &self.col_refs(),
            self.len(),
        );
        SortedTable {
            columns,
            tags,
            arity: self.arity,
        }
    }

    /// The rows as decoded-value tuples paired with their tags (for result
    /// extraction and tests).
    pub fn decoded_rows(&self, schema: &RelationSchema) -> Vec<(Tuple, P::Tag)> {
        (0..self.len())
            .map(|row| {
                let tuple: Tuple = schema
                    .arg_types
                    .iter()
                    .enumerate()
                    .map(|(c, ty)| Value::decode(self.columns[c][row], *ty))
                    .collect();
                (tuple, self.tags[row].clone())
            })
            .collect()
    }
}

/// The bookkeeping for one relation: the semi-naive partitions plus staged
/// delta candidates produced by `store` instructions during the current
/// iteration.
#[derive(Debug, Clone)]
pub(crate) struct RelationData<P: Provenance> {
    pub(crate) stable: SortedTable<P>,
    pub(crate) recent: SortedTable<P>,
    pub(crate) staged: Vec<(Columns, Vec<P::Tag>)>,
}

impl<P: Provenance> RelationData<P> {
    fn new(arity: usize) -> Self {
        RelationData {
            stable: SortedTable::empty(arity),
            recent: SortedTable::empty(arity),
            staged: Vec::new(),
        }
    }

    /// Total number of facts (stable + recent).
    pub(crate) fn len(&self) -> usize {
        self.stable.len() + self.recent.len()
    }
}

/// The tagged, columnar database: every relation's facts plus the semi-naive
/// partitions used during fix-point execution.
#[derive(Debug, Clone)]
pub struct Database<P: Provenance> {
    schemas: BTreeMap<String, RelationSchema>,
    relations: BTreeMap<String, RelationData<P>>,
    pending: BTreeMap<String, (Columns, Vec<P::Tag>)>,
    provenance: P,
}

impl<P: Provenance> Database<P> {
    /// Creates an empty database for the given schemas.
    pub fn new(schemas: BTreeMap<String, RelationSchema>, provenance: P) -> Self {
        let relations = schemas
            .iter()
            .map(|(name, schema)| (name.clone(), RelationData::new(schema.arity())))
            .collect();
        let pending = schemas
            .iter()
            .map(|(name, schema)| (name.clone(), (vec![Vec::new(); schema.arity()], Vec::new())))
            .collect();
        Database {
            schemas,
            relations,
            pending,
            provenance,
        }
    }

    /// The provenance context used by this database.
    pub fn provenance(&self) -> &P {
        &self.provenance
    }

    /// The schema of a relation.
    pub fn schema(&self, relation: &str) -> Option<&RelationSchema> {
        self.schemas.get(relation)
    }

    /// All relation names.
    pub fn relation_names(&self) -> Vec<String> {
        self.schemas.keys().cloned().collect()
    }

    /// Inserts one fact (encoded values) with its tag. The fact becomes
    /// visible after the next [`Database::seal`].
    ///
    /// # Panics
    ///
    /// Panics if the relation is unknown or the row arity does not match the
    /// schema.
    pub fn insert_encoded(&mut self, relation: &str, row: &[u64], tag: P::Tag) {
        let (columns, tags) = self
            .pending
            .get_mut(relation)
            .unwrap_or_else(|| panic!("unknown relation `{relation}`"));
        assert_eq!(
            columns.len(),
            row.len(),
            "arity mismatch inserting into `{relation}`"
        );
        for (col, v) in columns.iter_mut().zip(row) {
            col.push(*v);
        }
        tags.push(tag);
    }

    /// Inserts one fact given as [`Value`]s.
    pub fn insert(&mut self, relation: &str, values: &[Value], tag: P::Tag) {
        let row: Vec<u64> = values.iter().map(Value::encode).collect();
        self.insert_encoded(relation, &row, tag);
    }

    /// Folds all pending inserts into the stable partitions.
    pub fn seal(&mut self, device: &Device) {
        let prov = self.provenance.clone();
        let names: Vec<String> = self.pending.keys().cloned().collect();
        for name in names {
            let arity = self.schemas[&name].arity();
            let (columns, tags) = self.pending.get_mut(&name).expect("relation exists");
            if tags.is_empty() {
                continue;
            }
            let columns = std::mem::replace(columns, vec![Vec::new(); arity]);
            let tags = std::mem::take(tags);
            let table = SortedTable::from_unsorted(device, &prov, columns, tags);
            let data = self.relations.get_mut(&name).expect("relation exists");
            let new_rows = data.stable.difference_from(device, &table);
            data.stable = data.stable.merge_disjoint(device, &new_rows);
        }
    }

    /// Number of facts currently stored for a relation.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.relations
            .get(relation)
            .map(RelationData::len)
            .unwrap_or(0)
    }

    /// Total number of facts in the database.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(RelationData::len).sum()
    }

    /// Approximate device bytes occupied by all relations.
    pub fn size_bytes(&self) -> usize {
        self.relations
            .values()
            .map(|r| r.stable.size_bytes() + r.recent.size_bytes())
            .sum()
    }

    /// The decoded rows (with tags) of a relation, combining stable and
    /// recent partitions.
    pub fn rows(&self, relation: &str) -> Vec<(Tuple, P::Tag)> {
        let Some(schema) = self.schemas.get(relation) else {
            return Vec::new();
        };
        let Some(data) = self.relations.get(relation) else {
            return Vec::new();
        };
        let mut rows = data.stable.decoded_rows(schema);
        rows.extend(data.recent.decoded_rows(schema));
        rows
    }

    /// Internal access for the executor.
    pub(crate) fn relation_data(&self, relation: &str) -> &RelationData<P> {
        &self.relations[relation]
    }

    /// Internal mutable access for the executor.
    pub(crate) fn relation_data_mut(&mut self, relation: &str) -> &mut RelationData<P> {
        self.relations.get_mut(relation).expect("relation exists")
    }

    /// Clears all facts (schemas are kept). Used between samples.
    pub fn clear_facts(&mut self) {
        for (name, data) in self.relations.iter_mut() {
            let arity = self.schemas[name].arity();
            *data = RelationData::new(arity);
        }
        for (name, (columns, tags)) in self.pending.iter_mut() {
            *columns = vec![Vec::new(); self.schemas[name].arity()];
            tags.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_provenance::{AddMultProb, InputFactId, Provenance, Unit};
    use lobster_ram::ValueType;

    fn schemas() -> BTreeMap<String, RelationSchema> {
        let mut m = BTreeMap::new();
        m.insert(
            "edge".into(),
            RelationSchema::new("edge", vec![ValueType::U32, ValueType::U32]),
        );
        m.insert("flag".into(), RelationSchema::new("flag", vec![]));
        m
    }

    #[test]
    fn insert_and_seal_deduplicates() {
        let device = Device::sequential();
        let mut db = Database::new(schemas(), Unit::new());
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.insert("edge", &[Value::U32(0), Value::U32(1)], ());
        db.seal(&device);
        assert_eq!(db.relation_len("edge"), 2);
        let rows = db.rows("edge");
        assert_eq!(rows[0].0, vec![Value::U32(0), Value::U32(1)]);
        assert_eq!(db.total_facts(), 2);
        assert!(db.size_bytes() > 0);
    }

    #[test]
    fn duplicate_tags_merge_with_disjunction() {
        let device = Device::sequential();
        let prov = AddMultProb::new();
        let mut db = Database::new(schemas(), prov);
        db.insert("edge", &[Value::U32(1), Value::U32(2)], 0.4);
        db.insert("edge", &[Value::U32(1), Value::U32(2)], 0.3);
        db.seal(&device);
        let rows = db.rows("edge");
        assert_eq!(rows.len(), 1);
        assert!((rows[0].1 - 0.7).abs() < 1e-9);
    }

    #[test]
    fn sealing_twice_does_not_duplicate() {
        let device = Device::sequential();
        let mut db = Database::new(schemas(), Unit::new());
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.seal(&device);
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.insert("edge", &[Value::U32(3), Value::U32(4)], ());
        db.seal(&device);
        assert_eq!(db.relation_len("edge"), 2);
    }

    #[test]
    fn nullary_relations_hold_at_most_one_fact() {
        let device = Device::sequential();
        let prov = AddMultProb::new();
        let mut db = Database::new(schemas(), prov);
        let t1 = prov.input_tag(InputFactId(0), Some(0.25));
        let t2 = prov.input_tag(InputFactId(1), Some(0.5));
        db.insert("flag", &[], t1);
        db.insert("flag", &[], t2);
        db.seal(&device);
        let rows = db.rows("flag");
        assert_eq!(rows.len(), 1);
        assert!((rows[0].1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn clear_facts_resets_everything() {
        let device = Device::sequential();
        let mut db = Database::new(schemas(), Unit::new());
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.seal(&device);
        db.clear_facts();
        assert_eq!(db.total_facts(), 0);
        assert!(db.rows("edge").is_empty());
    }

    #[test]
    fn sorted_table_difference_and_merge() {
        let device = Device::sequential();
        let prov = Unit::new();
        let a = SortedTable::from_unsorted(
            &device,
            &prov,
            vec![vec![1, 3], vec![10, 30]],
            vec![(), ()],
        );
        let b = SortedTable::from_unsorted(
            &device,
            &prov,
            vec![vec![1, 2], vec![10, 20]],
            vec![(), ()],
        );
        let new = a.difference_from(&device, &b);
        assert_eq!(new.len(), 1);
        assert_eq!(new.columns[0], vec![2]);
        let merged = a.merge_disjoint(&device, &new);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.columns[0], vec![1, 2, 3]);
    }
}
