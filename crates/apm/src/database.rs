//! The tagged, columnar database held on the (simulated) device.
//!
//! # Narrow, dictionary-encoded storage
//!
//! A database built with [`Database::new_encoded`] stores every relation in
//! *packed* form: a per-database [`SymbolDict`] maps the process-global
//! symbol ids a run actually touches down to dense local ranks, a
//! [`RelationLayout`] fuses adjacent narrow columns (bools, `u32`s, narrowed
//! symbol ids) into shared `u64` group words, and every [`SortedTable`]
//! holds the group columns instead of one full-width column per logical
//! column. Both mappings are order-preserving, so packed tables sort, merge,
//! difference, and deduplicate into exactly the same row order as their
//! full-width equivalents — the kernels never know the difference, they just
//! see fewer columns with fewer significant bytes.
//!
//! Facts still enter ([`Database::insert`]) and leave ([`Database::rows`])
//! in full-width global encoding; the translation happens at
//! [`Database::seal`] / extraction time. When new facts or a new program
//! mention symbols the dictionary has not seen, [`Database::ensure_symbols`]
//! extends it — monotonically, so existing tables re-encode by a cheap
//! decode/re-pack without re-sorting.

use lobster_gpu::kernels::PackLane;
use lobster_gpu::{kernels, par_map_into, Column, Columns, Device};
use lobster_provenance::Provenance;
use lobster_ram::{RelationLayout, RelationSchema, SymbolDict, Tuple, Value, ValueType};
use std::collections::BTreeMap;

/// Arena allocation site for codec scratch (symbol-mapped columns built
/// while encoding); distinct from the executor's sites (100–104).
const CODEC_SITE: usize = 105;

/// Returns dead columns to the device arena (capacity-less vectors are
/// dropped — there is nothing to reuse).
pub(crate) fn recycle_columns(device: &Device, columns: Columns) {
    for col in columns {
        if col.capacity() > 0 {
            device.arena().recycle_shared(col);
        }
    }
}

/// A lexicographically sorted, duplicate-free table: the canonical storage
/// format for a relation partition.
///
/// Tables are stored column-wise (flat `u64` columns plus one tag vector), the
/// layout Section 2.4 argues for: columnar data is cache- and
/// memory-bandwidth-friendly and suits the per-column kernels the relational
/// operators compile to.
#[derive(Debug, Clone)]
pub struct SortedTable<P: Provenance> {
    /// Column data (may be empty for nullary relations).
    pub columns: Columns,
    /// One provenance tag per row.
    pub tags: Vec<P::Tag>,
    arity: usize,
}

impl<P: Provenance> SortedTable<P> {
    /// An empty table of the given arity.
    pub fn empty(arity: usize) -> Self {
        SortedTable {
            columns: vec![Vec::new(); arity],
            tags: Vec::new(),
            arity,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Approximate device bytes occupied by the table.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.len() * 8).sum::<usize>()
            + self.tags.len() * std::mem::size_of::<P::Tag>()
    }

    fn col_refs(&self) -> Vec<&[u64]> {
        self.columns.iter().map(|c| c.as_slice()).collect()
    }

    /// Builds a sorted, deduplicated table from unsorted rows, merging the
    /// tags of duplicate rows with the semiring disjunction. The consumed
    /// input columns and every sorting intermediate are recycled into the
    /// device arena.
    pub fn from_unsorted(device: &Device, prov: &P, columns: Columns, tags: Vec<P::Tag>) -> Self {
        let arity = columns.len();
        if tags.is_empty() {
            recycle_columns(device, columns);
            return Self::empty(arity);
        }
        if arity == 0 {
            // A nullary relation holds at most one fact; fold all tags.
            let mut iter = tags.into_iter();
            let first = iter.next().expect("non-empty tags");
            let folded = iter.fold(first, |acc, t| prov.add(&acc, &t));
            return SortedTable {
                columns: Vec::new(),
                tags: vec![folded],
                arity,
            };
        }
        let refs: Vec<&[u64]> = columns.iter().map(|c| c.as_slice()).collect();
        let perm = kernels::sort_permutation(device, &refs);
        let (sorted_cols, sorted_tags) = kernels::apply_permutation(device, &perm, &refs, &tags);
        device.arena().recycle_shared(perm);
        drop(refs);
        recycle_columns(device, columns);
        let sorted_refs: Vec<&[u64]> = sorted_cols.iter().map(|c| c.as_slice()).collect();
        let (unique_cols, unique_tags) =
            kernels::unique(device, &sorted_refs, &sorted_tags, |a, b| prov.add(a, b));
        drop(sorted_refs);
        recycle_columns(device, sorted_cols);
        SortedTable {
            columns: unique_cols,
            tags: unique_tags,
            arity,
        }
    }

    /// Returns the table's columns to the device arena. Call when the table
    /// is dead and its buffers should feed the next iteration's allocations.
    pub fn recycle(self, device: &Device) {
        recycle_columns(device, self.columns);
    }

    /// Consuming [`SortedTable::merge_disjoint`]: when either side is empty
    /// the other is returned *as is* (no copy, no allocation), and consumed
    /// inputs are recycled into the device arena — the steady-state shape of
    /// the executor's update phase.
    pub fn merge_disjoint_owned(device: &Device, a: SortedTable<P>, b: SortedTable<P>) -> Self {
        if a.is_empty() {
            a.recycle(device);
            return b;
        }
        if b.is_empty() {
            b.recycle(device);
            return a;
        }
        let merged = a.merge_disjoint(device, &b);
        a.recycle(device);
        b.recycle(device);
        merged
    }

    /// Merges two sorted tables whose row sets are disjoint.
    pub fn merge_disjoint(&self, device: &Device, other: &SortedTable<P>) -> SortedTable<P> {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        if self.arity == 0 {
            // Keep a single fact; disjointness means at most one side is
            // non-empty, but fold defensively.
            let mut tags = self.tags.clone();
            tags.extend(other.tags.iter().cloned());
            return SortedTable {
                columns: Vec::new(),
                tags: vec![tags.remove(0)],
                arity: 0,
            };
        }
        let (columns, tags) = kernels::merge(
            device,
            &self.col_refs(),
            &self.tags,
            &other.col_refs(),
            &other.tags,
        );
        SortedTable {
            columns,
            tags,
            arity: self.arity,
        }
    }

    /// Consuming [`SortedTable::difference_from`]: an empty `self` passes
    /// `candidate` through untouched (no copy), and a consumed `candidate`
    /// is recycled into the device arena.
    pub fn difference_from_owned(&self, device: &Device, candidate: SortedTable<P>) -> Self {
        if candidate.is_empty() || self.is_empty() || self.arity == 0 {
            // `difference_from` would clone the (possibly empty) candidate
            // or drop it for nullary relations; consuming avoids the copy.
            if self.arity == 0 && !self.is_empty() {
                candidate.recycle(device);
                return SortedTable::empty(0);
            }
            return candidate;
        }
        let delta = self.difference_from(device, &candidate);
        candidate.recycle(device);
        delta
    }

    /// Rows of `candidate` (sorted) that are not present in `self`.
    pub fn difference_from(&self, device: &Device, candidate: &SortedTable<P>) -> SortedTable<P> {
        if candidate.is_empty() || self.is_empty() {
            return candidate.clone();
        }
        if self.arity == 0 {
            // The fact already exists; nothing is new.
            return SortedTable::empty(0);
        }
        let (columns, tags) = kernels::difference(
            device,
            &candidate.col_refs(),
            &candidate.tags,
            &self.col_refs(),
            self.len(),
        );
        SortedTable {
            columns,
            tags,
            arity: self.arity,
        }
    }

    /// The rows as decoded-value tuples paired with their tags (for result
    /// extraction and tests).
    pub fn decoded_rows(&self, schema: &RelationSchema) -> Vec<(Tuple, P::Tag)> {
        (0..self.len())
            .map(|row| {
                let tuple: Tuple = schema
                    .arg_types
                    .iter()
                    .enumerate()
                    .map(|(c, ty)| Value::decode(self.columns[c][row], *ty))
                    .collect();
                (tuple, self.tags[row].clone())
            })
            .collect()
    }
}

/// What a program contributes to a database's encoding decision: the symbol
/// constants its expressions mention (seeded into the dictionary so constant
/// rewriting always finds a local rank) and whether any expression performs
/// arithmetic at `u32` operand type (which forces `u32` lanes to stay 8
/// bytes wide — the expression machine computes `u32` arithmetic at full
/// word width, so narrowing would change stored bits).
#[derive(Debug, Clone, Default)]
pub struct EncodingSpec {
    /// Global interner ids of every symbol constant in the program (see
    /// `RamProgram::symbol_constants`).
    pub symbol_constants: Vec<u32>,
    /// `true` when the program applies `+ - * / %` or negation at `u32`
    /// type anywhere.
    pub widen_u32: bool,
}

/// The live encoding state of an encoded database: the symbol dictionary
/// plus one planned layout (and its precomputed pack lanes) per relation.
#[derive(Debug, Clone)]
pub(crate) struct Codec {
    pub(crate) dict: SymbolDict,
    widen_u32: bool,
    layouts: BTreeMap<String, RelationLayout>,
    lanes: BTreeMap<String, Vec<Vec<PackLane>>>,
}

impl Codec {
    fn new(schemas: &BTreeMap<String, RelationSchema>, dict: SymbolDict, widen_u32: bool) -> Codec {
        let sym_bytes = dict.width_bytes();
        let u32_bytes = if widen_u32 { 8 } else { 4 };
        let layouts: BTreeMap<String, RelationLayout> = schemas
            .iter()
            .map(|(name, schema)| {
                (
                    name.clone(),
                    RelationLayout::plan(&schema.arg_types, sym_bytes, u32_bytes),
                )
            })
            .collect();
        let lanes = layouts
            .iter()
            .map(|(name, layout)| (name.clone(), Self::pack_lanes(layout)))
            .collect();
        Codec {
            dict,
            widen_u32,
            layouts,
            lanes,
        }
    }

    /// Converts a layout's groups into the gpu kernel's lane spec.
    fn pack_lanes(layout: &RelationLayout) -> Vec<Vec<PackLane>> {
        layout
            .groups
            .iter()
            .map(|g| {
                g.lanes
                    .iter()
                    .map(|l| PackLane {
                        column: l.column,
                        shift: l.shift,
                        mask: l.mask(),
                    })
                    .collect()
            })
            .collect()
    }

    pub(crate) fn layout(&self, relation: &str) -> &RelationLayout {
        &self.layouts[relation]
    }

    /// The pack lanes of a relation, or `None` when its layout is the
    /// identity (callers skip the pack/unpack kernels entirely).
    pub(crate) fn lanes(&self, relation: &str) -> Option<&Vec<Vec<PackLane>>> {
        if self.layouts[relation].is_identity() {
            None
        } else {
            Some(&self.lanes[relation])
        }
    }

    /// Maps a program symbol constant to its local rank.
    pub(crate) fn local_const(&self, global: u32) -> u64 {
        u64::from(
            self.dict
                .local(global)
                .expect("program symbol constant missing from dictionary"),
        )
    }
}

/// Packs full-width columns carrying **global** symbol ids into a
/// relation's group columns with local ranks. Consumes (recycles) the wide
/// input. Identity layouts pass the columns through untouched.
fn encode_wide(
    device: &Device,
    codec: &Codec,
    relation: &str,
    schema: &RelationSchema,
    columns: Columns,
) -> Columns {
    let layout = codec.layout(relation);
    if layout.is_identity() {
        return columns;
    }
    let arena = device.arena();
    // Rewrite symbol columns global → local before packing; other columns
    // pack straight from the input.
    let mut locals: Vec<Option<Column>> = Vec::with_capacity(columns.len());
    for (c, col) in columns.iter().enumerate() {
        if schema.arg_types[c] == ValueType::Symbol {
            let mut local = arena.alloc_zeroed(CODEC_SITE, col.len());
            let dict = &codec.dict;
            par_map_into(device, &mut local, |k| {
                u64::from(
                    dict.local(col[k] as u32)
                        .expect("symbol value missing from dictionary"),
                )
            });
            locals.push(Some(local));
        } else {
            locals.push(None);
        }
    }
    let refs: Vec<&[u64]> = locals
        .iter()
        .zip(columns.iter())
        .map(|(local, col)| local.as_deref().unwrap_or(col.as_slice()))
        .collect();
    let lanes = codec.lanes(relation).expect("non-identity layout");
    let packed = kernels::pack_columns(device, &refs, lanes);
    drop(refs);
    recycle_columns(device, locals.into_iter().flatten().collect());
    recycle_columns(device, columns);
    packed
}

/// Inverse of [`encode_wide`]: unpacks a relation's group columns back to
/// full-width columns carrying **global** symbol ids. The packed input is
/// borrowed; the output is fresh.
fn decode_packed(device: &Device, codec: &Codec, relation: &str, packed: &[Column]) -> Columns {
    let layout = codec.layout(relation);
    if layout.is_identity() {
        return packed.to_vec();
    }
    let refs: Vec<&[u64]> = packed.iter().map(|c| c.as_slice()).collect();
    let lanes = codec.lanes(relation).expect("non-identity layout");
    let mut wide = kernels::unpack_columns(device, &refs, lanes, layout.arity);
    for group in &layout.groups {
        for lane in &group.lanes {
            if lane.symbol {
                for v in wide[lane.column].iter_mut() {
                    *v = u64::from(
                        codec
                            .dict
                            .global(*v as u32)
                            .expect("local rank out of dictionary range"),
                    );
                }
            }
        }
    }
    wide
}

/// Scalar row extraction from a packed table: unpacks each group word and
/// maps symbol ranks back to global ids. Used by [`Database::rows`], which
/// has no [`Device`] at hand — extraction is a cold path.
fn decoded_rows_packed<P: Provenance>(
    table: &SortedTable<P>,
    schema: &RelationSchema,
    codec: &Codec,
    relation: &str,
) -> Vec<(Tuple, P::Tag)> {
    let layout = codec.layout(relation);
    (0..table.len())
        .map(|row| {
            let mut words = vec![0u64; layout.arity];
            for (g, group) in layout.groups.iter().enumerate() {
                let word = table.columns[g][row];
                for (l, lane) in group.lanes.iter().enumerate() {
                    let mut v = group.unpack(word, l);
                    if lane.symbol {
                        v = u64::from(
                            codec
                                .dict
                                .global(v as u32)
                                .expect("local rank out of dictionary range"),
                        );
                    }
                    words[lane.column] = v;
                }
            }
            let tuple: Tuple = schema
                .arg_types
                .iter()
                .enumerate()
                .map(|(c, ty)| Value::decode(words[c], *ty))
                .collect();
            (tuple, table.tags[row].clone())
        })
        .collect()
}

/// The bookkeeping for one relation: the semi-naive partitions plus staged
/// delta candidates produced by `store` instructions during the current
/// iteration.
#[derive(Debug, Clone)]
pub(crate) struct RelationData<P: Provenance> {
    pub(crate) stable: SortedTable<P>,
    pub(crate) recent: SortedTable<P>,
    pub(crate) staged: Vec<(Columns, Vec<P::Tag>)>,
}

impl<P: Provenance> RelationData<P> {
    fn new(arity: usize) -> Self {
        RelationData {
            stable: SortedTable::empty(arity),
            recent: SortedTable::empty(arity),
            staged: Vec::new(),
        }
    }

    /// Total number of facts (stable + recent).
    pub(crate) fn len(&self) -> usize {
        self.stable.len() + self.recent.len()
    }
}

/// The tagged, columnar database: every relation's facts plus the semi-naive
/// partitions used during fix-point execution.
///
/// A database is either *full-width* ([`Database::new`]; every logical
/// column is one `u64` column, values are stored in global encoding) or
/// *encoded* ([`Database::new_encoded`]; relations hold packed group columns
/// under a shared [`SymbolDict`]). The two are observationally identical:
/// [`Database::rows`] returns the same tuples in the same order either way.
#[derive(Debug, Clone)]
pub struct Database<P: Provenance> {
    schemas: BTreeMap<String, RelationSchema>,
    relations: BTreeMap<String, RelationData<P>>,
    pending: BTreeMap<String, (Columns, Vec<P::Tag>)>,
    provenance: P,
    codec: Option<Codec>,
}

impl<P: Provenance> Database<P> {
    /// Creates an empty full-width database for the given schemas.
    pub fn new(schemas: BTreeMap<String, RelationSchema>, provenance: P) -> Self {
        let relations = schemas
            .iter()
            .map(|(name, schema)| (name.clone(), RelationData::new(schema.arity())))
            .collect();
        let pending = schemas
            .iter()
            .map(|(name, schema)| (name.clone(), (vec![Vec::new(); schema.arity()], Vec::new())))
            .collect();
        Database {
            schemas,
            relations,
            pending,
            provenance,
            codec: None,
        }
    }

    /// Creates an empty *encoded* database: relations are stored as packed
    /// group columns under a dictionary seeded with the program's symbol
    /// constants. Facts still go in and come out in full-width global
    /// encoding; see the module docs.
    pub fn new_encoded(
        schemas: BTreeMap<String, RelationSchema>,
        provenance: P,
        spec: &EncodingSpec,
    ) -> Self {
        let dict = SymbolDict::from_globals(spec.symbol_constants.clone());
        let codec = Codec::new(&schemas, dict, spec.widen_u32);
        let relations = schemas
            .keys()
            .map(|name| {
                (
                    name.clone(),
                    RelationData::new(codec.layout(name).packed_arity()),
                )
            })
            .collect();
        let pending = schemas
            .iter()
            .map(|(name, schema)| (name.clone(), (vec![Vec::new(); schema.arity()], Vec::new())))
            .collect();
        Database {
            schemas,
            relations,
            pending,
            provenance,
            codec: Some(codec),
        }
    }

    /// The active codec, if this database is encoded.
    pub(crate) fn codec(&self) -> Option<&Codec> {
        self.codec.as_ref()
    }

    /// `true` when relations are stored in packed, dictionary-encoded form.
    pub fn is_encoded(&self) -> bool {
        self.codec.is_some()
    }

    /// The number of physical (stored) columns of a relation: the packed
    /// group count when encoded, the logical arity otherwise.
    #[cfg(test)]
    pub(crate) fn storage_arity(&self, relation: &str) -> usize {
        match self.codec.as_ref() {
            Some(codec) => codec.layout(relation).packed_arity(),
            None => self.schemas[relation].arity(),
        }
    }

    /// Extends the dictionary to cover `globals`, re-encoding every stored
    /// table under the extended dictionary. No-op for full-width databases
    /// or when everything is already covered.
    ///
    /// Re-encoding never re-sorts: dictionary extension is monotone
    /// ([`SymbolDict::extend`]), so local rank order — and therefore packed
    /// row order — is unchanged by the remap.
    pub fn ensure_symbols(&mut self, device: &Device, globals: impl IntoIterator<Item = u32>) {
        let Some(codec) = self.codec.as_ref() else {
            return;
        };
        let missing: Vec<u32> = globals
            .into_iter()
            .filter(|g| codec.dict.local(*g).is_none())
            .collect();
        if missing.is_empty() {
            return;
        }
        let (dict, _remap) = codec.dict.extend(missing);
        let next = Codec::new(&self.schemas, dict, codec.widen_u32);
        let old = self.codec.take().expect("codec present");
        for (name, data) in self.relations.iter_mut() {
            debug_assert!(
                data.staged.is_empty(),
                "dictionary extension with staged rows in `{name}`"
            );
            let schema = &self.schemas[name];
            let packed_arity = next.layout(name).packed_arity();
            for table in [&mut data.stable, &mut data.recent] {
                let re = if table.is_empty() {
                    SortedTable::empty(packed_arity)
                } else {
                    let wide = decode_packed(device, &old, name, &table.columns);
                    let packed = encode_wide(device, &next, name, schema, wide);
                    SortedTable {
                        columns: packed,
                        tags: std::mem::take(&mut table.tags),
                        arity: packed_arity,
                    }
                };
                let dead = std::mem::replace(table, re);
                dead.recycle(device);
            }
        }
        self.codec = Some(next);
    }

    /// Builds a sorted table in this database's storage encoding from
    /// full-width columns carrying global symbol ids: extends the dictionary
    /// over the columns' symbol values, packs, then sorts/deduplicates. On a
    /// full-width database this is plain [`SortedTable::from_unsorted`].
    pub(crate) fn encoded_from_unsorted(
        &mut self,
        device: &Device,
        relation: &str,
        columns: Columns,
        tags: Vec<P::Tag>,
    ) -> SortedTable<P> {
        let prov = self.provenance.clone();
        if self.codec.is_none() {
            return SortedTable::from_unsorted(device, &prov, columns, tags);
        }
        let mut syms: Vec<u32> = Vec::new();
        for (c, ty) in self.schemas[relation].arg_types.iter().enumerate() {
            if *ty == ValueType::Symbol {
                syms.extend(columns[c].iter().map(|v| *v as u32));
            }
        }
        self.ensure_symbols(device, syms);
        let codec = self.codec.as_ref().expect("codec present");
        let packed = encode_wide(device, codec, relation, &self.schemas[relation], columns);
        SortedTable::from_unsorted(device, &prov, packed, tags)
    }

    /// The provenance context used by this database.
    pub fn provenance(&self) -> &P {
        &self.provenance
    }

    /// The schema of a relation.
    pub fn schema(&self, relation: &str) -> Option<&RelationSchema> {
        self.schemas.get(relation)
    }

    /// All relation names.
    pub fn relation_names(&self) -> Vec<String> {
        self.schemas.keys().cloned().collect()
    }

    /// Inserts one fact (encoded values) with its tag. The fact becomes
    /// visible after the next [`Database::seal`].
    ///
    /// # Panics
    ///
    /// Panics if the relation is unknown or the row arity does not match the
    /// schema.
    pub fn insert_encoded(&mut self, relation: &str, row: &[u64], tag: P::Tag) {
        let (columns, tags) = self
            .pending
            .get_mut(relation)
            .unwrap_or_else(|| panic!("unknown relation `{relation}`"));
        assert_eq!(
            columns.len(),
            row.len(),
            "arity mismatch inserting into `{relation}`"
        );
        for (col, v) in columns.iter_mut().zip(row) {
            col.push(*v);
        }
        tags.push(tag);
    }

    /// Inserts one fact given as [`Value`]s.
    pub fn insert(&mut self, relation: &str, values: &[Value], tag: P::Tag) {
        let row: Vec<u64> = values.iter().map(Value::encode).collect();
        self.insert_encoded(relation, &row, tag);
    }

    /// Folds all pending inserts into the stable partitions. Pending facts
    /// arrive in full-width global encoding; on an encoded database they are
    /// packed here (extending the dictionary first if they mention new
    /// symbols).
    pub fn seal(&mut self, device: &Device) {
        let names: Vec<String> = self.pending.keys().cloned().collect();
        for name in names {
            let arity = self.schemas[&name].arity();
            let (columns, tags) = self.pending.get_mut(&name).expect("relation exists");
            if tags.is_empty() {
                continue;
            }
            let columns = std::mem::replace(columns, vec![Vec::new(); arity]);
            let tags = std::mem::take(tags);
            let table = self.encoded_from_unsorted(device, &name, columns, tags);
            let data = self.relations.get_mut(&name).expect("relation exists");
            let new_rows = data.stable.difference_from(device, &table);
            data.stable = data.stable.merge_disjoint(device, &new_rows);
            table.recycle(device);
        }
    }

    /// Number of facts currently stored for a relation.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.relations
            .get(relation)
            .map(RelationData::len)
            .unwrap_or(0)
    }

    /// Total number of facts in the database.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(RelationData::len).sum()
    }

    /// Approximate device bytes occupied by all relations.
    pub fn size_bytes(&self) -> usize {
        self.relations
            .values()
            .map(|r| r.stable.size_bytes() + r.recent.size_bytes())
            .sum()
    }

    /// The decoded rows (with tags) of a relation, combining stable and
    /// recent partitions. Encoded databases unpack and translate back to
    /// global symbol ids here, so callers see identical tuples either way.
    pub fn rows(&self, relation: &str) -> Vec<(Tuple, P::Tag)> {
        let Some(schema) = self.schemas.get(relation) else {
            return Vec::new();
        };
        let Some(data) = self.relations.get(relation) else {
            return Vec::new();
        };
        match self.codec.as_ref() {
            Some(codec) if !codec.layout(relation).is_identity() => {
                let mut rows = decoded_rows_packed(&data.stable, schema, codec, relation);
                rows.extend(decoded_rows_packed(&data.recent, schema, codec, relation));
                rows
            }
            _ => {
                let mut rows = data.stable.decoded_rows(schema);
                rows.extend(data.recent.decoded_rows(schema));
                rows
            }
        }
    }

    /// Internal access for the executor.
    pub(crate) fn relation_data(&self, relation: &str) -> &RelationData<P> {
        &self.relations[relation]
    }

    /// Internal mutable access for the executor.
    pub(crate) fn relation_data_mut(&mut self, relation: &str) -> &mut RelationData<P> {
        self.relations.get_mut(relation).expect("relation exists")
    }

    /// Clears all facts (schemas — and the dictionary, which only grows —
    /// are kept). Used between samples.
    pub fn clear_facts(&mut self) {
        for (name, data) in self.relations.iter_mut() {
            let arity = match self.codec.as_ref() {
                Some(codec) => codec.layout(name).packed_arity(),
                None => self.schemas[name].arity(),
            };
            *data = RelationData::new(arity);
        }
        for (name, (columns, tags)) in self.pending.iter_mut() {
            *columns = vec![Vec::new(); self.schemas[name].arity()];
            tags.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_provenance::{AddMultProb, InputFactId, Provenance, Unit};
    use lobster_ram::ValueType;

    fn schemas() -> BTreeMap<String, RelationSchema> {
        let mut m = BTreeMap::new();
        m.insert(
            "edge".into(),
            RelationSchema::new("edge", vec![ValueType::U32, ValueType::U32]),
        );
        m.insert("flag".into(), RelationSchema::new("flag", vec![]));
        m
    }

    #[test]
    fn insert_and_seal_deduplicates() {
        let device = Device::sequential();
        let mut db = Database::new(schemas(), Unit::new());
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.insert("edge", &[Value::U32(0), Value::U32(1)], ());
        db.seal(&device);
        assert_eq!(db.relation_len("edge"), 2);
        let rows = db.rows("edge");
        assert_eq!(rows[0].0, vec![Value::U32(0), Value::U32(1)]);
        assert_eq!(db.total_facts(), 2);
        assert!(db.size_bytes() > 0);
    }

    #[test]
    fn duplicate_tags_merge_with_disjunction() {
        let device = Device::sequential();
        let prov = AddMultProb::new();
        let mut db = Database::new(schemas(), prov);
        db.insert("edge", &[Value::U32(1), Value::U32(2)], 0.4);
        db.insert("edge", &[Value::U32(1), Value::U32(2)], 0.3);
        db.seal(&device);
        let rows = db.rows("edge");
        assert_eq!(rows.len(), 1);
        assert!((rows[0].1 - 0.7).abs() < 1e-9);
    }

    #[test]
    fn sealing_twice_does_not_duplicate() {
        let device = Device::sequential();
        let mut db = Database::new(schemas(), Unit::new());
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.seal(&device);
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.insert("edge", &[Value::U32(3), Value::U32(4)], ());
        db.seal(&device);
        assert_eq!(db.relation_len("edge"), 2);
    }

    #[test]
    fn nullary_relations_hold_at_most_one_fact() {
        let device = Device::sequential();
        let prov = AddMultProb::new();
        let mut db = Database::new(schemas(), prov);
        let t1 = prov.input_tag(InputFactId(0), Some(0.25));
        let t2 = prov.input_tag(InputFactId(1), Some(0.5));
        db.insert("flag", &[], t1);
        db.insert("flag", &[], t2);
        db.seal(&device);
        let rows = db.rows("flag");
        assert_eq!(rows.len(), 1);
        assert!((rows[0].1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn clear_facts_resets_everything() {
        let device = Device::sequential();
        let mut db = Database::new(schemas(), Unit::new());
        db.insert("edge", &[Value::U32(1), Value::U32(2)], ());
        db.seal(&device);
        db.clear_facts();
        assert_eq!(db.total_facts(), 0);
        assert!(db.rows("edge").is_empty());
    }

    #[test]
    fn sorted_table_difference_and_merge() {
        let device = Device::sequential();
        let prov = Unit::new();
        let a = SortedTable::from_unsorted(
            &device,
            &prov,
            vec![vec![1, 3], vec![10, 30]],
            vec![(), ()],
        );
        let b = SortedTable::from_unsorted(
            &device,
            &prov,
            vec![vec![1, 2], vec![10, 20]],
            vec![(), ()],
        );
        let new = a.difference_from(&device, &b);
        assert_eq!(new.len(), 1);
        assert_eq!(new.columns[0], vec![2]);
        let merged = a.merge_disjoint(&device, &new);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.columns[0], vec![1, 2, 3]);
    }

    fn sym_schemas() -> BTreeMap<String, RelationSchema> {
        let mut m = BTreeMap::new();
        m.insert(
            "likes".into(),
            RelationSchema::new("likes", vec![ValueType::Symbol, ValueType::Symbol]),
        );
        m.insert(
            "edge".into(),
            RelationSchema::new("edge", vec![ValueType::U32, ValueType::U32]),
        );
        m
    }

    #[test]
    fn encoded_database_matches_full_width_rows() {
        let device = Device::sequential();
        let spec = EncodingSpec {
            symbol_constants: vec![900],
            widen_u32: false,
        };
        let mut wide = Database::new(sym_schemas(), Unit::new());
        let mut packed = Database::new_encoded(sym_schemas(), Unit::new(), &spec);
        assert!(packed.is_encoded());
        assert!(!wide.is_encoded());
        // Global ids deliberately large and sparse: the dictionary narrows
        // them to ranks regardless of magnitude.
        let facts = [
            (1_000_000u32, 5u32),
            (5, 1_000_000),
            (900, 900),
            (5, 5),
            (1_000_000, 900),
        ];
        for db in [&mut wide, &mut packed] {
            for (a, b) in facts {
                db.insert("likes", &[Value::Symbol(a), Value::Symbol(b)], ());
            }
            db.insert("edge", &[Value::U32(7), Value::U32(8)], ());
            db.seal(&device);
        }
        // Bit-identical extraction: same tuples in the same order.
        assert_eq!(wide.rows("likes"), packed.rows("likes"));
        assert_eq!(wide.rows("edge"), packed.rows("edge"));
        // Two symbol columns (1 byte each) pack into one physical column;
        // two u32 columns share one word.
        assert_eq!(packed.storage_arity("likes"), 1);
        assert_eq!(packed.storage_arity("edge"), 1);
        assert_eq!(wide.storage_arity("likes"), 2);
        assert!(packed.size_bytes() < wide.size_bytes());
    }

    #[test]
    fn dictionary_extension_reencodes_without_resorting() {
        let device = Device::sequential();
        let spec = EncodingSpec::default();
        let mut db = Database::new_encoded(sym_schemas(), Unit::new(), &spec);
        db.insert("likes", &[Value::Symbol(50), Value::Symbol(10)], ());
        db.seal(&device);
        // Second seal brings symbols below and above the existing ids: every
        // stored rank shifts, but row order must be preserved.
        db.insert("likes", &[Value::Symbol(5), Value::Symbol(99)], ());
        db.insert("likes", &[Value::Symbol(50), Value::Symbol(5)], ());
        db.seal(&device);
        let rows: Vec<_> = db.rows("likes").into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            rows,
            vec![
                vec![Value::Symbol(5), Value::Symbol(99)],
                vec![Value::Symbol(50), Value::Symbol(5)],
                vec![Value::Symbol(50), Value::Symbol(10)],
            ]
        );
        // Sealing the same fact again after extension still deduplicates.
        db.insert("likes", &[Value::Symbol(50), Value::Symbol(10)], ());
        db.seal(&device);
        assert_eq!(db.relation_len("likes"), 3);
    }

    #[test]
    fn widened_u32_lanes_stay_full_width() {
        let spec = EncodingSpec {
            symbol_constants: Vec::new(),
            widen_u32: true,
        };
        let db: Database<Unit> = Database::new_encoded(sym_schemas(), Unit::new(), &spec);
        // With u32 arithmetic in play, u32 lanes cannot narrow: `edge`
        // stays two full-width columns.
        assert_eq!(db.storage_arity("edge"), 2);
        // Symbol columns still narrow.
        assert_eq!(db.storage_arity("likes"), 1);
    }

    #[test]
    fn encoded_clear_facts_keeps_packed_arity() {
        let device = Device::sequential();
        let mut db = Database::new_encoded(sym_schemas(), Unit::new(), &EncodingSpec::default());
        db.insert("likes", &[Value::Symbol(3), Value::Symbol(4)], ());
        db.seal(&device);
        db.clear_facts();
        assert_eq!(db.total_facts(), 0);
        db.insert("likes", &[Value::Symbol(3), Value::Symbol(4)], ());
        db.seal(&device);
        assert_eq!(db.rows("likes").len(), 1);
    }
}
