//! The RAM → APM compiler (paper Section 3.3 and Appendix A).
//!
//! Each stratum of a RAM program is flattened into a straight-line APM
//! program that is executed once per fix-point iteration. The compiler:
//!
//! * expands every rule into its semi-naive variants over the stable /
//!   recent / all partitions of the database, so only the frontier of newly
//!   derived facts drives each iteration (Section 3.4);
//! * lowers project and select to `eval` (row-level parallelism), joins to
//!   the `build`/`count`/`scan`/`join`/`gather` sequence of Figure 6, unions
//!   to `append`, and products to a dedicated instruction;
//! * marks hash indices whose build side is iteration-invariant as *static
//!   registers* so they are built once and reused (Section 4.2) — the
//!   "linear recursion" case that covers nearly all programs in the paper's
//!   evaluation.

use crate::config::RuntimeOptions;
use crate::isa::{ApmProgram, DbPart, Instr, RegId};
use lobster_ram::passes::{join_strategy, projection_sorted_prefix, JoinStrategy};
use lobster_ram::{RamExpr, RamProgram, RamRule, RowProjection, ScalarExpr, Stratum};
use std::collections::BTreeSet;

/// The result of compiling one stratum.
#[derive(Debug, Clone)]
pub struct CompiledStratum {
    /// The APM program executed each iteration.
    pub program: ApmProgram,
    /// Relations updated by the stratum.
    pub relations: Vec<String>,
    /// Whether the stratum requires fix-point iteration.
    pub recursive: bool,
    /// Join sites compiled to the merge path (across all semi-naive
    /// variants).
    pub merge_joins: usize,
    /// Join sites compiled to the hash build+probe path.
    pub hash_joins: usize,
}

struct Compiler<'a> {
    ram: &'a RamProgram,
    own_relations: BTreeSet<String>,
    instructions: Vec<Instr>,
    first_iteration_only: Vec<bool>,
    static_registers: Vec<RegId>,
    next_reg: u32,
    current_first_only: bool,
    merge_join_enabled: bool,
    merge_joins: usize,
    hash_joins: usize,
}

/// The value flowing out of [`Compiler::compile_expr`]: the registers of a
/// table plus the statically known sorted column prefix of its rows (the
/// fact the join-strategy decision consumes).
struct Compiled {
    columns: Vec<RegId>,
    tags: RegId,
    sorted_prefix: usize,
}

impl<'a> Compiler<'a> {
    fn fresh(&mut self) -> RegId {
        let reg = RegId(self.next_reg);
        self.next_reg += 1;
        reg
    }

    fn fresh_n(&mut self, n: usize) -> Vec<RegId> {
        (0..n).map(|_| self.fresh()).collect()
    }

    fn emit(&mut self, instr: Instr) {
        self.instructions.push(instr);
        self.first_iteration_only.push(self.current_first_only);
    }

    fn arity(&self, expr: &RamExpr) -> usize {
        expr.arity(&|name| self.ram.arity(name))
            .expect("validated program has known arities")
    }

    /// Whether an expression depends on a relation defined in this stratum.
    fn is_recursive_expr(&self, expr: &RamExpr) -> bool {
        let mut refs = Vec::new();
        expr.referenced_relations(&mut refs);
        refs.iter().any(|r| self.own_relations.contains(r))
    }

    /// Leaf `Relation` occurrences that refer to this stratum's relations, in
    /// traversal order.
    fn recursive_leaf_count(&self, expr: &RamExpr) -> usize {
        let mut count = 0;
        expr.visit(&mut |e| {
            if let RamExpr::Relation(name) = e {
                if self.own_relations.contains(name) {
                    count += 1;
                }
            }
        });
        count
    }

    /// Compiles an expression. `parts` assigns a database partition to each
    /// recursive leaf (indexed by `next_recursive_leaf`); non-recursive
    /// leaves always load the full relation.
    ///
    /// Alongside the output registers, the compiler tracks the sorted column
    /// prefix of each intermediate table (mirroring
    /// `lobster_ram::passes::expr_sorted_prefix`, but with exact per-variant
    /// partition knowledge): a single-partition load is fully sorted because
    /// tables are stored sorted, and a full (`all`) load of a relation this
    /// stratum does *not* update is fully sorted too — its recent half is
    /// empty once the defining stratum reached its fix point, so the
    /// concatenation is just the sorted stable half.
    fn compile_expr(
        &mut self,
        expr: &RamExpr,
        parts: &[DbPart],
        next_recursive_leaf: &mut usize,
    ) -> Compiled {
        match expr {
            RamExpr::Relation(name) => {
                let own = self.own_relations.contains(name);
                let part = if own {
                    let part = parts[*next_recursive_leaf];
                    *next_recursive_leaf += 1;
                    part
                } else {
                    DbPart::All
                };
                let arity = self.ram.arity(name).expect("relation arity");
                let columns = self.fresh_n(arity);
                let tags = self.fresh();
                self.emit(Instr::Load {
                    relation: name.clone(),
                    part,
                    columns: columns.clone(),
                    tags,
                });
                let sorted_prefix = if part != DbPart::All || !own {
                    arity
                } else {
                    // `all` on an own relation concatenates two sorted
                    // halves, which is not sorted overall.
                    0
                };
                Compiled {
                    columns,
                    tags,
                    sorted_prefix,
                }
            }
            RamExpr::Project { input, proj } => {
                let input = self.compile_expr(input, parts, next_recursive_leaf);
                let outputs = self.fresh_n(proj.output_arity());
                let output_tags = self.fresh();
                self.emit(Instr::Eval {
                    inputs: input.columns,
                    input_tags: input.tags,
                    projection: proj.clone(),
                    outputs: outputs.clone(),
                    output_tags,
                });
                Compiled {
                    columns: outputs,
                    tags: output_tags,
                    sorted_prefix: projection_sorted_prefix(proj, input.sorted_prefix),
                }
            }
            RamExpr::Select { input, cond } => {
                let arity = self.arity(input);
                let input = self.compile_expr(input, parts, next_recursive_leaf);
                let projection = RowProjection::new(
                    (0..arity).map(ScalarExpr::Col).collect(),
                    Some(cond.clone()),
                );
                let outputs = self.fresh_n(arity);
                let output_tags = self.fresh();
                self.emit(Instr::Eval {
                    inputs: input.columns,
                    input_tags: input.tags,
                    projection,
                    outputs: outputs.clone(),
                    output_tags,
                });
                Compiled {
                    columns: outputs,
                    tags: output_tags,
                    // Selection drops rows without reordering them.
                    sorted_prefix: input.sorted_prefix,
                }
            }
            RamExpr::Join { left, right, width } => {
                self.compile_join(left, right, *width, parts, next_recursive_leaf)
            }
            RamExpr::Intersect(left, right) => {
                // a ∩ b is a join on every column followed by keeping the
                // left row (which the join output convention already does).
                let width = self.arity(left);
                self.compile_join(left, right, width, parts, next_recursive_leaf)
            }
            RamExpr::Union(left, right) => {
                let l = self.compile_expr(left, parts, next_recursive_leaf);
                let r = self.compile_expr(right, parts, next_recursive_leaf);
                let outputs = self.fresh_n(l.columns.len());
                let output_tags = self.fresh();
                self.emit(Instr::Append {
                    inputs: vec![(l.columns, l.tags), (r.columns, r.tags)],
                    outputs: outputs.clone(),
                    output_tags,
                });
                Compiled {
                    columns: outputs,
                    tags: output_tags,
                    sorted_prefix: 0,
                }
            }
            RamExpr::Product(left, right) => {
                let l = self.compile_expr(left, parts, next_recursive_leaf);
                let r = self.compile_expr(right, parts, next_recursive_leaf);
                let outputs = self.fresh_n(l.columns.len() + r.columns.len());
                let output_tags = self.fresh();
                self.emit(Instr::Product {
                    left: l.columns,
                    left_tags: l.tags,
                    right: r.columns,
                    right_tags: r.tags,
                    outputs: outputs.clone(),
                    output_tags,
                });
                Compiled {
                    columns: outputs,
                    tags: output_tags,
                    sorted_prefix: 0,
                }
            }
        }
    }

    /// Compiles `left ⊲⊳_w right`. When sort-order inference proves both
    /// inputs sorted on the key prefix (and the option is enabled), emits
    /// the merge-path sequence `mergecount`/`scan`/`mergejoin` — no hash
    /// index is built at all. Otherwise emits the hash-join sequence of
    /// Figure 6. The two paths produce bit-identical index pairs, so the
    /// choice is invisible downstream.
    fn compile_join(
        &mut self,
        left: &RamExpr,
        right: &RamExpr,
        width: usize,
        parts: &[DbPart],
        next_recursive_leaf: &mut usize,
    ) -> Compiled {
        let l = self.compile_expr(left, parts, next_recursive_leaf);
        let r = self.compile_expr(right, parts, next_recursive_leaf);

        // Build the hash index on the side that does not depend on the
        // stratum's own relations when possible: that index is identical on
        // every iteration, so it can live in a static register and be reused
        // (the linear-recursion optimization of Section 4.2).
        let left_recursive = self.is_recursive_expr(left);
        let right_recursive = self.is_recursive_expr(right);
        let build_left = !left_recursive && right_recursive;
        let static_ = if build_left {
            !left_recursive
        } else {
            !right_recursive
        };

        let (build_cols, build_tags, probe_cols, probe_tags) = if build_left {
            (&l.columns, l.tags, &r.columns, r.tags)
        } else {
            (&r.columns, r.tags, &l.columns, l.tags)
        };

        let strategy = if self.merge_join_enabled {
            join_strategy(l.sorted_prefix, r.sorted_prefix, width)
        } else {
            JoinStrategy::Hash
        };

        let counts = self.fresh();
        let offsets = self.fresh();
        let build_indices = self.fresh();
        let probe_indices = self.fresh();
        match strategy {
            JoinStrategy::Merge => {
                self.merge_joins += 1;
                self.emit(Instr::MergeCount {
                    build_keys: build_cols[..width].to_vec(),
                    probe_keys: probe_cols[..width].to_vec(),
                    counts,
                });
                self.emit(Instr::Scan { counts, offsets });
                self.emit(Instr::MergeJoin {
                    build_keys: build_cols[..width].to_vec(),
                    probe_keys: probe_cols[..width].to_vec(),
                    counts,
                    offsets,
                    build_indices,
                    probe_indices,
                });
            }
            JoinStrategy::Hash => {
                self.hash_joins += 1;
                let index = self.fresh();
                if static_ {
                    self.static_registers.push(index);
                }
                self.emit(Instr::Build {
                    keys: build_cols[..width].to_vec(),
                    index,
                    static_,
                });
                self.emit(Instr::Count {
                    index,
                    probe_keys: probe_cols[..width].to_vec(),
                    counts,
                });
                self.emit(Instr::Scan { counts, offsets });
                self.emit(Instr::Join {
                    index,
                    probe_keys: probe_cols[..width].to_vec(),
                    counts,
                    offsets,
                    build_indices,
                    probe_indices,
                });
            }
        }

        // Gather the output table: the full left row, then the non-key
        // columns of the right row.
        let (left_indices, right_indices) = if build_left {
            (build_indices, probe_indices)
        } else {
            (probe_indices, build_indices)
        };
        let out_left = self.fresh_n(l.columns.len());
        self.emit(Instr::Gather {
            indices: left_indices,
            sources: l.columns.clone(),
            destinations: out_left.clone(),
        });
        let out_right = self.fresh_n(r.columns.len() - width);
        if !out_right.is_empty() {
            self.emit(Instr::Gather {
                indices: right_indices,
                sources: r.columns[width..].to_vec(),
                destinations: out_right.clone(),
            });
        }
        let output_tags = self.fresh();
        self.emit(Instr::GatherMulTags {
            left_indices,
            right_indices,
            left_tags: if build_left { build_tags } else { probe_tags },
            right_tags: if build_left { probe_tags } else { build_tags },
            output: output_tags,
        });

        let mut outputs = out_left;
        outputs.extend(out_right);
        Compiled {
            columns: outputs,
            tags: output_tags,
            sorted_prefix: 0,
        }
    }

    /// Compiles one rule, expanding it into its semi-naive variants.
    fn compile_rule(&mut self, rule: &RamRule, recursive_stratum: bool) {
        let recursive_leaves = self.recursive_leaf_count(&rule.expr);
        let variants: Vec<(Vec<DbPart>, bool)> = if !recursive_stratum || recursive_leaves == 0 {
            // Base rules only need to run while the initial facts are still
            // the frontier (the first iteration).
            vec![(Vec::new(), recursive_stratum)]
        } else {
            (0..recursive_leaves)
                .map(|i| {
                    let parts = (0..recursive_leaves)
                        .map(|j| {
                            if j < i {
                                DbPart::Stable
                            } else if j == i {
                                DbPart::Recent
                            } else {
                                DbPart::All
                            }
                        })
                        .collect();
                    (parts, false)
                })
                .collect()
        };
        for (parts, first_only) in variants {
            self.current_first_only = first_only;
            let mut next_leaf = 0;
            let compiled = self.compile_expr(&rule.expr, &parts, &mut next_leaf);
            self.emit(Instr::Store {
                relation: rule.target.clone(),
                columns: compiled.columns,
                tags: compiled.tags,
            });
            self.current_first_only = false;
        }
    }
}

/// Compiles a RAM stratum into an APM program with default options
/// (merge-path joins enabled).
pub fn compile_stratum(stratum: &Stratum, ram: &RamProgram) -> CompiledStratum {
    compile_stratum_with_options(stratum, ram, &RuntimeOptions::default())
}

/// Compiles a stratum for *incremental* (delta) re-evaluation after some of
/// its input relations gained new facts.
///
/// The semi-naive variant expansion is widened: the tracked set is the
/// stratum's own relations **plus** `changed_inputs`, so every leaf over a
/// changed relation participates in the stable/recent/all partitioning. The
/// caller seeds the `recent` partition of each changed input with the newly
/// inserted rows (and of each own relation with its new EDB rows) and runs
/// the program with [`Executor::run_stratum_seeded`]; derivations touching
/// at least one new fact are then produced by the recent-part variants while
/// derivations over purely old facts — already materialized — are never
/// recomputed. Rules with no tracked leaf are dropped outright: their
/// derivations cannot have changed.
///
/// Two deliberate differences from [`compile_stratum`]:
///
/// * every rule with a tracked leaf gets the full variant expansion even in
///   a non-recursive stratum (the base-rule "first iteration only" shortcut
///   assumes the whole database is the frontier, which is exactly what a
///   delta run avoids);
/// * the compiled stratum is always marked recursive, so the executor
///   iterates until the insertion frontier drains instead of stopping after
///   one pass.
///
/// `stored_relations`/`relations` stay the stratum's own relations: the
/// executor's update phase folds frontiers for those only, leaving the
/// caller-managed splits of the changed input relations untouched.
///
/// [`Executor::run_stratum_seeded`]: crate::Executor::run_stratum_seeded
pub fn compile_stratum_delta(
    stratum: &Stratum,
    ram: &RamProgram,
    changed_inputs: &BTreeSet<String>,
) -> CompiledStratum {
    let mut tracked: BTreeSet<String> = stratum.relations.iter().cloned().collect();
    tracked.extend(changed_inputs.iter().cloned());
    let options = RuntimeOptions::default();
    let mut compiler = Compiler {
        ram,
        own_relations: tracked,
        instructions: Vec::new(),
        first_iteration_only: Vec::new(),
        static_registers: Vec::new(),
        next_reg: 0,
        current_first_only: false,
        merge_join_enabled: options.merge_join,
        merge_joins: 0,
        hash_joins: 0,
    };
    for rule in &stratum.rules {
        if compiler.recursive_leaf_count(&rule.expr) == 0 {
            // No leaf over a changed relation: every derivation of this rule
            // is already in the materialized stable set.
            continue;
        }
        compiler.compile_rule(rule, true);
    }
    let program = ApmProgram {
        instructions: compiler.instructions,
        first_iteration_only: compiler.first_iteration_only,
        register_count: compiler.next_reg,
        static_registers: compiler.static_registers,
        stored_relations: stratum.relations.clone(),
    };
    CompiledStratum {
        program,
        relations: stratum.relations.clone(),
        recursive: true,
        merge_joins: compiler.merge_joins,
        hash_joins: compiler.hash_joins,
    }
}

/// Compiles a RAM stratum into an APM program, honouring the join-strategy
/// toggles in `options`.
///
/// Under `debug_assertions` the whole source program is re-validated first
/// (`lobster_ram::passes::validate_program`), so a malformed rewrite
/// panics at compile time with rule provenance instead of surfacing as
/// executor misbehaviour mid-request.
pub fn compile_stratum_with_options(
    stratum: &Stratum,
    ram: &RamProgram,
    options: &RuntimeOptions,
) -> CompiledStratum {
    #[cfg(debug_assertions)]
    if let Err(errors) = lobster_ram::passes::validate_program(ram) {
        let rendered: Vec<String> = errors.iter().map(ToString::to_string).collect();
        panic!(
            "invalid RAM program reached the compiler:\n{}",
            rendered.join("\n")
        );
    }
    let mut compiler = Compiler {
        ram,
        own_relations: stratum.relations.iter().cloned().collect(),
        instructions: Vec::new(),
        first_iteration_only: Vec::new(),
        static_registers: Vec::new(),
        next_reg: 0,
        current_first_only: false,
        merge_join_enabled: options.merge_join,
        merge_joins: 0,
        hash_joins: 0,
    };
    for rule in &stratum.rules {
        compiler.compile_rule(rule, stratum.recursive);
    }
    let program = ApmProgram {
        instructions: compiler.instructions,
        first_iteration_only: compiler.first_iteration_only,
        register_count: compiler.next_reg,
        static_registers: compiler.static_registers,
        stored_relations: stratum.relations.clone(),
    };
    CompiledStratum {
        program,
        relations: stratum.relations.clone(),
        recursive: stratum.recursive,
        merge_joins: compiler.merge_joins,
        hash_joins: compiler.hash_joins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_datalog::parse;

    fn transitive_closure() -> (lobster_ram::RamProgram, Stratum) {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
             query path",
        )
        .unwrap();
        let stratum = compiled.ram.strata[0].clone();
        (compiled.ram, stratum)
    }

    #[test]
    fn base_rule_is_first_iteration_only() {
        let (ram, stratum) = transitive_closure();
        let compiled = compile_stratum(&stratum, &ram);
        assert!(compiled.recursive);
        // At least one instruction is first-iteration-only (the base rule)
        // and at least one is not (the recursive rule).
        assert!(compiled.program.first_iteration_only.iter().any(|&b| b));
        assert!(compiled.program.first_iteration_only.iter().any(|&b| !b));
    }

    #[test]
    fn recursive_join_builds_static_index_on_edb_side() {
        let (ram, stratum) = transitive_closure();
        let compiled = compile_stratum(&stratum, &ram);
        // The join against the EDB `edge` relation should produce a static
        // index register.
        assert!(!compiled.program.static_registers.is_empty());
        let builds: Vec<_> = compiled
            .program
            .instructions
            .iter()
            .filter(|i| matches!(i, Instr::Build { .. }))
            .collect();
        assert!(!builds.is_empty());
        assert!(builds
            .iter()
            .any(|b| matches!(b, Instr::Build { static_: true, .. })));
    }

    #[test]
    fn program_contains_expected_instruction_mix() {
        let (ram, stratum) = transitive_closure();
        let compiled = compile_stratum(&stratum, &ram);
        let mnemonics: Vec<&str> = compiled
            .program
            .instructions
            .iter()
            .map(Instr::mnemonic)
            .collect();
        for expected in [
            "load",
            "store",
            "build",
            "count",
            "scan",
            "join",
            "gather",
            "gather_mul",
        ] {
            assert!(
                mnemonics.contains(&expected),
                "missing `{expected}` in {mnemonics:?}"
            );
        }
        assert!(compiled.program.register_count > 0);
        assert!(!compiled.program.listing().is_empty());
    }

    #[test]
    fn nonrecursive_stratum_has_single_variant() {
        let compiled = parse(
            "type a(x: u32)
             type b(x: u32)
             rel both(x) = a(x), b(x)",
        )
        .unwrap();
        let stratum = compiled.ram.strata[0].clone();
        let apm = compile_stratum(&stratum, &compiled.ram);
        assert!(!apm.recursive);
        let stores = apm
            .program
            .instructions
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(stores, 1);
        assert!(apm.program.first_iteration_only.iter().all(|&b| !b));
    }

    #[test]
    fn nonrecursive_edb_join_compiles_to_merge_path() {
        let compiled = parse(
            "type a(x: u32)
             type b(x: u32)
             rel both(x) = a(x), b(x)",
        )
        .unwrap();
        let stratum = compiled.ram.strata[0].clone();
        let apm = compile_stratum(&stratum, &compiled.ram);
        // Both sides are full loads of relations the stratum doesn't update,
        // hence sorted — the join needs no hash index at all.
        assert_eq!(apm.merge_joins, 1);
        assert_eq!(apm.hash_joins, 0);
        let mnemonics: Vec<&str> = apm
            .program
            .instructions
            .iter()
            .map(Instr::mnemonic)
            .collect();
        assert!(mnemonics.contains(&"mergecount"));
        assert!(mnemonics.contains(&"mergejoin"));
        assert!(!mnemonics.contains(&"build"));
        assert!(!mnemonics.contains(&"count"));
    }

    #[test]
    fn merge_join_option_disabled_falls_back_to_hash() {
        let compiled = parse(
            "type a(x: u32)
             type b(x: u32)
             rel both(x) = a(x), b(x)",
        )
        .unwrap();
        let stratum = compiled.ram.strata[0].clone();
        let options = RuntimeOptions::default().with_merge_join(false);
        let apm = compile_stratum_with_options(&stratum, &compiled.ram, &options);
        assert_eq!(apm.merge_joins, 0);
        assert_eq!(apm.hash_joins, 1);
        assert!(apm
            .program
            .instructions
            .iter()
            .any(|i| matches!(i, Instr::Build { .. })));
    }

    #[test]
    fn projected_probe_side_keeps_transitive_closure_on_hash_path() {
        // The TC recursive join probes `path` projected to (y, x) — not a
        // prefix-preserving projection, so its sort order is unknown and the
        // static-index hash path of Section 4.2 must be preserved.
        let (ram, stratum) = transitive_closure();
        let apm = compile_stratum(&stratum, &ram);
        assert_eq!(apm.merge_joins, 0);
        assert!(apm.hash_joins >= 1);
    }

    #[test]
    fn nonlinear_recursion_expands_to_multiple_variants() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and path(z, y))",
        )
        .unwrap();
        let stratum = compiled.ram.strata[0].clone();
        let apm = compile_stratum(&stratum, &compiled.ram);
        // The recursive rule has two recursive leaves, so it expands into two
        // semi-naive variants plus the base rule: three stores.
        let stores = apm
            .program
            .instructions
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(stores, 3);
        // Both-recursive joins cannot use static indices.
        assert!(apm
            .program
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instr::Build { static_, .. } => Some(*static_),
                _ => None,
            })
            .all(|s| !s));
    }
}
