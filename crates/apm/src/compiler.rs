//! The RAM → APM compiler (paper Section 3.3 and Appendix A).
//!
//! Each stratum of a RAM program is flattened into a straight-line APM
//! program that is executed once per fix-point iteration. The compiler:
//!
//! * expands every rule into its semi-naive variants over the stable /
//!   recent / all partitions of the database, so only the frontier of newly
//!   derived facts drives each iteration (Section 3.4);
//! * lowers project and select to `eval` (row-level parallelism), joins to
//!   the `build`/`count`/`scan`/`join`/`gather` sequence of Figure 6, unions
//!   to `append`, and products to a dedicated instruction;
//! * marks hash indices whose build side is iteration-invariant as *static
//!   registers* so they are built once and reused (Section 4.2) — the
//!   "linear recursion" case that covers nearly all programs in the paper's
//!   evaluation.

use crate::isa::{ApmProgram, DbPart, Instr, RegId};
use lobster_ram::{RamExpr, RamProgram, RamRule, RowProjection, ScalarExpr, Stratum};
use std::collections::BTreeSet;

/// The result of compiling one stratum.
#[derive(Debug, Clone)]
pub struct CompiledStratum {
    /// The APM program executed each iteration.
    pub program: ApmProgram,
    /// Relations updated by the stratum.
    pub relations: Vec<String>,
    /// Whether the stratum requires fix-point iteration.
    pub recursive: bool,
}

struct Compiler<'a> {
    ram: &'a RamProgram,
    own_relations: BTreeSet<String>,
    instructions: Vec<Instr>,
    first_iteration_only: Vec<bool>,
    static_registers: Vec<RegId>,
    next_reg: u32,
    current_first_only: bool,
}

impl<'a> Compiler<'a> {
    fn fresh(&mut self) -> RegId {
        let reg = RegId(self.next_reg);
        self.next_reg += 1;
        reg
    }

    fn fresh_n(&mut self, n: usize) -> Vec<RegId> {
        (0..n).map(|_| self.fresh()).collect()
    }

    fn emit(&mut self, instr: Instr) {
        self.instructions.push(instr);
        self.first_iteration_only.push(self.current_first_only);
    }

    fn arity(&self, expr: &RamExpr) -> usize {
        expr.arity(&|name| self.ram.arity(name))
            .expect("validated program has known arities")
    }

    /// Whether an expression depends on a relation defined in this stratum.
    fn is_recursive_expr(&self, expr: &RamExpr) -> bool {
        let mut refs = Vec::new();
        expr.referenced_relations(&mut refs);
        refs.iter().any(|r| self.own_relations.contains(r))
    }

    /// Leaf `Relation` occurrences that refer to this stratum's relations, in
    /// traversal order.
    fn recursive_leaf_count(&self, expr: &RamExpr) -> usize {
        let mut count = 0;
        expr.visit(&mut |e| {
            if let RamExpr::Relation(name) = e {
                if self.own_relations.contains(name) {
                    count += 1;
                }
            }
        });
        count
    }

    /// Compiles an expression. `parts` assigns a database partition to each
    /// recursive leaf (indexed by `next_recursive_leaf`); non-recursive
    /// leaves always load the full relation.
    fn compile_expr(
        &mut self,
        expr: &RamExpr,
        parts: &[DbPart],
        next_recursive_leaf: &mut usize,
    ) -> (Vec<RegId>, RegId) {
        match expr {
            RamExpr::Relation(name) => {
                let part = if self.own_relations.contains(name) {
                    let part = parts[*next_recursive_leaf];
                    *next_recursive_leaf += 1;
                    part
                } else {
                    DbPart::All
                };
                let arity = self.ram.arity(name).expect("relation arity");
                let columns = self.fresh_n(arity);
                let tags = self.fresh();
                self.emit(Instr::Load {
                    relation: name.clone(),
                    part,
                    columns: columns.clone(),
                    tags,
                });
                (columns, tags)
            }
            RamExpr::Project { input, proj } => {
                let (inputs, input_tags) = self.compile_expr(input, parts, next_recursive_leaf);
                let outputs = self.fresh_n(proj.output_arity());
                let output_tags = self.fresh();
                self.emit(Instr::Eval {
                    inputs,
                    input_tags,
                    projection: proj.clone(),
                    outputs: outputs.clone(),
                    output_tags,
                });
                (outputs, output_tags)
            }
            RamExpr::Select { input, cond } => {
                let arity = self.arity(input);
                let (inputs, input_tags) = self.compile_expr(input, parts, next_recursive_leaf);
                let projection = RowProjection::new(
                    (0..arity).map(ScalarExpr::Col).collect(),
                    Some(cond.clone()),
                );
                let outputs = self.fresh_n(arity);
                let output_tags = self.fresh();
                self.emit(Instr::Eval {
                    inputs,
                    input_tags,
                    projection,
                    outputs: outputs.clone(),
                    output_tags,
                });
                (outputs, output_tags)
            }
            RamExpr::Join { left, right, width } => {
                self.compile_join(left, right, *width, parts, next_recursive_leaf)
            }
            RamExpr::Intersect(left, right) => {
                // a ∩ b is a join on every column followed by keeping the
                // left row (which the join output convention already does).
                let width = self.arity(left);
                self.compile_join(left, right, width, parts, next_recursive_leaf)
            }
            RamExpr::Union(left, right) => {
                let (l_cols, l_tags) = self.compile_expr(left, parts, next_recursive_leaf);
                let (r_cols, r_tags) = self.compile_expr(right, parts, next_recursive_leaf);
                let outputs = self.fresh_n(l_cols.len());
                let output_tags = self.fresh();
                self.emit(Instr::Append {
                    inputs: vec![(l_cols, l_tags), (r_cols, r_tags)],
                    outputs: outputs.clone(),
                    output_tags,
                });
                (outputs, output_tags)
            }
            RamExpr::Product(left, right) => {
                let (l_cols, l_tags) = self.compile_expr(left, parts, next_recursive_leaf);
                let (r_cols, r_tags) = self.compile_expr(right, parts, next_recursive_leaf);
                let outputs = self.fresh_n(l_cols.len() + r_cols.len());
                let output_tags = self.fresh();
                self.emit(Instr::Product {
                    left: l_cols,
                    left_tags: l_tags,
                    right: r_cols,
                    right_tags: r_tags,
                    outputs: outputs.clone(),
                    output_tags,
                });
                (outputs, output_tags)
            }
        }
    }

    /// Compiles `left ⊲⊳_w right` into the hash-join instruction sequence of
    /// Figure 6.
    fn compile_join(
        &mut self,
        left: &RamExpr,
        right: &RamExpr,
        width: usize,
        parts: &[DbPart],
        next_recursive_leaf: &mut usize,
    ) -> (Vec<RegId>, RegId) {
        let (l_cols, l_tags) = self.compile_expr(left, parts, next_recursive_leaf);
        let (r_cols, r_tags) = self.compile_expr(right, parts, next_recursive_leaf);

        // Build the hash index on the side that does not depend on the
        // stratum's own relations when possible: that index is identical on
        // every iteration, so it can live in a static register and be reused
        // (the linear-recursion optimization of Section 4.2).
        let left_recursive = self.is_recursive_expr(left);
        let right_recursive = self.is_recursive_expr(right);
        let build_left = !left_recursive && right_recursive;
        let static_ = if build_left {
            !left_recursive
        } else {
            !right_recursive
        };

        let (build_cols, build_tags, probe_cols, probe_tags) = if build_left {
            (&l_cols, l_tags, &r_cols, r_tags)
        } else {
            (&r_cols, r_tags, &l_cols, l_tags)
        };

        let index = self.fresh();
        if static_ {
            self.static_registers.push(index);
        }
        self.emit(Instr::Build {
            keys: build_cols[..width].to_vec(),
            index,
            static_,
        });
        let counts = self.fresh();
        self.emit(Instr::Count {
            index,
            probe_keys: probe_cols[..width].to_vec(),
            counts,
        });
        let offsets = self.fresh();
        self.emit(Instr::Scan { counts, offsets });
        let build_indices = self.fresh();
        let probe_indices = self.fresh();
        self.emit(Instr::Join {
            index,
            probe_keys: probe_cols[..width].to_vec(),
            counts,
            offsets,
            build_indices,
            probe_indices,
        });

        // Gather the output table: the full left row, then the non-key
        // columns of the right row.
        let (left_indices, right_indices) = if build_left {
            (build_indices, probe_indices)
        } else {
            (probe_indices, build_indices)
        };
        let out_left = self.fresh_n(l_cols.len());
        self.emit(Instr::Gather {
            indices: left_indices,
            sources: l_cols.clone(),
            destinations: out_left.clone(),
        });
        let out_right = self.fresh_n(r_cols.len() - width);
        if !out_right.is_empty() {
            self.emit(Instr::Gather {
                indices: right_indices,
                sources: r_cols[width..].to_vec(),
                destinations: out_right.clone(),
            });
        }
        let output_tags = self.fresh();
        self.emit(Instr::GatherMulTags {
            left_indices,
            right_indices,
            left_tags: if build_left { build_tags } else { probe_tags },
            right_tags: if build_left { probe_tags } else { build_tags },
            output: output_tags,
        });

        let mut outputs = out_left;
        outputs.extend(out_right);
        (outputs, output_tags)
    }

    /// Compiles one rule, expanding it into its semi-naive variants.
    fn compile_rule(&mut self, rule: &RamRule, recursive_stratum: bool) {
        let recursive_leaves = self.recursive_leaf_count(&rule.expr);
        let variants: Vec<(Vec<DbPart>, bool)> = if !recursive_stratum || recursive_leaves == 0 {
            // Base rules only need to run while the initial facts are still
            // the frontier (the first iteration).
            vec![(Vec::new(), recursive_stratum)]
        } else {
            (0..recursive_leaves)
                .map(|i| {
                    let parts = (0..recursive_leaves)
                        .map(|j| {
                            if j < i {
                                DbPart::Stable
                            } else if j == i {
                                DbPart::Recent
                            } else {
                                DbPart::All
                            }
                        })
                        .collect();
                    (parts, false)
                })
                .collect()
        };
        for (parts, first_only) in variants {
            self.current_first_only = first_only;
            let mut next_leaf = 0;
            let (columns, tags) = self.compile_expr(&rule.expr, &parts, &mut next_leaf);
            self.emit(Instr::Store {
                relation: rule.target.clone(),
                columns,
                tags,
            });
            self.current_first_only = false;
        }
    }
}

/// Compiles a RAM stratum into an APM program.
pub fn compile_stratum(stratum: &Stratum, ram: &RamProgram) -> CompiledStratum {
    let mut compiler = Compiler {
        ram,
        own_relations: stratum.relations.iter().cloned().collect(),
        instructions: Vec::new(),
        first_iteration_only: Vec::new(),
        static_registers: Vec::new(),
        next_reg: 0,
        current_first_only: false,
    };
    for rule in &stratum.rules {
        compiler.compile_rule(rule, stratum.recursive);
    }
    let program = ApmProgram {
        instructions: compiler.instructions,
        first_iteration_only: compiler.first_iteration_only,
        register_count: compiler.next_reg,
        static_registers: compiler.static_registers,
        stored_relations: stratum.relations.clone(),
    };
    CompiledStratum {
        program,
        relations: stratum.relations.clone(),
        recursive: stratum.recursive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_datalog::parse;

    fn transitive_closure() -> (lobster_ram::RamProgram, Stratum) {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
             query path",
        )
        .unwrap();
        let stratum = compiled.ram.strata[0].clone();
        (compiled.ram, stratum)
    }

    #[test]
    fn base_rule_is_first_iteration_only() {
        let (ram, stratum) = transitive_closure();
        let compiled = compile_stratum(&stratum, &ram);
        assert!(compiled.recursive);
        // At least one instruction is first-iteration-only (the base rule)
        // and at least one is not (the recursive rule).
        assert!(compiled.program.first_iteration_only.iter().any(|&b| b));
        assert!(compiled.program.first_iteration_only.iter().any(|&b| !b));
    }

    #[test]
    fn recursive_join_builds_static_index_on_edb_side() {
        let (ram, stratum) = transitive_closure();
        let compiled = compile_stratum(&stratum, &ram);
        // The join against the EDB `edge` relation should produce a static
        // index register.
        assert!(!compiled.program.static_registers.is_empty());
        let builds: Vec<_> = compiled
            .program
            .instructions
            .iter()
            .filter(|i| matches!(i, Instr::Build { .. }))
            .collect();
        assert!(!builds.is_empty());
        assert!(builds
            .iter()
            .any(|b| matches!(b, Instr::Build { static_: true, .. })));
    }

    #[test]
    fn program_contains_expected_instruction_mix() {
        let (ram, stratum) = transitive_closure();
        let compiled = compile_stratum(&stratum, &ram);
        let mnemonics: Vec<&str> = compiled
            .program
            .instructions
            .iter()
            .map(Instr::mnemonic)
            .collect();
        for expected in [
            "load",
            "store",
            "build",
            "count",
            "scan",
            "join",
            "gather",
            "gather_mul",
        ] {
            assert!(
                mnemonics.contains(&expected),
                "missing `{expected}` in {mnemonics:?}"
            );
        }
        assert!(compiled.program.register_count > 0);
        assert!(!compiled.program.listing().is_empty());
    }

    #[test]
    fn nonrecursive_stratum_has_single_variant() {
        let compiled = parse(
            "type a(x: u32)
             type b(x: u32)
             rel both(x) = a(x), b(x)",
        )
        .unwrap();
        let stratum = compiled.ram.strata[0].clone();
        let apm = compile_stratum(&stratum, &compiled.ram);
        assert!(!apm.recursive);
        let stores = apm
            .program
            .instructions
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(stores, 1);
        assert!(apm.program.first_iteration_only.iter().all(|&b| !b));
    }

    #[test]
    fn nonlinear_recursion_expands_to_multiple_variants() {
        let compiled = parse(
            "type edge(x: u32, y: u32)
             rel path(x, y) = edge(x, y) or (path(x, z) and path(z, y))",
        )
        .unwrap();
        let stratum = compiled.ram.strata[0].clone();
        let apm = compile_stratum(&stratum, &compiled.ram);
        // The recursive rule has two recursive leaves, so it expands into two
        // semi-naive variants plus the base rule: three stores.
        let stores = apm
            .program
            .instructions
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(stores, 3);
        // Both-recursive joins cannot use static indices.
        assert!(apm
            .program
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instr::Build { static_, .. } => Some(*static_),
                _ => None,
            })
            .all(|s| !s));
    }
}
