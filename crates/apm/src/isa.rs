//! The APM instruction set (paper Table 1).
//!
//! APM programs are straight-line sequences of vector instructions over
//! virtual registers. There is no control flow, every register is written
//! exactly once per iteration (SSA), and every instruction admits a massively
//! parallel implementation — the properties that guarantee efficient GPU
//! execution (Section 3.2).

use lobster_ram::RowProjection;
use std::fmt;

/// A virtual vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Which partition of a relation a `load` reads, implementing semi-naive
/// evaluation (Section 3.4): `Stable` facts are older than the previous
/// iteration, `Recent` facts were derived in the previous iteration, and
/// `All` is their union.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbPart {
    /// Facts known before the previous iteration.
    Stable,
    /// Facts discovered in the previous iteration (the frontier).
    Recent,
    /// Stable ∪ recent.
    All,
}

impl fmt::Display for DbPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DbPart::Stable => "stable",
            DbPart::Recent => "recent",
            DbPart::All => "all",
        };
        f.write_str(s)
    }
}

/// One APM instruction.
///
/// Register operands are written `Vec<RegId>` when the instruction operates
/// on a whole table (one register per column); a separate register carries
/// the provenance tags of the table.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `[s̄, s_t] = load⟨ρ⟩()`: load the columns and tags of a relation
    /// partition into registers.
    Load {
        /// Relation name.
        relation: String,
        /// Partition to read.
        part: DbPart,
        /// Destination column registers.
        columns: Vec<RegId>,
        /// Destination tag register.
        tags: RegId,
    },
    /// `store⟨ρ⟩(s̄, s_t)`: stage the rows of a table as candidate delta
    /// facts for a relation. Staged facts are deduplicated and folded into
    /// the database by the end-of-iteration update sequence.
    Store {
        /// Target relation.
        relation: String,
        /// Source column registers.
        columns: Vec<RegId>,
        /// Source tag register.
        tags: RegId,
    },
    /// `d̄ ← eval⟨α⟩(s̄)`: row-wise projection / selection. Tags of surviving
    /// rows are copied from the corresponding input rows.
    Eval {
        /// Input column registers.
        inputs: Vec<RegId>,
        /// Input tag register.
        input_tags: RegId,
        /// The projection (with optional fused filter).
        projection: RowProjection,
        /// Output column registers.
        outputs: Vec<RegId>,
        /// Output tag register.
        output_tags: RegId,
    },
    /// `d ← build(s̄)`: build a hash index over key columns. When `static_`
    /// is set the index is built on the first iteration only and reused
    /// afterwards (Section 4.2).
    Build {
        /// Key column registers.
        keys: Vec<RegId>,
        /// Destination register holding the index.
        index: RegId,
        /// Whether the index lives in a static register.
        static_: bool,
    },
    /// `c ← count(b̄, h, ā)`: per-probe-row match counts.
    Count {
        /// Register holding the hash index.
        index: RegId,
        /// Probe key column registers.
        probe_keys: Vec<RegId>,
        /// Destination register for the counts.
        counts: RegId,
    },
    /// `o ← scan(c)`: exclusive prefix sum of the counts.
    Scan {
        /// Input counts register.
        counts: RegId,
        /// Destination offsets register.
        offsets: RegId,
    },
    /// `[i_l, i_r] ← join⟨W⟩(b̄, ā, h, c, o)`: emit matching index pairs.
    Join {
        /// Register holding the hash index (build side).
        index: RegId,
        /// Probe key column registers.
        probe_keys: Vec<RegId>,
        /// Counts register (from `count`).
        counts: RegId,
        /// Offsets register (from `scan`).
        offsets: RegId,
        /// Destination register for build-side row indices.
        build_indices: RegId,
        /// Destination register for probe-side row indices.
        probe_indices: RegId,
    },
    /// `c ← mergecount(b̄, ā)`: per-probe-row match counts by binary search
    /// over a *sorted* build side — the merge-path counterpart of `count`.
    /// Emitted instead of `build`+`count` when sort-order inference proves
    /// both join inputs sorted on the key prefix: no hash index exists at
    /// all on this path.
    MergeCount {
        /// Build-side key column registers (lexicographically sorted).
        build_keys: Vec<RegId>,
        /// Probe key column registers.
        probe_keys: Vec<RegId>,
        /// Destination register for the counts.
        counts: RegId,
    },
    /// `[i_l, i_r] ← mergejoin⟨W⟩(b̄, ā, c, o)`: emit matching index pairs
    /// of a sort-merge join. Bit-identical output to `join` (same pairs,
    /// same order, same positions).
    MergeJoin {
        /// Build-side key column registers (lexicographically sorted).
        build_keys: Vec<RegId>,
        /// Probe key column registers.
        probe_keys: Vec<RegId>,
        /// Counts register (from `mergecount`).
        counts: RegId,
        /// Offsets register (from `scan`).
        offsets: RegId,
        /// Destination register for build-side row indices.
        build_indices: RegId,
        /// Destination register for probe-side row indices.
        probe_indices: RegId,
    },
    /// `d̄ ← gather(i, s̄)`: gather rows of the source columns by index.
    Gather {
        /// Index register.
        indices: RegId,
        /// Source column registers.
        sources: Vec<RegId>,
        /// Destination column registers.
        destinations: Vec<RegId>,
    },
    /// `d_t ← gather⟨⊗⟩([i_l, i_r], [t_l, t_r])`: gather one tag from each
    /// side of a join and combine them with the semiring conjunction.
    GatherMulTags {
        /// Build-side index register.
        left_indices: RegId,
        /// Probe-side index register.
        right_indices: RegId,
        /// Build-side tag register.
        left_tags: RegId,
        /// Probe-side tag register.
        right_tags: RegId,
        /// Destination tag register.
        output: RegId,
    },
    /// Cartesian product of two tables (used when a rule joins relations with
    /// no shared variables).
    Product {
        /// Left column registers.
        left: Vec<RegId>,
        /// Left tag register.
        left_tags: RegId,
        /// Right column registers.
        right: Vec<RegId>,
        /// Right tag register.
        right_tags: RegId,
        /// Output column registers (left columns then right columns).
        outputs: Vec<RegId>,
        /// Output tag register.
        output_tags: RegId,
    },
    /// Row-wise concatenation of several tables (the `append`/`copy` used by
    /// the Join translation rule to combine the semi-naive variants, and by
    /// unions).
    Append {
        /// The input tables: (column registers, tag register) pairs.
        inputs: Vec<(Vec<RegId>, RegId)>,
        /// Output column registers.
        outputs: Vec<RegId>,
        /// Output tag register.
        output_tags: RegId,
    },
}

impl Instr {
    /// A short mnemonic for statistics and debugging.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Load { .. } => "load",
            Instr::Store { .. } => "store",
            Instr::Eval { .. } => "eval",
            Instr::Build { .. } => "build",
            Instr::Count { .. } => "count",
            Instr::Scan { .. } => "scan",
            Instr::Join { .. } => "join",
            Instr::MergeCount { .. } => "mergecount",
            Instr::MergeJoin { .. } => "mergejoin",
            Instr::Gather { .. } => "gather",
            Instr::GatherMulTags { .. } => "gather_mul",
            Instr::Product { .. } => "product",
            Instr::Append { .. } => "append",
        }
    }

    /// Registers written by this instruction.
    pub fn defs(&self) -> Vec<RegId> {
        match self {
            Instr::Load { columns, tags, .. } => {
                let mut regs = columns.clone();
                regs.push(*tags);
                regs
            }
            Instr::Store { .. } => Vec::new(),
            Instr::Eval {
                outputs,
                output_tags,
                ..
            } => {
                let mut regs = outputs.clone();
                regs.push(*output_tags);
                regs
            }
            Instr::Build { index, .. } => vec![*index],
            Instr::Count { counts, .. } => vec![*counts],
            Instr::Scan { offsets, .. } => vec![*offsets],
            Instr::Join {
                build_indices,
                probe_indices,
                ..
            } => {
                vec![*build_indices, *probe_indices]
            }
            Instr::MergeCount { counts, .. } => vec![*counts],
            Instr::MergeJoin {
                build_indices,
                probe_indices,
                ..
            } => {
                vec![*build_indices, *probe_indices]
            }
            Instr::Gather { destinations, .. } => destinations.clone(),
            Instr::GatherMulTags { output, .. } => vec![*output],
            Instr::Product {
                outputs,
                output_tags,
                ..
            } => {
                let mut regs = outputs.clone();
                regs.push(*output_tags);
                regs
            }
            Instr::Append {
                outputs,
                output_tags,
                ..
            } => {
                let mut regs = outputs.clone();
                regs.push(*output_tags);
                regs
            }
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Load {
                relation,
                part,
                columns,
                tags,
            } => {
                write!(f, "{:?},{tags} <- load<{relation}:{part}>()", columns)
            }
            Instr::Store {
                relation,
                columns,
                tags,
            } => {
                write!(f, "store<{relation}>({columns:?}, {tags})")
            }
            other => write!(f, "{} {:?} <- ...", other.mnemonic(), other.defs()),
        }
    }
}

/// A compiled APM program for one stratum: the instruction body executed once
/// per fix-point iteration plus metadata about the registers it uses.
#[derive(Debug, Clone, Default)]
pub struct ApmProgram {
    /// Instructions executed, in order, each iteration.
    pub instructions: Vec<Instr>,
    /// Instructions executed only on the first iteration (non-recursive rules
    /// of a recursive stratum, e.g. the base case of a transitive closure).
    pub first_iteration_only: Vec<bool>,
    /// Number of virtual registers used.
    pub register_count: u32,
    /// Registers marked `static` (values persist across iterations).
    pub static_registers: Vec<RegId>,
    /// Relations written by this program.
    pub stored_relations: Vec<String>,
}

impl ApmProgram {
    /// Number of instructions in the program body.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// A readable listing of the program (for debugging and documentation).
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, instr) in self.instructions.iter().enumerate() {
            let marker = if self.first_iteration_only.get(i).copied().unwrap_or(false) {
                "*"
            } else {
                " "
            };
            out.push_str(&format!("{marker}{i:4}: {instr}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_cover_written_registers() {
        let instr = Instr::Join {
            index: RegId(0),
            probe_keys: vec![RegId(1)],
            counts: RegId(2),
            offsets: RegId(3),
            build_indices: RegId(4),
            probe_indices: RegId(5),
        };
        assert_eq!(instr.defs(), vec![RegId(4), RegId(5)]);
        assert_eq!(instr.mnemonic(), "join");
    }

    #[test]
    fn merge_join_defs_match_hash_join_shape() {
        let count = Instr::MergeCount {
            build_keys: vec![RegId(0)],
            probe_keys: vec![RegId(1)],
            counts: RegId(2),
        };
        assert_eq!(count.defs(), vec![RegId(2)]);
        assert_eq!(count.mnemonic(), "mergecount");
        let join = Instr::MergeJoin {
            build_keys: vec![RegId(0)],
            probe_keys: vec![RegId(1)],
            counts: RegId(2),
            offsets: RegId(3),
            build_indices: RegId(4),
            probe_indices: RegId(5),
        };
        assert_eq!(join.defs(), vec![RegId(4), RegId(5)]);
        assert_eq!(join.mnemonic(), "mergejoin");
    }

    #[test]
    fn store_defines_nothing() {
        let instr = Instr::Store {
            relation: "path".into(),
            columns: vec![RegId(0)],
            tags: RegId(1),
        };
        assert!(instr.defs().is_empty());
        assert_eq!(instr.mnemonic(), "store");
    }

    #[test]
    fn listing_marks_first_iteration_instructions() {
        let program = ApmProgram {
            instructions: vec![
                Instr::Load {
                    relation: "edge".into(),
                    part: DbPart::All,
                    columns: vec![RegId(0), RegId(1)],
                    tags: RegId(2),
                },
                Instr::Store {
                    relation: "path".into(),
                    columns: vec![RegId(0), RegId(1)],
                    tags: RegId(2),
                },
            ],
            first_iteration_only: vec![true, true],
            register_count: 3,
            static_registers: vec![],
            stored_relations: vec!["path".into()],
        };
        let listing = program.listing();
        assert!(listing.contains("load<edge:all>"));
        assert!(listing.starts_with('*'));
        assert_eq!(program.len(), 2);
        assert!(!program.is_empty());
    }

    #[test]
    fn display_of_regs_and_parts() {
        assert_eq!(RegId(3).to_string(), "r3");
        assert_eq!(DbPart::Recent.to_string(), "recent");
    }
}
