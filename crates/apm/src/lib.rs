//! APM — the Abstract Parallel Machine.
//!
//! APM is Lobster's low-level intermediate language (paper Section 3.2): an
//! assembly-style, SSA, control-flow-free program over vector registers,
//! designed so that *any* APM program maps efficiently onto a GPU. This crate
//! contains:
//!
//! * the APM instruction set ([`Instr`], mirroring Table 1 of the paper),
//! * the RAM → APM compiler ([`compile_stratum`], mirroring the translation
//!   rules of Appendix A, including the semi-naive expansion of joins over
//!   the stable / recent / delta partitions of the database),
//! * the tagged, columnar [`Database`] that holds every relation on the
//!   (simulated) device, and
//! * the [`Executor`] that runs APM programs to a fix point (Algorithm 1)
//!   with the optimizations of Section 4: arena allocation & buffer reuse,
//!   hash-index reuse via static registers, and batched evaluation.
//!
//! The executor is generic over the provenance semiring, so the same compiled
//! program supports discrete, probabilistic, and differentiable reasoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod compiler;
mod config;
mod database;
mod executor;
mod incremental;
mod isa;

pub use batch::batch_transform;
pub use compiler::{
    compile_stratum, compile_stratum_delta, compile_stratum_with_options, CompiledStratum,
};
pub use config::{fnv1a, fnv1a_extend, RuntimeOptions};
pub use database::{Database, EncodingSpec, SortedTable};
pub use executor::{ExecError, ExecutionStats, Executor};
pub use incremental::{refresh_database, EdbContent};
pub use isa::{ApmProgram, DbPart, Instr, RegId};
