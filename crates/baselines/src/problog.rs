//! The ProbLog stand-in: exact probabilistic inference.

use crate::dnf::{DnfProofs, DnfTag};
use crate::tuple::{BaselineError, TupleEngine};
use lobster_provenance::{InputFactId, Provenance};
use lobster_ram::RamProgram;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The output of a ProbLog run: tuples with exact probabilities per relation.
pub type ProblogDatabase = BTreeMap<String, Vec<(Vec<u64>, f64)>>;

/// Exact probabilistic inference in the style of ProbLog: every derived fact
/// carries its full DNF proof formula and the final probability is computed
/// by exact weighted model counting. No approximation is performed, so the
/// cost is exponential in the number of relevant input facts — which is why
/// the paper reports ProbLog hitting the 2-hour timeout on every
/// probabilistic benchmark except the smallest.
#[derive(Debug, Clone, Default)]
pub struct ProblogEngine {
    provenance: DnfProofs,
    timeout: Option<Duration>,
}

impl ProblogEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the wall-clock budget (grounding and model counting combined).
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Runs the program over probabilistic facts and returns, for every
    /// relation, the derived tuples with their exact probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Timeout`] when the budget is exceeded during
    /// grounding or model counting.
    pub fn run(
        &self,
        ram: &RamProgram,
        facts: &[(String, Vec<u64>, f64)],
    ) -> Result<ProblogDatabase, BaselineError> {
        let start = Instant::now();
        let engine = TupleEngine::new(self.provenance.clone()).with_timeout(self.timeout);
        let tagged: Vec<(String, Vec<u64>, DnfTag)> = facts
            .iter()
            .enumerate()
            .map(|(i, (rel, row, prob))| {
                let tag = self
                    .provenance
                    .input_tag(InputFactId(i as u32), Some(*prob));
                (rel.clone(), row.clone(), tag)
            })
            .collect();
        let db = engine.run(ram, &tagged)?;
        let mut out = BTreeMap::new();
        for (rel, tuples) in db {
            let mut rows = Vec::with_capacity(tuples.len());
            for (tuple, tag) in tuples {
                if let Some(budget) = self.timeout {
                    if start.elapsed() > budget {
                        return Err(BaselineError::Timeout {
                            phase: "model counting",
                        });
                    }
                }
                rows.push((tuple, self.provenance.model_count(&tag)));
            }
            out.insert(rel, rows);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_datalog::parse;

    const TC: &str = "type edge(x: u32, y: u32)
        rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
        query path";

    #[test]
    fn exact_inference_on_a_diamond() {
        // Two disjoint paths from 0 to 3: over {0-1-3} and {0-2-3}, all edges p=0.5.
        let compiled = parse(TC).unwrap();
        let facts = vec![
            ("edge".to_string(), vec![0, 1], 0.5),
            ("edge".to_string(), vec![1, 3], 0.5),
            ("edge".to_string(), vec![0, 2], 0.5),
            ("edge".to_string(), vec![2, 3], 0.5),
        ];
        let engine = ProblogEngine::new();
        let db = engine.run(&compiled.ram, &facts).unwrap();
        let p03 = db["path"]
            .iter()
            .find(|(t, _)| t == &vec![0, 3])
            .map(|(_, p)| *p)
            .unwrap();
        // P(path) = 1 - (1 - 0.25)^2 = 0.4375 exactly.
        assert!((p03 - 0.4375).abs() < 1e-9, "got {p03}");
    }

    #[test]
    fn timeout_fires_on_large_instances() {
        let compiled = parse(TC).unwrap();
        let facts: Vec<(String, Vec<u64>, f64)> = (0..400u64)
            .map(|i| ("edge".to_string(), vec![i % 40, (i * 7 + 1) % 40], 0.5))
            .collect();
        let engine = ProblogEngine::new().with_timeout(Some(Duration::from_millis(50)));
        assert!(matches!(
            engine.run(&compiled.ram, &facts),
            Err(BaselineError::Timeout { .. })
        ));
    }
}
