//! A CPU, tuple-at-a-time, BTree-indexed semi-naive Datalog engine.
//!
//! This is the execution model shared by the Scallop and Soufflé stand-ins:
//! relations are `BTreeMap<tuple, tag>`, every relational operator works one
//! tuple at a time (allocating a fresh `Vec` per derived tuple), and joins
//! build a per-call BTree index on the build side. Compared to Lobster's
//! columnar, bulk-kernel execution this is exactly the architectural profile
//! the paper attributes to CPU engines.

use lobster_provenance::Provenance;
use lobster_ram::{RamExpr, RamProgram, RamRule, Stratum};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Errors produced by the baseline engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The configured timeout was exceeded.
    Timeout {
        /// Where the timeout hit.
        phase: &'static str,
    },
    /// The per-stratum iteration cap was exceeded.
    IterationLimit,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Timeout { phase } => write!(f, "baseline timed out during {phase}"),
            BaselineError::IterationLimit => write!(f, "baseline exceeded its iteration limit"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// A tuple-oriented database: every relation maps encoded tuples to tags.
pub type TupleDatabase<P> = BTreeMap<String, BTreeMap<Vec<u64>, <P as Provenance>::Tag>>;

/// Rows produced by evaluating one rule: encoded tuple plus tag.
type TaggedRows<T> = Vec<(Vec<u64>, T)>;

/// The shared tuple-at-a-time engine.
#[derive(Debug, Clone)]
pub struct TupleEngine<P: Provenance> {
    provenance: P,
    /// Number of worker threads used to split join probes (1 = sequential,
    /// the Scallop configuration; >1 models Soufflé's multi-threading).
    pub parallelism: usize,
    /// Optional wall-clock budget.
    pub timeout: Option<Duration>,
    /// Iteration cap per stratum.
    pub max_iterations: usize,
}

impl<P: Provenance> TupleEngine<P> {
    /// Creates a sequential engine.
    pub fn new(provenance: P) -> Self {
        TupleEngine {
            provenance,
            parallelism: 1,
            timeout: None,
            max_iterations: 1_000_000,
        }
    }

    /// Sets the number of join worker threads.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// The provenance used by this engine.
    pub fn provenance(&self) -> &P {
        &self.provenance
    }

    /// Runs a RAM program over the given input facts.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Timeout`] when the budget is exceeded.
    pub fn run(
        &self,
        ram: &RamProgram,
        facts: &[(String, Vec<u64>, P::Tag)],
    ) -> Result<TupleDatabase<P>, BaselineError> {
        let start = Instant::now();
        let mut db: TupleDatabase<P> = BTreeMap::new();
        for name in ram.schemas.keys() {
            db.insert(name.clone(), BTreeMap::new());
        }
        for (rel, tuple, tag) in facts {
            let relation = db.entry(rel.clone()).or_default();
            match relation.get_mut(tuple) {
                Some(existing) => *existing = self.provenance.add(existing, tag),
                None => {
                    relation.insert(tuple.clone(), tag.clone());
                }
            }
        }
        for stratum in &ram.strata {
            self.run_stratum(stratum, &mut db, start)?;
        }
        Ok(db)
    }

    fn check_deadline(&self, start: Instant, phase: &'static str) -> Result<(), BaselineError> {
        if let Some(budget) = self.timeout {
            if start.elapsed() > budget {
                return Err(BaselineError::Timeout { phase });
            }
        }
        Ok(())
    }

    fn run_stratum(
        &self,
        stratum: &Stratum,
        db: &mut TupleDatabase<P>,
        start: Instant,
    ) -> Result<(), BaselineError> {
        // Semi-naive bookkeeping: recent = frontier discovered last iteration.
        let mut recent: BTreeMap<String, BTreeMap<Vec<u64>, P::Tag>> = BTreeMap::new();
        for rel in &stratum.relations {
            recent.insert(rel.clone(), db.get(rel).cloned().unwrap_or_default());
        }
        let mut iteration = 0usize;
        loop {
            if iteration >= self.max_iterations {
                return Err(BaselineError::IterationLimit);
            }
            self.check_deadline(start, "fix-point iteration")?;
            let mut delta: BTreeMap<String, BTreeMap<Vec<u64>, P::Tag>> = BTreeMap::new();
            for rule in &stratum.rules {
                let produced = self.eval_rule(rule, stratum, db, &recent, iteration, start)?;
                let slot = delta.entry(rule.target.clone()).or_default();
                for (tuple, tag) in produced {
                    if !self.provenance.accept(&tag) {
                        continue;
                    }
                    // Skip tuples that already exist in the database.
                    if db
                        .get(&rule.target)
                        .map(|r| r.contains_key(&tuple))
                        .unwrap_or(false)
                    {
                        continue;
                    }
                    match slot.get_mut(&tuple) {
                        Some(existing) => *existing = self.provenance.add(existing, &tag),
                        None => {
                            slot.insert(tuple, tag);
                        }
                    }
                }
            }
            // Fold the delta into the database.
            let mut changed = false;
            for (rel, tuples) in &delta {
                let relation = db.entry(rel.clone()).or_default();
                for (tuple, tag) in tuples {
                    if !relation.contains_key(tuple) {
                        relation.insert(tuple.clone(), tag.clone());
                        changed = true;
                    }
                }
            }
            recent = delta;
            iteration += 1;
            if !changed || !stratum.recursive {
                break;
            }
        }
        Ok(())
    }

    /// Evaluates one rule. On iteration 0 all relations are read in full; on
    /// later iterations the rule is evaluated once per recursive leaf with
    /// that leaf restricted to the recent frontier (standard semi-naive
    /// expansion).
    fn eval_rule(
        &self,
        rule: &RamRule,
        stratum: &Stratum,
        db: &TupleDatabase<P>,
        recent: &BTreeMap<String, BTreeMap<Vec<u64>, P::Tag>>,
        iteration: usize,
        start: Instant,
    ) -> Result<TaggedRows<P::Tag>, BaselineError> {
        let mut recursive_leaves = 0usize;
        rule.expr.visit(&mut |e| {
            if let RamExpr::Relation(name) = e {
                if stratum.relations.contains(name) {
                    recursive_leaves += 1;
                }
            }
        });
        if iteration == 0 || recursive_leaves == 0 {
            if iteration > 0 {
                // Base rules contribute nothing new after the first pass.
                return Ok(Vec::new());
            }
            let mut counter = 0usize;
            return self.eval_expr(&rule.expr, stratum, db, recent, None, &mut counter, start);
        }
        let mut out = Vec::new();
        for focus in 0..recursive_leaves {
            let mut counter = 0usize;
            out.extend(self.eval_expr(
                &rule.expr,
                stratum,
                db,
                recent,
                Some(focus),
                &mut counter,
                start,
            )?);
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_expr(
        &self,
        expr: &RamExpr,
        stratum: &Stratum,
        db: &TupleDatabase<P>,
        recent: &BTreeMap<String, BTreeMap<Vec<u64>, P::Tag>>,
        focus: Option<usize>,
        recursive_counter: &mut usize,
        start: Instant,
    ) -> Result<TaggedRows<P::Tag>, BaselineError> {
        self.check_deadline(start, "expression evaluation")?;
        match expr {
            RamExpr::Relation(name) => {
                let is_recursive = stratum.relations.contains(name);
                let use_recent = if is_recursive {
                    let this = *recursive_counter;
                    *recursive_counter += 1;
                    focus == Some(this)
                } else {
                    false
                };
                let source: Box<dyn Iterator<Item = (&Vec<u64>, &P::Tag)>> = if use_recent {
                    Box::new(recent.get(name).into_iter().flatten())
                } else {
                    Box::new(db.get(name).into_iter().flatten())
                };
                Ok(source.map(|(t, tag)| (t.clone(), tag.clone())).collect())
            }
            RamExpr::Project { input, proj } => {
                let rows =
                    self.eval_expr(input, stratum, db, recent, focus, recursive_counter, start)?;
                Ok(rows
                    .into_iter()
                    .filter_map(|(row, tag)| proj.eval(&row).map(|out| (out, tag)))
                    .collect())
            }
            RamExpr::Select { input, cond } => {
                let rows =
                    self.eval_expr(input, stratum, db, recent, focus, recursive_counter, start)?;
                let program = cond.compile();
                Ok(rows
                    .into_iter()
                    .filter(|(row, _)| program.eval_bool(row))
                    .collect())
            }
            RamExpr::Join { left, right, width } => {
                let l =
                    self.eval_expr(left, stratum, db, recent, focus, recursive_counter, start)?;
                let r =
                    self.eval_expr(right, stratum, db, recent, focus, recursive_counter, start)?;
                self.check_deadline(start, "join")?;
                Ok(self.join(&l, &r, *width))
            }
            RamExpr::Intersect(left, right) => {
                let l =
                    self.eval_expr(left, stratum, db, recent, focus, recursive_counter, start)?;
                let r =
                    self.eval_expr(right, stratum, db, recent, focus, recursive_counter, start)?;
                let width = l.first().map(|(t, _)| t.len()).unwrap_or(0);
                Ok(self.join(&l, &r, width))
            }
            RamExpr::Union(left, right) => {
                let mut l =
                    self.eval_expr(left, stratum, db, recent, focus, recursive_counter, start)?;
                let r =
                    self.eval_expr(right, stratum, db, recent, focus, recursive_counter, start)?;
                l.extend(r);
                Ok(l)
            }
            RamExpr::Product(left, right) => {
                let l =
                    self.eval_expr(left, stratum, db, recent, focus, recursive_counter, start)?;
                let r =
                    self.eval_expr(right, stratum, db, recent, focus, recursive_counter, start)?;
                let mut out = Vec::with_capacity(l.len() * r.len());
                for (lt, ltag) in &l {
                    for (rt, rtag) in &r {
                        let mut row = lt.clone();
                        row.extend_from_slice(rt);
                        out.push((row, self.provenance.mul(ltag, rtag)));
                    }
                }
                Ok(out)
            }
        }
    }

    /// BTree-indexed hash join on the first `width` columns, optionally
    /// splitting the probe side across worker threads.
    fn join(
        &self,
        left: &[(Vec<u64>, P::Tag)],
        right: &[(Vec<u64>, P::Tag)],
        width: usize,
    ) -> Vec<(Vec<u64>, P::Tag)> {
        // Build an index on the right side.
        let mut index: BTreeMap<&[u64], Vec<usize>> = BTreeMap::new();
        for (i, (row, _)) in right.iter().enumerate() {
            index.entry(&row[..width]).or_default().push(i);
        }
        let probe = |range: std::ops::Range<usize>| -> Vec<(Vec<u64>, P::Tag)> {
            let mut out = Vec::new();
            for (lrow, ltag) in &left[range] {
                if let Some(matches) = index.get(&lrow[..width]) {
                    for &ri in matches {
                        let (rrow, rtag) = &right[ri];
                        let mut row = lrow.clone();
                        row.extend_from_slice(&rrow[width..]);
                        out.push((row, self.provenance.mul(ltag, rtag)));
                    }
                }
            }
            out
        };
        if self.parallelism <= 1 || left.len() < 1024 {
            return probe(0..left.len());
        }
        let chunk = left.len().div_ceil(self.parallelism);
        let mut pieces: Vec<Vec<(Vec<u64>, P::Tag)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut startx = 0;
            while startx < left.len() {
                let end = (startx + chunk).min(left.len());
                let probe = &probe;
                handles.push(scope.spawn(move || probe(startx..end)));
                startx = end;
            }
            for handle in handles {
                pieces.push(handle.join().expect("join worker panicked"));
            }
        });
        pieces.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_datalog::parse;
    use lobster_provenance::{MaxMinProb, Unit};

    const TC: &str = "type edge(x: u32, y: u32)
        rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
        query path";

    #[test]
    fn tuple_engine_computes_transitive_closure() {
        let compiled = parse(TC).unwrap();
        let engine = TupleEngine::new(Unit::new());
        let facts: Vec<(String, Vec<u64>, ())> = (0..4u64)
            .map(|i| ("edge".to_string(), vec![i, i + 1], ()))
            .collect();
        let db = engine.run(&compiled.ram, &facts).unwrap();
        assert_eq!(db["path"].len(), 10);
        assert!(db["path"].contains_key(&vec![0, 4]));
    }

    #[test]
    fn tuple_engine_tracks_probabilities() {
        let compiled = parse(TC).unwrap();
        let engine = TupleEngine::new(MaxMinProb::new());
        let facts = vec![
            ("edge".to_string(), vec![0, 1], 0.9),
            ("edge".to_string(), vec![1, 2], 0.4),
        ];
        let db = engine.run(&compiled.ram, &facts).unwrap();
        assert!((db["path"][&vec![0, 2]] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let compiled = parse(TC).unwrap();
        let facts: Vec<(String, Vec<u64>, ())> = (0..300u64)
            .map(|i| ("edge".to_string(), vec![i % 50, (i * 7) % 50], ()))
            .collect();
        let seq = TupleEngine::new(Unit::new())
            .run(&compiled.ram, &facts)
            .unwrap();
        let par = TupleEngine::new(Unit::new())
            .with_parallelism(8)
            .run(&compiled.ram, &facts)
            .unwrap();
        assert_eq!(seq["path"], par["path"]);
    }

    #[test]
    fn timeout_is_respected() {
        let compiled = parse(TC).unwrap();
        let facts: Vec<(String, Vec<u64>, ())> = (0..2000u64)
            .map(|i| ("edge".to_string(), vec![i, i + 1], ()))
            .collect();
        let engine = TupleEngine::new(Unit::new()).with_timeout(Some(Duration::from_millis(0)));
        assert!(matches!(
            engine.run(&compiled.ram, &facts),
            Err(BaselineError::Timeout { .. })
        ));
    }

    #[test]
    fn agrees_with_lobster_on_random_graphs() {
        use lobster::Lobster;
        use lobster_ram::Value;
        let compiled = parse(TC).unwrap();
        // Pseudo-random but deterministic edge set.
        let edges: Vec<(u64, u64)> = (0..120u64)
            .map(|i| ((i * 37) % 23, (i * 61 + 7) % 23))
            .collect();
        let engine = TupleEngine::new(Unit::new());
        let facts: Vec<(String, Vec<u64>, ())> = edges
            .iter()
            .map(|&(a, b)| ("edge".to_string(), vec![a, b], ()))
            .collect();
        let baseline = engine.run(&compiled.ram, &facts).unwrap();

        let program = Lobster::builder(TC)
            .compile_typed::<lobster::Unit>()
            .unwrap();
        let mut session = program.session();
        for &(a, b) in &edges {
            session
                .add_fact("edge", &[Value::U32(a as u32), Value::U32(b as u32)], None)
                .unwrap();
        }
        let lobster_rows = session.run().unwrap();
        assert_eq!(baseline["path"].len(), lobster_rows.len("path"));
    }
}
