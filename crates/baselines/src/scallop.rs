//! The Scallop stand-in: a CPU, tuple-oriented engine with provenance.

use crate::tuple::{BaselineError, TupleDatabase, TupleEngine};
use lobster_provenance::Provenance;
use lobster_ram::RamProgram;
use std::time::Duration;

/// One input fact handed to a baseline engine: relation, encoded tuple, tag.
pub type TaggedFact<T> = (String, Vec<u64>, T);

/// The primary baseline of the paper: Scallop's execution model — a CPU,
/// tuple-at-a-time, semi-naive Datalog engine carrying provenance tags on
/// every fact. Batch-level parallelism (running independent samples on
/// separate threads) is the only parallelism it exploits, mirroring the
/// description in Section 6.2.
#[derive(Debug, Clone)]
pub struct ScallopEngine<P: Provenance> {
    engine: TupleEngine<P>,
}

impl<P: Provenance> ScallopEngine<P> {
    /// Creates the engine with the given provenance.
    pub fn new(provenance: P) -> Self {
        ScallopEngine {
            engine: TupleEngine::new(provenance),
        }
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.engine = self.engine.with_timeout(timeout);
        self
    }

    /// The provenance used by this engine.
    pub fn provenance(&self) -> &P {
        self.engine.provenance()
    }

    /// Runs a RAM program over the given facts.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Timeout`] when the budget is exceeded.
    pub fn run(
        &self,
        ram: &RamProgram,
        facts: &[(String, Vec<u64>, P::Tag)],
    ) -> Result<TupleDatabase<P>, BaselineError> {
        self.engine.run(ram, facts)
    }

    /// Runs a batch of samples, one thread per sample (Scallop's batch-level
    /// multicore parallelism).
    ///
    /// # Errors
    ///
    /// Returns the first error any sample produced.
    pub fn run_batch(
        &self,
        ram: &RamProgram,
        samples: &[Vec<TaggedFact<P::Tag>>],
    ) -> Result<Vec<TupleDatabase<P>>, BaselineError> {
        let mut results: Vec<Option<Result<TupleDatabase<P>, BaselineError>>> =
            (0..samples.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for sample in samples {
                let engine = &self.engine;
                handles.push(scope.spawn(move || engine.run(ram, sample)));
            }
            for (slot, handle) in results.iter_mut().zip(handles) {
                *slot = Some(handle.join().expect("sample worker panicked"));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("sample result recorded"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_datalog::parse;
    use lobster_provenance::{DiffTop1Proof, InputFactRegistry, Provenance, Unit};

    const TC: &str = "type edge(x: u32, y: u32)
        rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
        query path";

    #[test]
    fn scallop_engine_matches_expected_closure() {
        let compiled = parse(TC).unwrap();
        let engine = ScallopEngine::new(Unit::new());
        let facts: Vec<(String, Vec<u64>, ())> = (0..5u64)
            .map(|i| ("edge".to_string(), vec![i, i + 1], ()))
            .collect();
        let db = engine.run(&compiled.ram, &facts).unwrap();
        assert_eq!(db["path"].len(), 15);
    }

    #[test]
    fn scallop_supports_differentiable_provenance() {
        let compiled = parse(TC).unwrap();
        let registry = InputFactRegistry::new();
        let prov = DiffTop1Proof::new(registry.clone());
        let engine = ScallopEngine::new(prov.clone());
        let e0 = registry.register(Some(0.9), None);
        let e1 = registry.register(Some(0.5), None);
        let facts = vec![
            (
                "edge".to_string(),
                vec![0, 1],
                prov.input_tag(e0, Some(0.9)),
            ),
            (
                "edge".to_string(),
                vec![1, 2],
                prov.input_tag(e1, Some(0.5)),
            ),
        ];
        let db = engine.run(&compiled.ram, &facts).unwrap();
        let tag = &db["path"][&vec![0, 2]];
        let out = prov.output(tag);
        assert!((out.probability - 0.45).abs() < 1e-9);
        assert_eq!(out.gradient.len(), 2);
    }

    #[test]
    fn batch_runs_produce_one_result_per_sample() {
        let compiled = parse(TC).unwrap();
        let engine = ScallopEngine::new(Unit::new());
        let samples: Vec<Vec<(String, Vec<u64>, ())>> = (0..4)
            .map(|s| {
                (0..3u64)
                    .map(|i| ("edge".to_string(), vec![i + s, i + s + 1], ()))
                    .collect()
            })
            .collect();
        let results = engine.run_batch(&compiled.ram, &samples).unwrap();
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|db| db["path"].len() == 6));
    }
}
