//! The FVLog stand-in: a GPU columnar engine without APM-level optimizations.

use crate::tuple::BaselineError;
use lobster_apm::{Database, ExecError, ExecutionStats, Executor, RuntimeOptions};
use lobster_gpu::Device;
use lobster_provenance::Unit;
use lobster_ram::RamProgram;
use std::collections::BTreeMap;

/// The output of an FVLog run: encoded tuples per relation.
pub type FvlogDatabase = BTreeMap<String, Vec<Vec<u64>>>;

/// A discrete-only, GPU (simulated) columnar Datalog engine standing in for
/// FVLog. It shares Lobster's device and kernels but, like FVLog, has no
/// intermediate representation to optimize over: hash indices are rebuilt on
/// every fix-point iteration, per-iteration buffers are not reused, and no
/// provenance is supported.
#[derive(Debug, Clone)]
pub struct FvlogEngine {
    device: Device,
    options: RuntimeOptions,
}

impl Default for FvlogEngine {
    fn default() -> Self {
        Self::new(Device::default())
    }
}

impl FvlogEngine {
    /// Creates the engine on the given device.
    pub fn new(device: Device) -> Self {
        FvlogEngine {
            device,
            options: RuntimeOptions::unoptimized(),
        }
    }

    /// Sets the wall-clock budget in milliseconds.
    pub fn with_timeout_ms(mut self, timeout: Option<u64>) -> Self {
        self.options = self.options.with_timeout_ms(timeout);
        self
    }

    /// The device this engine runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Runs a (discrete) RAM program and returns the tuples of every
    /// relation, plus execution statistics.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::Timeout`] on timeout and propagates device
    /// out-of-memory failures as [`ExecError`] wrapped in the `Err` variant.
    pub fn run(
        &self,
        ram: &RamProgram,
        facts: &[(String, Vec<u64>)],
    ) -> Result<(FvlogDatabase, ExecutionStats), FvlogError> {
        let mut db = Database::new(ram.schemas.clone(), Unit::new());
        for (rel, row) in facts {
            db.insert_encoded(rel, row, ());
        }
        db.seal(&self.device);
        let executor = Executor::new(self.device.clone(), Unit::new(), self.options.clone());
        let stats = executor
            .run_program(&mut db, ram)
            .map_err(FvlogError::Execution)?;
        let mut out = BTreeMap::new();
        for rel in ram.schemas.keys() {
            let rows: Vec<Vec<u64>> = db
                .rows(rel)
                .into_iter()
                .map(|(tuple, _)| tuple.iter().map(|v| v.encode()).collect())
                .collect();
            out.insert(rel.clone(), rows);
        }
        Ok((out, stats))
    }
}

/// Errors produced by the FVLog stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum FvlogError {
    /// Execution failed (OOM or timeout on the device).
    Execution(ExecError),
    /// A baseline-level failure.
    Baseline(BaselineError),
}

impl std::fmt::Display for FvlogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FvlogError::Execution(e) => write!(f, "{e}"),
            FvlogError::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FvlogError {}

#[cfg(test)]
mod tests {
    use super::*;
    use lobster_datalog::parse;
    use lobster_gpu::DeviceConfig;

    const TC: &str = "type edge(x: u32, y: u32)
        rel path(x, y) = edge(x, y) or (path(x, z) and edge(z, y))
        query path";

    #[test]
    fn fvlog_computes_transitive_closure() {
        let compiled = parse(TC).unwrap();
        let facts: Vec<(String, Vec<u64>)> = (0..6u64)
            .map(|i| ("edge".to_string(), vec![i, i + 1]))
            .collect();
        let engine = FvlogEngine::new(Device::sequential());
        let (db, stats) = engine.run(&compiled.ram, &facts).unwrap();
        assert_eq!(db["path"].len(), 21);
        assert!(stats.kernel_launches > 0);
    }

    #[test]
    fn fvlog_runs_out_of_memory_on_tight_budgets() {
        let compiled = parse(TC).unwrap();
        let facts: Vec<(String, Vec<u64>)> = (0..500u64)
            .map(|i| ("edge".to_string(), vec![i, i + 1]))
            .collect();
        let device = Device::new(DeviceConfig {
            memory_limit: Some(10_000),
            ..DeviceConfig::default()
        });
        let engine = FvlogEngine::new(device);
        assert!(matches!(
            engine.run(&compiled.ram, &facts),
            Err(FvlogError::Execution(ExecError::Device(_)))
        ));
    }

    #[test]
    fn fvlog_never_reuses_indices() {
        let compiled = parse(TC).unwrap();
        let facts: Vec<(String, Vec<u64>)> = (0..50u64)
            .map(|i| ("edge".to_string(), vec![i, i + 1]))
            .collect();
        let fvlog_device = Device::sequential();
        let (_, _) = FvlogEngine::new(fvlog_device.clone())
            .run(&compiled.ram, &facts)
            .unwrap();
        // Count build kernels: FVLog rebuilds per iteration, so there must be
        // roughly one build per iteration; Lobster with static registers
        // builds once per join.
        let fvlog_kernels = fvlog_device.stats().kernel_launches;
        let lobster_device = Device::sequential();
        let mut db = Database::new(compiled.ram.schemas.clone(), Unit::new());
        for (rel, row) in &facts {
            db.insert_encoded(rel, row, ());
        }
        db.seal(&lobster_device);
        let exec = Executor::new(
            lobster_device.clone(),
            Unit::new(),
            RuntimeOptions::optimized(),
        );
        exec.run_program(&mut db, &compiled.ram).unwrap();
        let lobster_kernels = lobster_device.stats().kernel_launches;
        assert!(
            lobster_kernels < fvlog_kernels,
            "optimized run should launch fewer kernels ({lobster_kernels} vs {fvlog_kernels})"
        );
    }
}
