//! Exact DNF-proof provenance used by the ProbLog stand-in.
//!
//! Unlike Lobster's top-1-proof provenance, this provenance keeps *every*
//! proof of every fact (a boolean formula in disjunctive normal form over the
//! input facts) and computes exact probabilities by weighted model counting.
//! This is what makes exact probabilistic inference exponential — and why the
//! ProbLog runs in the paper's evaluation hit the timeout on every non-trivial
//! input.

use lobster_provenance::{InputFactId, Output, Provenance};
use std::collections::BTreeSet;

/// A DNF formula: a set of proofs, each a set of input facts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DnfTag {
    /// The proofs (conjunctions of input facts).
    pub proofs: BTreeSet<BTreeSet<InputFactId>>,
}

impl DnfTag {
    /// The formula `false` (no proofs).
    pub fn none() -> Self {
        DnfTag::default()
    }

    /// The formula `true` (one empty proof).
    pub fn trivially_true() -> Self {
        DnfTag {
            proofs: std::iter::once(BTreeSet::new()).collect(),
        }
    }

    /// Number of proofs.
    pub fn len(&self) -> usize {
        self.proofs.len()
    }

    /// `true` when there are no proofs.
    pub fn is_empty(&self) -> bool {
        self.proofs.is_empty()
    }

    /// All variables mentioned by the formula.
    pub fn variables(&self) -> BTreeSet<InputFactId> {
        self.proofs.iter().flatten().copied().collect()
    }
}

/// The exact DNF-proofs provenance with a probability table for weighted
/// model counting.
#[derive(Debug, Clone)]
pub struct DnfProofs {
    probs: std::sync::Arc<std::sync::RwLock<Vec<f64>>>,
    /// Cap on the number of proofs per fact before the tag saturates to avoid
    /// unbounded memory growth; `usize::MAX` means exact (ProbLog-like).
    pub max_proofs: usize,
}

impl Default for DnfProofs {
    fn default() -> Self {
        Self::new()
    }
}

impl DnfProofs {
    /// Creates an exact DNF-proofs provenance.
    pub fn new() -> Self {
        DnfProofs {
            probs: Default::default(),
            max_proofs: usize::MAX,
        }
    }

    fn prob(&self, fact: InputFactId) -> f64 {
        self.probs
            .read()
            .expect("probability table poisoned")
            .get(fact.0 as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Exact probability of a DNF formula by Shannon expansion over its
    /// variables (exponential in the number of variables).
    pub fn model_count(&self, tag: &DnfTag) -> f64 {
        fn expand(proofs: &[Vec<InputFactId>], vars: &[(InputFactId, f64)]) -> f64 {
            if proofs.iter().any(|p| p.is_empty()) {
                return 1.0;
            }
            if proofs.is_empty() {
                return 0.0;
            }
            let Some(&(var, p)) = vars.first() else {
                return 0.0;
            };
            let rest = &vars[1..];
            // Condition on `var = true`: remove it from every proof.
            let when_true: Vec<Vec<InputFactId>> = proofs
                .iter()
                .map(|proof| proof.iter().copied().filter(|&f| f != var).collect())
                .collect();
            // Condition on `var = false`: drop proofs containing it.
            let when_false: Vec<Vec<InputFactId>> = proofs
                .iter()
                .filter(|proof| !proof.contains(&var))
                .cloned()
                .collect();
            p * expand(&when_true, rest) + (1.0 - p) * expand(&when_false, rest)
        }
        let vars: Vec<(InputFactId, f64)> = tag
            .variables()
            .into_iter()
            .map(|v| (v, self.prob(v)))
            .collect();
        let proofs: Vec<Vec<InputFactId>> = tag
            .proofs
            .iter()
            .map(|p| p.iter().copied().collect())
            .collect();
        expand(&proofs, &vars)
    }
}

impl Provenance for DnfProofs {
    type Tag = DnfTag;

    fn name(&self) -> &'static str {
        "exact-dnf-proofs"
    }

    fn zero(&self) -> Self::Tag {
        DnfTag::none()
    }

    fn one(&self) -> Self::Tag {
        DnfTag::trivially_true()
    }

    fn add(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        let mut proofs = a.proofs.clone();
        proofs.extend(b.proofs.iter().cloned());
        if proofs.len() > self.max_proofs {
            proofs = proofs.into_iter().take(self.max_proofs).collect();
        }
        DnfTag { proofs }
    }

    fn mul(&self, a: &Self::Tag, b: &Self::Tag) -> Self::Tag {
        let mut proofs = BTreeSet::new();
        for pa in &a.proofs {
            for pb in &b.proofs {
                let mut merged = pa.clone();
                merged.extend(pb.iter().copied());
                proofs.insert(merged);
                if proofs.len() > self.max_proofs {
                    return DnfTag { proofs };
                }
            }
        }
        DnfTag { proofs }
    }

    fn input_tag(&self, fact: InputFactId, prob: Option<f64>) -> Self::Tag {
        let mut table = self.probs.write().expect("probability table poisoned");
        let idx = fact.0 as usize;
        if table.len() <= idx {
            table.resize(idx + 1, 1.0);
        }
        table[idx] = prob.unwrap_or(1.0);
        DnfTag {
            proofs: std::iter::once(std::iter::once(fact).collect()).collect(),
        }
    }

    fn accept(&self, tag: &Self::Tag) -> bool {
        !tag.is_empty()
    }

    fn weight(&self, tag: &Self::Tag) -> f64 {
        self.model_count(tag)
    }

    fn output(&self, tag: &Self::Tag) -> Output {
        Output::scalar(self.model_count(tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_probability_of_two_independent_paths() {
        let prov = DnfProofs::new();
        let a = prov.input_tag(InputFactId(0), Some(0.5));
        let b = prov.input_tag(InputFactId(1), Some(0.5));
        // a ∨ b: P = 1 - 0.25 = 0.75 (exact, not the 1.0 that add-mult would give).
        let disj = prov.add(&a, &b);
        assert!((prov.weight(&disj) - 0.75).abs() < 1e-9);
        // a ∧ b: P = 0.25.
        let conj = prov.mul(&a, &b);
        assert!((prov.weight(&conj) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn shared_subformulas_are_handled_exactly() {
        let prov = DnfProofs::new();
        let a = prov.input_tag(InputFactId(0), Some(0.5));
        let b = prov.input_tag(InputFactId(1), Some(0.5));
        let c = prov.input_tag(InputFactId(2), Some(0.5));
        // (a ∧ b) ∨ (a ∧ c): P = P(a) * P(b ∨ c) = 0.5 * 0.75 = 0.375.
        let f = prov.add(&prov.mul(&a, &b), &prov.mul(&a, &c));
        assert!((prov.weight(&f) - 0.375).abs() < 1e-9);
    }

    #[test]
    fn zero_and_one_behave() {
        let prov = DnfProofs::new();
        let a = prov.input_tag(InputFactId(0), Some(0.3));
        assert_eq!(prov.mul(&a, &prov.zero()), prov.zero());
        assert_eq!(prov.mul(&a, &prov.one()), a);
        assert!(!prov.accept(&prov.zero()));
        assert_eq!(prov.weight(&prov.one()), 1.0);
    }

    #[test]
    fn proof_count_grows_combinatorially() {
        let prov = DnfProofs::new();
        // (a1 ∨ a2) ∧ (b1 ∨ b2) ∧ (c1 ∨ c2) has 8 proofs.
        let mk = |i| prov.input_tag(InputFactId(i), Some(0.5));
        let ab = prov.mul(&prov.add(&mk(0), &mk(1)), &prov.add(&mk(2), &mk(3)));
        let abc = prov.mul(&ab, &prov.add(&mk(4), &mk(5)));
        assert_eq!(abc.len(), 8);
    }
}
